"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation section and records its measured rows as JSON under
``benchmarks/results/``, which EXPERIMENTS.md references.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List

from repro.analysis.continuity import PAPER_LOSS_BAND, check_loss_continuity
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.parallel.engine import TrainingEngine

__all__ = [
    "PAPER_LOSS_BAND",
    "check_loss_continuity",
    "make_engine",
    "record_result",
    "loss_curve",
    "max_abs_delta",
]

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def make_engine(
    model_name: str = "gpt3-mini",
    parallel: ParallelConfig = None,
    seed: int = 7,
    global_batch_size: int = 8,
    seq_len: int = 16,
    **kwargs,
) -> TrainingEngine:
    """Benchmark-scale engine factory."""
    return TrainingEngine(
        get_config(model_name),
        parallel if parallel is not None else ParallelConfig(),
        seed=seed,
        global_batch_size=global_batch_size,
        seq_len=seq_len,
        **kwargs,
    )


def record_result(experiment: str, payload: Dict) -> pathlib.Path:
    """Write one experiment's measured rows to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def loss_curve(engine: TrainingEngine, steps: int) -> List[float]:
    """Train and return the per-step LM losses."""
    return [round(r.loss, 6) for r in engine.train(steps)]


def max_abs_delta(a: List[float], b: List[float]) -> float:
    """Largest pointwise loss difference between two curves."""
    return max(abs(x - y) for x, y in zip(a, b))
