"""Ablation — the Load-side atom cache (memory vs re-read trade-off).

UCP's Load streams atoms into each target partition; a bounded cache
of consolidated atoms controls working memory ("more parallelism ...
is also more memory intensive").  We sweep the cache bound: tiny caches
re-read atoms from storage many times, large caches read each once.
"""

import time


from repro.core.atom import AtomStore
from repro.core.convert import ucp_convert
from repro.core.loader import load_ucp_into_engine
from repro.dist.topology import ParallelConfig
from repro.storage.store import ObjectStore

from bench_util import make_engine, record_result

CACHE_SIZES = [1, 8, 64, 512]
TARGET = ParallelConfig(tp=2, pp=2, dp=2)


def test_ablation_atom_cache(benchmark, tmp_path):
    src = make_engine("gpt3-medium-bench", parallel=ParallelConfig(dp=4, zero_stage=2))
    src.train(1)
    ckpt, ucp = str(tmp_path / "ckpt"), str(tmp_path / "ucp")
    src.save_checkpoint(ckpt)
    ucp_convert(ckpt, ucp)

    rows = []
    for cache_size in CACHE_SIZES:
        engine = make_engine("gpt3-medium-bench", parallel=TARGET)
        # a fresh store per run isolates the read accounting
        store = ObjectStore(ucp)
        atom_store = AtomStore(ucp, store)
        start = time.perf_counter()
        load_ucp_into_engine(engine, ucp, max_cached_atoms=cache_size)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "max_cached_atoms": cache_size,
                "wall_s": round(elapsed, 4),
            }
        )
        del atom_store

    benchmark.pedantic(
        lambda: load_ucp_into_engine(
            make_engine("gpt3-medium-bench", parallel=TARGET), ucp,
            max_cached_atoms=64,
        ),
        rounds=2, iterations=1,
    )

    # a tiny cache must not beat a large one (same work plus re-reads);
    # generous slack because wall timings at this scale are noisy
    assert rows[0]["wall_s"] >= rows[-1]["wall_s"] * 0.5

    record_result("ablation_atom_cache", {"target": TARGET.describe(), "rows": rows})
