"""Ablation — checkpoint/recovery strategies (paper §2 related work).

Quantifies the trade-off space the paper positions UCP within, on one
failure scenario (lose a node mid-run):

* **sync disk** — plain distributed checkpoints; rigid topology.
* **CheckFreq-style async snapshot** — cheaper blocking time at save;
  still rigid topology.
* **Gemini-style in-memory** — fastest recovery; *same* topology only.
* **UCP** — the only one that recovers onto a *different* topology.

Plus the planner's cluster-scale waste model (the paper's GPT-4-scale
motivation).
"""

import time


from repro.ckpt.inmemory import InMemoryCheckpoint
from repro.ckpt.snapshot import SnapshotManager, tune_checkpoint_interval
from repro.ckpt.planner import plan_resilience
from repro.core.resume import resume_training
from repro.dist.topology import ParallelConfig

from bench_util import make_engine, record_result

SOURCE = ParallelConfig(tp=2, pp=2, dp=2)
SHRUNK = ParallelConfig(tp=2, pp=2, dp=1)


def test_ablation_checkpoint_strategies(benchmark, tmp_path):
    engine = make_engine("gpt3-medium-bench", parallel=SOURCE)
    engine.train(1)

    # --- save-path costs ---
    start = time.perf_counter()
    engine.save_checkpoint(str(tmp_path / "sync"))
    sync_save_s = time.perf_counter() - start

    manager = SnapshotManager(engine)
    start = time.perf_counter()
    snap = manager.snapshot()  # only this blocks training
    snapshot_block_s = time.perf_counter() - start
    start = time.perf_counter()
    manager.persist(snap, str(tmp_path / "async"))
    persist_s = time.perf_counter() - start

    mem = InMemoryCheckpoint(engine, replication_factor=2)
    start = time.perf_counter()
    mem.commit()
    inmemory_commit_s = time.perf_counter() - start

    # --- recovery-path costs after "losing rank 5" ---
    start = time.perf_counter()
    mem.recover(failed_ranks={5})
    inmemory_recover_s = time.perf_counter() - start

    start = time.perf_counter()
    same_topo = make_engine("gpt3-medium-bench", parallel=SOURCE)
    same_topo.load_checkpoint(str(tmp_path / "sync"))
    disk_recover_s = time.perf_counter() - start

    start = time.perf_counter()
    shrunk = resume_training(str(tmp_path / "sync"), SHRUNK)
    ucp_recover_s = time.perf_counter() - start

    benchmark.pedantic(
        lambda: manager.persist(manager.snapshot(), str(tmp_path / "bench")),
        rounds=2, iterations=1,
    )

    # shape assertions: snapshot blocking < full sync save;
    # in-memory recovery < disk recovery; only UCP changed topology
    assert snapshot_block_s < sync_save_s
    assert inmemory_recover_s < disk_recover_s
    assert shrunk.parallel_cfg == SHRUNK

    freq = tune_checkpoint_interval(
        step_time_s=0.5, snapshot_time_s=snapshot_block_s,
        max_overhead_fraction=0.035,
    )
    cluster = plan_resilience(
        num_gpus=24576, gpus_per_node=8, node_mtbf_hours=50_000,
        checkpoint_cost_hours=sync_save_s / 3600, repair_hours=6.0,
    )

    record_result(
        "ablation_ckpt_strategies",
        {
            "save_path_s": {
                "sync_disk": round(sync_save_s, 4),
                "checkfreq_blocking_snapshot": round(snapshot_block_s, 4),
                "checkfreq_background_persist": round(persist_s, 4),
                "gemini_inmemory_commit": round(inmemory_commit_s, 4),
            },
            "recover_path_s": {
                "gemini_inmemory_same_topology": round(inmemory_recover_s, 4),
                "disk_same_topology": round(disk_recover_s, 4),
                "ucp_changed_topology": round(ucp_recover_s, 4),
            },
            "topology_flexibility": {
                "sync_disk": "same only",
                "checkfreq": "same only",
                "gemini": "same only",
                "ucp": "any",
            },
            "checkfreq_tuned_interval_steps": freq.interval_steps,
            "gpt4_scale_plan": {
                "failures_per_30_days": round(cluster.failures_per_30_days, 1),
                "waste_wait_gpu_hours_per_failure": round(cluster.waste_wait_gpuh, 1),
                "waste_elastic_gpu_hours_per_failure": round(cluster.waste_elastic_gpuh, 1),
                "elastic_savings": round(cluster.elastic_savings_fraction, 3),
            },
        },
    )
