"""Ablation — communication volume per training step vs topology.

Uses the cluster's collective accounting to show why "consolidating
distributed model states into a single checkpoint unacceptably slows
down training" (paper §1): a consolidated save adds an all-gather of
the *entire* model on top of the steady-state traffic, while
distributed checkpoints (and therefore UCP) add none.
"""


from repro.ckpt.consolidated import save_consolidated_checkpoint
from repro.dist.topology import ParallelConfig

from bench_util import make_engine, record_result

TOPOLOGIES = [
    ParallelConfig(dp=2),
    ParallelConfig(dp=4),
    ParallelConfig(tp=2, dp=2),
    ParallelConfig(tp=2, pp=2, dp=2),
]


def test_ablation_comm_volume(benchmark, tmp_path):
    rows = []
    for parallel in TOPOLOGIES:
        engine = make_engine(parallel=parallel)
        engine.train(1)
        engine.cluster.tracker.reset()
        engine.train(1)
        step_bytes = engine.cluster.tracker.total_bytes

        engine.cluster.tracker.reset()
        engine.save_checkpoint(str(tmp_path / f"dist-{parallel.describe()}"))
        dist_save_bytes = engine.cluster.tracker.total_bytes

        engine.cluster.tracker.reset()
        save_consolidated_checkpoint(
            engine, str(tmp_path / f"cons-{parallel.describe()}")
        )
        consolidated_bytes = engine.cluster.tracker.total_bytes

        rows.append(
            {
                "topology": parallel.describe(),
                "train_step_bytes": step_bytes,
                "distributed_save_bytes": dist_save_bytes,
                "consolidated_save_bytes": consolidated_bytes,
            }
        )

    benchmark.pedantic(
        lambda: make_engine(parallel=TOPOLOGIES[-1]).train(1),
        rounds=1, iterations=1,
    )

    for row in rows:
        # distributed saving moves zero bytes over the interconnect;
        # consolidation gathers the whole model through collectives
        assert row["distributed_save_bytes"] == 0
        if row["topology"] != "tp1.pp1.dp1.sp1.zero1":
            assert row["consolidated_save_bytes"] > 0

    record_result("ablation_comm_volume", {"rows": rows})
