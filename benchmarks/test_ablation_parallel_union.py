"""Ablation — parallelism in Extract/Union (paper Table 2 note).

"The Union operation can execute in parallel at individual parameter
level.  More parallelism leads to faster speed but is also more memory
intensive."  We sweep the converter's worker count and record wall time
per setting, verifying the outputs are identical regardless of the
worker count.
"""

import time

import numpy as np

from repro.core.atom import AtomStore
from repro.core.convert import ucp_convert
from repro.dist.topology import ParallelConfig

from bench_util import make_engine, record_result

WORKER_COUNTS = [0, 2, 4, 8]


def test_ablation_parallel_union(benchmark, tmp_path):
    src = make_engine("gpt3-medium-bench", parallel=ParallelConfig(tp=2, pp=2, dp=2))
    src.train(1)
    ckpt = str(tmp_path / "ckpt")
    src.save_checkpoint(ckpt)

    rows = []
    outputs = {}
    for workers in WORKER_COUNTS:
        out = str(tmp_path / f"ucp-w{workers}")
        start = time.perf_counter()
        report = ucp_convert(ckpt, out, workers=workers)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "workers": workers,
                "wall_s": round(elapsed, 4),
                "extract_s": round(report.extract_seconds, 4),
                "union_s": round(report.union_seconds, 4),
                "write_s": round(report.write_seconds, 4),
            }
        )
        outputs[workers] = out

    # correctness is worker-count invariant
    base = AtomStore(outputs[0])
    for workers in WORKER_COUNTS[1:]:
        other = AtomStore(outputs[workers])
        assert base.list_atoms() == other.list_atoms()
        for name in base.list_atoms()[:10]:
            assert np.array_equal(
                base.read_state(name, "fp32"), other.read_state(name, "fp32")
            )

    benchmark.pedantic(
        lambda: ucp_convert(ckpt, str(tmp_path / "bench"), workers=4),
        rounds=1, iterations=1,
    )

    record_result("ablation_parallel_union", {"rows": rows})
