"""Ablation — checkpoint layouts under the NVMe cost model.

Compares simulated I/O time for three layouts of the same training
state: one consolidated file (the classic baseline the paper argues
against), per-rank distributed files, and UCP atoms read with parallel
requests (the DeepNVMe-style Load).  Distributed and atom layouts admit
parallel reads; the consolidated file serializes through one stream.
"""


from repro.ckpt.consolidated import save_consolidated_checkpoint
from repro.core.convert import ucp_convert
from repro.dist.topology import ParallelConfig
from repro.storage.nvme import DEFAULT_NVME
from repro.storage.store import ObjectStore

from bench_util import make_engine, record_result

PARALLEL = ParallelConfig(tp=2, pp=2, dp=2)


def test_ablation_storage_layout(benchmark, tmp_path):
    engine = make_engine("gpt3-medium-bench", parallel=PARALLEL)
    engine.train(1)

    cons_dir = str(tmp_path / "cons")
    dist_dir = str(tmp_path / "dist")
    ucp_dir = str(tmp_path / "ucp")
    cons_bytes = save_consolidated_checkpoint(engine, cons_dir)
    info = benchmark.pedantic(
        lambda: engine.save_checkpoint(dist_dir), rounds=1, iterations=1
    )
    ucp_convert(dist_dir, ucp_dir)

    nvme = DEFAULT_NVME

    # consolidated: one stream reads everything
    consolidated_read_s = nvme.read_time(cons_bytes, parallel=1)

    # distributed: every rank reads its own files concurrently
    store = ObjectStore(dist_dir)
    rank_files = [f for f in store.list() if "optim_states" in f]
    per_rank_bytes = max(
        (store.base / f).stat().st_size for f in rank_files
    )
    distributed_read_s = nvme.read_time(per_rank_bytes, parallel=len(rank_files))

    # UCP atoms: many small files, deep parallel queue (DeepNVMe regime)
    ucp_store = ObjectStore(ucp_dir)
    atom_files = [f for f in ucp_store.list("atoms")]
    atom_bytes = sum((ucp_store.base / f).stat().st_size for f in atom_files)
    # reads split across the same number of concurrent workers as ranks
    ucp_read_s = nvme.read_time(
        atom_bytes // len(rank_files), parallel=nvme.max_parallel
    )

    assert distributed_read_s < consolidated_read_s
    assert ucp_read_s < consolidated_read_s

    record_result(
        "ablation_storage_layout",
        {
            "consolidated_bytes": cons_bytes,
            "distributed_files": len(rank_files),
            "atom_files": len(atom_files),
            "simulated_read_s": {
                "consolidated_single_stream": round(consolidated_read_s, 6),
                "distributed_per_rank_parallel": round(distributed_read_s, 6),
                "ucp_atoms_deep_queue": round(ucp_read_s, 6),
            },
        },
    )
