"""Provenance-checker smoke: header-only cost at benchmark scale.

The byte-provenance pass claims to prove coverage, exclusivity, and
padding hygiene for a whole conversion plan without reading a single
tensor payload.  This gate makes the claim measurable: it runs the full
source + target proof over a benchmark-scale checkpoint and records the
wall time and exact bytes of IO, asserting the reads stay in kilobytes
while the checkpoint payload is megabytes.
"""

import time

from repro.analysis import analyze_interchange
from repro.dist.topology import ParallelConfig
from repro.storage.store import ObjectStore

from bench_util import make_engine, record_result

SOURCE = ParallelConfig(tp=2, pp=2, dp=2, sp=1, zero_stage=1)
TARGET = ParallelConfig(tp=1, pp=1, dp=4, sp=1, zero_stage=2)


def test_provenance_smoke(tmp_path):
    engine = make_engine("gpt3-mini", parallel=SOURCE)
    engine.train(1)
    directory = str(tmp_path / "ckpt")
    info = engine.save_checkpoint(directory)

    # a fresh store so the counters measure the checker's IO alone
    store = ObjectStore(directory)
    start = time.perf_counter()
    analysis = analyze_interchange(directory, TARGET, store=store)
    wall_s = time.perf_counter() - start

    assert analysis.report.ok, analysis.report.render_text()
    params_proven = len(analysis.params)
    assert params_proven > 0

    payload_bytes = info.total_bytes
    bytes_read = store.bytes_read
    # the header-only contract, as numbers: kilobytes of reads against a
    # megabyte-scale checkpoint
    assert bytes_read < 256 * 1024, f"read {bytes_read} bytes"
    assert bytes_read * 4 < payload_bytes, (
        f"read {bytes_read} of {payload_bytes} payload bytes"
    )

    record_result(
        "analysis_provenance_smoke",
        {
            "source": SOURCE.describe(),
            "target": TARGET.describe(),
            "params_proven": params_proven,
            "checkpoint_bytes": payload_bytes,
            "provenance_bytes_read": bytes_read,
            "read_fraction": round(bytes_read / payload_bytes, 6),
            "wall_seconds": round(wall_s, 4),
            "clean": True,
        },
    )
