"""Race-detector smoke: a real training + save trace must verify clean.

The collective-ordering detector (``repro.analysis.collective_trace``)
is wired into every process group, so an ordinary training run plus a
checkpoint save produces the full trace for free.  This smoke gate
verifies the happy path stays race-free at benchmark scale, and that an
injected single-rank divergence is still caught — i.e. the detector has
not silently become a no-op.
"""

from repro.analysis import check_collective_ordering
from repro.dist.topology import ParallelConfig

from bench_util import make_engine, record_result

PARALLEL = ParallelConfig(tp=2, pp=2, dp=2, zero_stage=1)


def test_race_smoke(tmp_path):
    engine = make_engine("gpt3-mini", parallel=PARALLEL)
    engine.train(2)
    engine.save_checkpoint(str(tmp_path / "ckpt"))

    trace = engine.cluster.trace
    report = check_collective_ordering(trace)
    assert trace.num_events > 0
    assert report.ok, report.render_text()

    clean_events = trace.num_events

    # sanity: the detector must still flag a rank that takes a branch
    # its peers do not
    group = next(g for g in trace.group_members if g.startswith("dp:"))
    members = trace.group_members[group]
    trace.record("all_reduce", group, members, 4096, rank=members[0])
    injected = check_collective_ordering(trace)
    assert not injected.ok
    assert "UCP014" in [d.rule_id for d in injected.errors]

    record_result(
        "analysis_race_smoke",
        {
            "parallel": PARALLEL.describe(),
            "events_traced": clean_events,
            "groups_traced": len(trace.group_members),
            "clean": True,
            "injected_divergence_caught": True,
        },
    )
