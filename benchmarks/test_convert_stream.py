"""BENCH_convert_stream — streamed conversion & sliced-load byte costs.

The streaming pipeline lowers provenance interval maps into byte-range
read plans, so conversion never touches ``model_states`` files and a
sliced load pulls only each rank's partition bytes.  This benchmark
sweeps fig2-style interchange points (including the TP-degree change
the CI ``convert-perf`` job gates on) and records, per point:

* streamed vs full-read conversion — wall time, source bytes read,
  atom bytes written, cache hits (digest pass pre-warming extract);
* sliced vs whole-atom loading — UCP bytes read per target engine;
* the CI gate fraction: a single target rank's sliced read over the
  checkpoint's total state bytes (must stay under 0.5 for the
  TP-degree-change row).

Byte identity between the two conversion paths is asserted on every
row — the speedup is never allowed to change a single output byte.
"""

import time

from repro.core.convert import ucp_convert
from repro.core.loader import load_ucp_into_engine
from repro.dist.topology import ParallelConfig
from repro.storage.store import ObjectStore

from bench_util import make_engine, record_result

# (label, model, source parallel, target parallel)
SWEEP = [
    (
        "tp4->tp2",
        "gpt3-mini",
        ParallelConfig(tp=4, dp=2),
        ParallelConfig(tp=2, dp=2),
    ),
    (
        "tp2.pp2->dp4.zero2",
        "gpt3-mini",
        ParallelConfig(tp=2, pp=2, dp=2),
        ParallelConfig(dp=4, zero_stage=2),
    ),
    (
        "moe.ep->dp2",
        "moe-mini",
        ParallelConfig(tp=2, dp=2, expert_parallel=True),
        ParallelConfig(dp=2),
    ),
]
GATE_LABEL = "tp4->tp2"
GATE_MAX_FRACTION = 0.5


def _dir_digests(path):
    store = ObjectStore(path)
    return {rel: store.digest(rel) for rel in store.list(".")}


def _tag_bytes(store, tag):
    return sum(store.size(rel) for rel in store.list(tag))


def _load_bytes(model, parallel, ucp_dir, sliced):
    store = ObjectStore(ucp_dir)
    engine = make_engine(model, parallel=parallel, seed=0)
    load_ucp_into_engine(engine, ucp_dir, sliced=sliced, store=store)
    return store.bytes_read, engine


def test_bench_convert_stream(benchmark, tmp_path):
    rows = []
    gate_fraction = None
    for label, model, source, target in SWEEP:
        engine = make_engine(model, parallel=source)
        engine.train(2)
        ckpt = str(tmp_path / f"{label}-ckpt".replace(">", ""))
        engine.save_checkpoint(ckpt)
        src_store = ObjectStore(ckpt)
        ckpt_bytes = sum(src_store.size(rel) for rel in src_store.list("."))

        stream_dir = str(tmp_path / f"{label}-stream".replace(">", ""))
        start = time.perf_counter()
        streamed = ucp_convert(ckpt, stream_dir)
        streamed_s = time.perf_counter() - start

        full_dir = str(tmp_path / f"{label}-full".replace(">", ""))
        start = time.perf_counter()
        full = ucp_convert(ckpt, full_dir, streaming=False)
        full_s = time.perf_counter() - start

        # the optimization must be byte-invisible in the output
        assert _dir_digests(stream_dir) == _dir_digests(full_dir), label
        # and must never read the model_states / padding bytes
        assert 0 < streamed.bytes_read < ckpt_bytes, label

        sliced_bytes, _ = _load_bytes(model, target, stream_dir, sliced=True)
        whole_bytes, _ = _load_bytes(model, target, stream_dir, sliced=False)
        assert 0 < sliced_bytes < whole_bytes, label

        n_partitions = target.tp * target.pp * target.sp * target.dp
        state_bytes = streamed.atom_bytes
        fraction = (sliced_bytes / n_partitions) / state_bytes
        if label == GATE_LABEL:
            gate_fraction = fraction

        rows.append(
            {
                "interchange": label,
                "model": model,
                "source": source.describe(),
                "target": target.describe(),
                "checkpoint_bytes": ckpt_bytes,
                "streamed_convert_s": round(streamed_s, 4),
                "full_convert_s": round(full_s, 4),
                "streamed_bytes_read": streamed.bytes_read,
                "streamed_header_bytes": streamed.header_bytes,
                "streamed_digest_bytes": streamed.digest_bytes,
                "streamed_planned_state_bytes": streamed.planned_state_bytes,
                "full_bytes_read": full.bytes_read,
                "atom_bytes_written": streamed.atom_bytes,
                "cache_hits": streamed.cache_hits,
                "peak_window_bytes": streamed.peak_window_bytes,
                "sliced_load_bytes": sliced_bytes,
                "whole_load_bytes": whole_bytes,
                "per_rank_read_fraction": round(fraction, 4),
            }
        )

    # CI convert-perf gate: a TP-degree-change target rank reads under
    # half the checkpoint's state bytes via sliced atom reads
    assert gate_fraction is not None
    assert gate_fraction < GATE_MAX_FRACTION, gate_fraction

    # benchmark the gated interchange's streamed conversion precisely
    counter = [0]
    gate_ckpt = str(tmp_path / "tp4-tp2-ckpt")

    def streamed_convert_once():
        counter[0] += 1
        ucp_convert(gate_ckpt, str(tmp_path / f"bench-ucp-{counter[0]}"))

    benchmark.pedantic(streamed_convert_once, rounds=3, iterations=1)

    record_result(
        "BENCH_convert_stream",
        {
            "rows": rows,
            "gate": {
                "interchange": GATE_LABEL,
                "per_rank_read_fraction": round(gate_fraction, 4),
                "max_fraction": GATE_MAX_FRACTION,
            },
            "fields": {
                "streamed_bytes_read": "total source bytes the streamed "
                    "conversion pulled from disk: headers + manifest "
                    "digest verification + planned state, each byte read "
                    "once through the shared block cache",
                "streamed_header_bytes": "shard header bytes parsed "
                    "during planning",
                "streamed_digest_bytes": "bytes hashed to verify the "
                    "manifest digests of plan-touched files (whole "
                    "files, so this can exceed the planned state bytes "
                    "and push streamed_bytes_read above full_bytes_read "
                    "at small scales)",
                "streamed_planned_state_bytes": "state bytes the "
                    "lowered read plans actually need — the conversion "
                    "analogue of the sliced-load claim",
                "full_bytes_read": "source bytes the full-read path "
                    "read (every optimizer rank file, whole; "
                    "model_states are skipped by both paths)",
                "per_rank_read_fraction": "sliced-LOAD metric: one "
                    "target rank's sliced UCP read over the "
                    "checkpoint's state bytes — about loading the "
                    "converted checkpoint, not about conversion reads",
            },
            "note": "streamed conversion is digest-identical to the "
                    "full-read path on every row; conversion reads "
                    "exclude model_states files, and the 0.25x gate "
                    "fraction is a sliced-load (per_rank_read_fraction) "
                    "claim — conversion-byte totals are near-parity "
                    "because both paths read whole optimizer files "
                    "(streamed for digest verification)",
        },
    )
