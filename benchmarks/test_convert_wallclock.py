"""BENCH_convert_wallclock — streamed vs full-read conversion latency.

`BENCH_convert_stream` proves the byte claim (a reconfigured rank
streams a fraction of the checkpoint); this benchmark proves the
streamed pipeline also wins on *wall-clock* at paper-relevant scales,
sweeping shard size (model), shard count (source topology) and worker
count, and reporting p50/p95/p99 per path.

Methodology (single-box, noisy-neighbor tolerant):

* every config alternates streamed/full conversions back-to-back, so
  regime drift (page-cache state, CPU contention) inflates both paths'
  samples together rather than biasing one;
* the gate compares medians-of-samples, not single shots:
  ``ratio = p50(streamed) / p50(full) <= 1.0`` for every swept row;
* digest identity between the two paths' outputs is asserted on every
  row — the speedup is never allowed to change an output byte.

Mini-scale checkpoints (a few MB) are deliberately *not* swept: there
the fixed planning cost (~10 ms of interval-map lowering and range
assembly) exceeds the few-MB byte savings on a warm page cache, so the
streamed win starts at tens-of-MB shards — see docs/PERFORMANCE.md for
the crossover analysis.  ``REPRO_BENCH_SMOKE=1`` trims the sweep to the
CI smoke row.
"""

import os
import shutil
import statistics
import time

from repro.core.convert import ucp_convert
from repro.dist.topology import ParallelConfig
from repro.storage.store import ObjectStore

from bench_util import make_engine, record_result

GATE_MAX_RATIO = 1.0

# (label, model, source parallel, target parallel, workers, pairs, smoke)
#
# Worker-count axis: both paths are run at the same worker setting per
# row.  Single-thread (w=1) rows are deliberately absent: there both
# pipelines are hash/deserialize-dominated and tie within measurement
# noise (ratio ~0.95-1.05 — see docs/PERFORMANCE.md), so a gated row
# would be a coin flip.  From w=2 up the streamed win is structural:
# digest and extract overlap in the thread pool (both release the GIL),
# while the full-read path's whole-working-set deserialize + two-copy
# union gains nothing from extra workers.
SWEEP = [
    (
        "tp4->tp2/medium/w4",
        "gpt3-medium-bench",
        ParallelConfig(tp=4, dp=2),
        ParallelConfig(tp=2, dp=2),
        4,
        9,
        False,
    ),
    (
        "tp2.pp2->dp4.zero2/medium/w4",
        "gpt3-medium-bench",
        ParallelConfig(tp=2, pp=2, dp=2),
        ParallelConfig(dp=4, zero_stage=2),
        4,
        9,
        True,
    ),
    (
        "tp4->tp2/large/w2",
        "gpt3-large-bench",
        ParallelConfig(tp=4, dp=2),
        ParallelConfig(tp=2, dp=2),
        2,
        7,
        False,
    ),
    (
        "tp4->tp2/large/w4",
        "gpt3-large-bench",
        ParallelConfig(tp=4, dp=2),
        ParallelConfig(tp=2, dp=2),
        4,
        7,
        False,
    ),
]


def _dir_digests(path):
    store = ObjectStore(path)
    return {rel: store.digest(rel) for rel in store.list(".")}


def _percentiles(samples):
    ordered = sorted(samples)

    def pct(p):
        # nearest-rank percentile: honest with single-digit sample sizes
        idx = min(len(ordered) - 1, max(0, round(p * (len(ordered) - 1))))
        return round(ordered[idx], 4)

    return {"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99)}


def test_bench_convert_wallclock(benchmark, tmp_path):
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    sweep = [row for row in SWEEP if row[6]] if smoke else SWEEP

    # durable (fsync-on-commit) writes add identical cost to both paths
    # but double the per-sample variance on a shared box; this benchmark
    # measures the conversion pipelines, not fsync latency (the crash
    # suite covers durability — see test_crashenum_smoke.py)
    prior_durable = os.environ.get("REPRO_DURABLE")
    os.environ["REPRO_DURABLE"] = "0"
    try:
        _run_sweep(benchmark, tmp_path, sweep)
    finally:
        if prior_durable is None:
            os.environ.pop("REPRO_DURABLE", None)
        else:
            os.environ["REPRO_DURABLE"] = prior_durable


def _run_sweep(benchmark, tmp_path, sweep):
    rows = []
    for label, model, source, target, workers, pairs, _ in sweep:
        safe = label.replace(">", "").replace("/", "-")
        engine = make_engine(model, parallel=source)
        engine.train(2)
        ckpt = str(tmp_path / f"{safe}-ckpt")
        engine.save_checkpoint(ckpt)
        del engine
        src_store = ObjectStore(ckpt)
        ckpt_bytes = sum(src_store.size(rel) for rel in src_store.list("."))

        counter = [0]

        def convert_once(streaming, keep=None):
            counter[0] += 1
            out = keep or str(tmp_path / f"{safe}-scratch-{counter[0]}")
            start = time.perf_counter()
            report = ucp_convert(
                ckpt, out, streaming=streaming, workers=workers
            )
            elapsed = time.perf_counter() - start
            if keep is None:
                shutil.rmtree(out)
            return elapsed, report

        # identity pair (kept on disk) doubles as warmup
        stream_dir = str(tmp_path / f"{safe}-stream")
        full_dir = str(tmp_path / f"{safe}-full")
        _, streamed_report = convert_once(True, keep=stream_dir)
        _, full_report = convert_once(False, keep=full_dir)
        assert _dir_digests(stream_dir) == _dir_digests(full_dir), label
        shutil.rmtree(stream_dir)
        shutil.rmtree(full_dir)

        # streamed never reads the bytes the plan proves unneeded: the
        # model_states files (weights re-derivable from fp32 optimizer
        # state) stay untouched, so conversion reads stay strictly under
        # the checkpoint's on-disk footprint.  (Both paths read whole
        # optimizer rank files — streamed for manifest digests, full by
        # construction — so conversion bytes are near-parity; the 0.25x
        # per-rank fraction is the sliced-load claim in
        # BENCH_convert_stream.)
        assert 0 < streamed_report.bytes_read < ckpt_bytes, label

        streamed_s, full_s = [], []
        for _ in range(pairs):
            streamed_s.append(convert_once(True)[0])
            full_s.append(convert_once(False)[0])

        ratio = statistics.median(streamed_s) / statistics.median(full_s)
        rows.append(
            {
                "interchange": label,
                "model": model,
                "source": source.describe(),
                "target": target.describe(),
                "workers": workers,
                "pairs": pairs,
                "checkpoint_bytes": ckpt_bytes,
                "streamed_wallclock_s": _percentiles(streamed_s),
                "full_wallclock_s": _percentiles(full_s),
                "wallclock_ratio_p50": round(ratio, 4),
                "streamed_bytes_read": streamed_report.bytes_read,
                "full_bytes_read": full_report.bytes_read,
                "streamed_digest_bytes": streamed_report.digest_bytes,
                "streamed_planned_state_bytes":
                    streamed_report.planned_state_bytes,
                "num_preads": streamed_report.num_preads,
                "num_batches": streamed_report.num_batches,
                "ranges_coalesced": streamed_report.ranges_coalesced,
                "cache_hits": streamed_report.cache_hits,
                "stage_seconds": {
                    name: round(seconds, 4)
                    for name, seconds in
                    streamed_report.stage_seconds.items()
                },
            }
        )

    # CI convert-perf gate: streamed conversion is at least as fast as
    # the full-read path (by sample median) at every swept config
    for row in rows:
        assert row["wallclock_ratio_p50"] <= GATE_MAX_RATIO, (
            row["interchange"],
            row["wallclock_ratio_p50"],
        )

    # register the smoke row's streamed conversion with pytest-benchmark
    gate_row = next(r for r in SWEEP if r[6])
    label, model, source, _, workers, _, _ = gate_row
    safe = label.replace(">", "").replace("/", "-")
    gate_ckpt = str(tmp_path / f"{safe}-ckpt")
    counter = [0]

    def streamed_convert_once():
        counter[0] += 1
        ucp_convert(
            gate_ckpt,
            str(tmp_path / f"bench-wallclock-{counter[0]}"),
            workers=workers,
        )

    benchmark.pedantic(streamed_convert_once, rounds=3, iterations=1)

    record_result(
        "BENCH_convert_wallclock",
        {
            "rows": rows,
            "gate": {
                "max_wallclock_ratio": GATE_MAX_RATIO,
                "rule": "p50(streamed)/p50(full) per row, interleaved "
                        "same-box pairs",
            },
            "fields": {
                "streamed_wallclock_s": "nearest-rank percentiles over "
                    "the row's interleaved streamed samples",
                "full_wallclock_s": "same, for the full-read path",
                "wallclock_ratio_p50": "p50(streamed)/p50(full); the CI "
                    "convert-perf job gates this at <= 1.0",
                "streamed_bytes_read": "total source bytes the streamed "
                    "conversion read from disk (headers + digest "
                    "verification + planned state; each byte once, "
                    "model_states never touched)",
                "full_bytes_read": "source bytes the full-read path read "
                    "(every touched rank file, whole)",
                "streamed_digest_bytes": "bytes hashed for manifest "
                    "verification of plan-touched files",
                "streamed_planned_state_bytes": "state bytes the lowered "
                    "read plans actually need",
            },
            "note": "streamed output is digest-identical to the "
                    "full-read path on every row; mini-scale rows are "
                    "intentionally absent (fixed ~10ms planning cost "
                    "dominates below tens-of-MB shards — see "
                    "docs/PERFORMANCE.md)",
        },
    )
