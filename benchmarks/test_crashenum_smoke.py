"""BENCH_crash_enum — cost of the FS-op witness and crash enumerator.

Two claims keep the crash-consistency tooling usable:

* **Recording is cheap**: tracing every store file effect of a durable
  save (:func:`fstrace`) must cost at most ``MAX_RECORD_OVERHEAD``x the
  untraced save — the recorder is list appends plus one SHA-256 per
  write, and the fsyncs it records dwarf both.
* **Replay is bounded and honest**: enumerating the crash states of a
  full save→convert trace under a state cap must finish within
  ``MAX_ENUM_S`` seconds, prove recovery from every state it did
  materialize, and *report* the cap (UCP035) rather than pass as
  exhaustive — the recorded rows log exactly how much of the state
  space a bounded run covered (no silent caps).
"""

import os
import time

from repro.analysis.fswitness import check_fs_trace, fstrace
from repro.ckpt.saver import save_distributed_checkpoint
from repro.core.convert import ucp_convert
from repro.dist.topology import ParallelConfig

from bench_util import make_engine, record_result

PARALLEL = ParallelConfig(tp=2, pp=1, dp=1)
REPEATS = 3
MAX_RECORD_OVERHEAD = 1.5
STATE_CAP = 192
MAX_ENUM_S = 60.0


def _best_of(fn, repeats=REPEATS):
    """Min-of-N wall time: the least-noise estimator for short runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_crash_enum_smoke(benchmark, tmp_path):
    os.environ["REPRO_DURABLE"] = "1"
    try:
        engine = make_engine(parallel=PARALLEL)
        engine.train(1)
        runs = [0]

        def save_plain():
            runs[0] += 1
            save_distributed_checkpoint(
                engine, str(tmp_path / f"plain{runs[0]}")
            )

        def save_traced():
            runs[0] += 1
            with fstrace():
                save_distributed_checkpoint(
                    engine, str(tmp_path / f"traced{runs[0]}")
                )

        save_plain()  # warmup
        plain_s = _best_of(save_plain)
        traced_s = _best_of(save_traced)
        record_ratio = traced_s / plain_s

        # one full pipeline trace for the replay side
        ckpt = str(tmp_path / "ckpt")
        ucp = str(tmp_path / "ucp")
        with fstrace() as rec:
            save_distributed_checkpoint(engine, ckpt)
            ucp_convert(ckpt, ucp)

        start = time.perf_counter()
        report = benchmark.pedantic(
            lambda: check_fs_trace(rec, state_cap=STATE_CAP),
            rounds=1, iterations=1,
        )
        enum_s = time.perf_counter() - start
    finally:
        os.environ.pop("REPRO_DURABLE", None)

    capped = [d for d in report.by_rule("UCP035")]
    record_result(
        "BENCH_crash_enum",
        {
            "workload": {
                "parallel": PARALLEL.describe(),
                "trace": "save + ucp_convert",
            },
            "repeats": REPEATS,
            "trace_ops": len(rec),
            "store_roots": rec.roots(),
            "save_plain_s": round(plain_s, 4),
            "save_traced_s": round(traced_s, 4),
            "record_overhead_ratio": round(record_ratio, 3),
            "record_budget_ratio": MAX_RECORD_OVERHEAD,
            "state_cap": STATE_CAP,
            "enumeration_capped": bool(capped),
            "enum_s": round(enum_s, 3),
            "enum_budget_s": MAX_ENUM_S,
            "errors": len(report.errors),
        },
    )
    assert report.errors == [], report.render_text()
    assert record_ratio <= MAX_RECORD_OVERHEAD, (
        f"fstrace recording costs {record_ratio:.2f}x the plain durable "
        f"save (budget {MAX_RECORD_OVERHEAD}x): {traced_s:.3f}s vs "
        f"{plain_s:.3f}s"
    )
    assert enum_s <= MAX_ENUM_S, (
        f"bounded crash enumeration took {enum_s:.1f}s "
        f"(budget {MAX_ENUM_S:.0f}s) at cap {STATE_CAP}"
    )
    # a trace this size must overflow the cap — and say so
    assert capped, "expected the bounded run to report UCP035"
