"""Extension — expert parallelism as a new UCP pattern (paper §5).

The paper's future work calls for "extensible patterns for emerging
parallelism strategies".  This benchmark exercises the repository's
demonstration of that claim: MoE expert tensors sharded along the
*expert axis* (DeepSpeed-MoE layout) — a pattern the original Fig 5
does not cover — converting to and from the tensor-sliced layout.
"""

from repro.core.atom import AtomStore
from repro.core.resume import resume_training
from repro.dist.topology import ParallelConfig

from bench_util import (
    PAPER_LOSS_BAND,
    loss_curve,
    make_engine,
    max_abs_delta,
    record_result,
)

EP_SOURCE = ParallelConfig(tp=2, pp=2, dp=2, expert_parallel=True)
TS_TARGET = ParallelConfig(tp=2, pp=1, dp=2, expert_parallel=False)
EP_TARGET = ParallelConfig(tp=1, pp=2, dp=2, expert_parallel=True)
RESUME_AT = 10
TOTAL = 20


def test_ext_expert_parallel(benchmark, tmp_path):
    source = make_engine("moe-mini", parallel=EP_SOURCE)
    source.train(RESUME_AT)
    ckpt = str(tmp_path / "ckpt")
    source.save_checkpoint(ckpt)
    baseline = loss_curve(source, TOTAL - RESUME_AT)

    engine = benchmark.pedantic(
        lambda: resume_training(ckpt, TS_TARGET), rounds=1, iterations=1
    )
    to_tensor_sliced = loss_curve(engine, TOTAL - RESUME_AT)
    to_ep = loss_curve(resume_training(ckpt, EP_TARGET), TOTAL - RESUME_AT)

    deltas = {
        "ep->tensor_sliced": max_abs_delta(baseline, to_tensor_sliced),
        "ep->ep_new_shape": max_abs_delta(baseline, to_ep),
    }
    for name, delta in deltas.items():
        assert delta <= PAPER_LOSS_BAND, name

    # atoms are layout-free: the expert tensor is consolidated 3-dim
    atoms = AtomStore(str(tmp_path / "ckpt/ucp_global_step10"))
    expert = atoms.read_state("blocks.0.ffn.up_weight", "fp32")
    cfg = source.model_cfg
    assert expert.shape == (cfg.num_experts, cfg.intermediate, cfg.hidden)

    record_result(
        "ext_expert_parallel",
        {
            "source": EP_SOURCE.describe(),
            "targets": {name: float(d) for name, d in deltas.items()},
            "expert_atom_shape": list(expert.shape),
            "note": "a pattern added after the fact (expert_parallel) "
                    "interoperates with every existing layout through the "
                    "same atoms",
        },
    )
