"""Fig 10 — Mixtral-style MoE resume.

Paper: a Mixtral-7x8B variant trained with TP=1, PP=2, DP=4 and
resumed at iteration 501 under TP=2, PP=2, DP=2 — the hardest case,
because TP=2 on the target means the 3-dim expert tensors must be
*split* from consolidated atoms that were built from unsharded experts.
"""


from repro.core.resume import resume_training
from repro.dist.topology import ParallelConfig

from bench_util import (
    PAPER_LOSS_BAND,
    loss_curve,
    make_engine,
    max_abs_delta,
    record_result,
)

SOURCE = ParallelConfig(tp=1, pp=2, dp=4)
TARGET = ParallelConfig(tp=2, pp=2, dp=2)
RESUME_AT = 15
TOTAL = 30


def test_fig10_moe_resume(benchmark, tmp_path):
    source = make_engine("moe-mini", parallel=SOURCE)
    pre = loss_curve(source, RESUME_AT)
    ckpt = str(tmp_path / "ckpt")
    source.save_checkpoint(ckpt)
    baseline = loss_curve(source, TOTAL - RESUME_AT)

    engine = benchmark.pedantic(
        lambda: resume_training(ckpt, TARGET), rounds=1, iterations=1
    )
    resumed = loss_curve(engine, TOTAL - RESUME_AT)
    delta = max_abs_delta(baseline, resumed)
    assert delta <= PAPER_LOSS_BAND
    assert baseline[-1] < pre[0]

    record_result(
        "fig10_moe",
        {
            "model": "moe-mini (4 experts, top-2 routing, GQA)",
            "source": SOURCE.describe(),
            "target": TARGET.describe(),
            "pre_resume_losses": pre,
            "baseline_losses": baseline,
            "resumed_losses": resumed,
            "max_loss_delta": delta,
        },
    )
