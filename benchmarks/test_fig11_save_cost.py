"""Fig 11 — checkpoint saving cost: standard vs UCP-enabled training.

The paper's claim: UCP adds **zero** save-time overhead, because the
input to UCP is the ordinary distributed checkpoint that training
already writes — conversion happens lazily, only on a topology change.
We measure save wall-time and bytes for three model sizes with UCP
disabled and enabled; the code path is identical, and the measurements
confirm it.
"""

import time


from repro.dist.topology import ParallelConfig
from repro.core.resume import resume_training

from bench_util import make_engine, record_result

MODELS = ["gpt3-small-bench", "gpt3-medium-bench", "gpt3-large-bench"]
PARALLEL = ParallelConfig(tp=2, pp=2, dp=2)


def _timed_save(engine, directory):
    start = time.perf_counter()
    info = engine.save_checkpoint(directory)
    return time.perf_counter() - start, info


def test_fig11_save_cost(benchmark, tmp_path):
    rows = []
    for model in MODELS:
        # standard training run: checkpoints, never converts
        standard = make_engine(model, parallel=PARALLEL)
        standard.train(1)
        std_time, std_info = _timed_save(standard, str(tmp_path / f"{model}-std"))

        # UCP-enabled run: same save call; conversion deferred to resume
        ucp_run = make_engine(model, parallel=PARALLEL)
        ucp_run.train(1)
        ucp_time, ucp_info = _timed_save(ucp_run, str(tmp_path / f"{model}-ucp"))
        # ... later, a resume elsewhere converts; the save above already
        # happened and its cost is fixed
        resume_training(str(tmp_path / f"{model}-ucp"), ParallelConfig(dp=2))

        assert ucp_info.total_bytes == std_info.total_bytes
        assert len(ucp_info.files) == len(std_info.files)
        rows.append(
            {
                "model": model,
                "standard_save_s": round(std_time, 4),
                "ucp_enabled_save_s": round(ucp_time, 4),
                "bytes": std_info.total_bytes,
                "simulated_nvme_write_s": round(std_info.simulated_write_s, 4),
            }
        )

    # benchmark the largest model's save path precisely
    big = make_engine(MODELS[-1], parallel=PARALLEL)
    big.train(1)
    counter = [0]

    def save_once():
        counter[0] += 1
        return big.save_checkpoint(str(tmp_path / f"bench-{counter[0]}"))

    benchmark.pedantic(save_once, rounds=3, iterations=1)

    # identical code path => identical bytes; wall times within noise
    for row in rows:
        ratio = row["ucp_enabled_save_s"] / max(row["standard_save_s"], 1e-9)
        assert 0.5 < ratio < 2.0, row  # pure measurement noise band

    record_result(
        "fig11_save_cost",
        {
            "parallel": PARALLEL.describe(),
            "rows": rows,
            "claim": "UCP-enabled saving writes byte-identical checkpoints "
                     "through the identical code path (zero overhead)",
        },
    )
