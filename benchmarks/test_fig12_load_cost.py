"""Fig 12 — loading cost: standard load vs UCP convert + load.

The paper keeps GPU count and strategy fixed (standard loads cannot
survive a change) and compares restart-to-ready time with plain
distributed-checkpoint loading against convert-to-UCP + load-UCP; the
UCP path costs 1.14x-1.37x.  Both paths here include engine
reconstruction (a real resume restarts worker processes).  At mini
scale the per-atom file latency is proportionally larger than on the
paper's DeepNVMe setup, so our ratios are higher — but the shape holds:
the UCP path is a small constant factor over standard loading, and the
factor *shrinks* as models grow (bandwidth amortizes the per-file
latency).
"""

import time


from repro.core.convert import ucp_convert
from repro.core.loader import load_ucp_into_engine
from repro.dist.topology import ParallelConfig
from repro.storage.store import ObjectStore

from bench_util import make_engine, record_result

MODELS = ["gpt3-small-bench", "gpt3-medium-bench", "gpt3-large-bench"]
PARALLEL = ParallelConfig(tp=2, pp=2, dp=2)
PAPER_RATIO_RANGE = (1.14, 1.37)
# upper bound is generous: mini-scale per-file latency inflates the
# constant factor, and the streamed converter charges its integrity
# digests as real windowed reads (the legacy path's whole-file digests
# were unaccounted), both of which shrink as models grow
ACCEPTED_RATIO_RANGE = (1.0, 10.0)


def _standard_resume(model, ckpt):
    engine = make_engine(model, parallel=PARALLEL)
    engine.load_checkpoint(ckpt)
    return engine


def _ucp_resume(model, ckpt, ucp_dir):
    engine = make_engine(model, parallel=PARALLEL)
    report = ucp_convert(ckpt, ucp_dir, workers=0)
    # whole-atom reads match the paper's Fig 12 loader; the sliced
    # byte-range path (this repo's extension) is swept separately below
    # and in benchmarks/test_convert_stream.py
    load_ucp_into_engine(engine, ucp_dir, max_cached_atoms=256, sliced=False)
    return engine, report


def test_fig12_load_cost(benchmark, tmp_path):
    # warm both code paths once so the first timed row doesn't pay
    # import/page-cache costs
    warm = make_engine(MODELS[0], parallel=PARALLEL)
    warm.train(1)
    warm_ckpt = str(tmp_path / "warmup-ckpt")
    warm.save_checkpoint(warm_ckpt)
    _standard_resume(MODELS[0], warm_ckpt)
    _ucp_resume(MODELS[0], warm_ckpt, str(tmp_path / "warmup-ucp"))

    rows = []
    for model in MODELS:
        src = make_engine(model, parallel=PARALLEL)
        src.train(1)
        ckpt = str(tmp_path / f"{model}-ckpt")
        src.save_checkpoint(ckpt)

        start = time.perf_counter()
        _standard_resume(model, ckpt)
        standard_s = time.perf_counter() - start

        start = time.perf_counter()
        _, report = _ucp_resume(model, ckpt, str(tmp_path / f"{model}-ucp"))
        ucp_s = time.perf_counter() - start

        # sliced-vs-whole load sweep: byte-range atom reads must never
        # pull more UCP bytes than whole-atom reads, at any model size
        ucp_dir = str(tmp_path / f"{model}-ucp")
        load_bytes = {}
        for sliced in (True, False):
            store = ObjectStore(ucp_dir)
            target = make_engine(model, parallel=PARALLEL)
            load_ucp_into_engine(
                target, ucp_dir, max_cached_atoms=256, sliced=sliced,
                store=store,
            )
            load_bytes[sliced] = store.bytes_read
        assert 0 < load_bytes[True] <= load_bytes[False], (model, load_bytes)

        rows.append(
            {
                "model": model,
                "standard_restart_s": round(standard_s, 4),
                "ucp_convert_plus_load_s": round(ucp_s, 4),
                "convert_s": round(report.total_seconds, 4),
                "ratio": round(ucp_s / max(standard_s, 1e-9), 3),
                "atom_bytes": report.atom_bytes,
                "sliced_load_bytes": load_bytes[True],
                "whole_load_bytes": load_bytes[False],
            }
        )

    # benchmark the medium model's UCP resume path precisely
    counter = [0]

    def ucp_resume_once():
        counter[0] += 1
        _ucp_resume(
            MODELS[1],
            str(tmp_path / f"{MODELS[1]}-ckpt"),
            str(tmp_path / f"bench-ucp-{counter[0]}"),
        )

    benchmark.pedantic(ucp_resume_once, rounds=3, iterations=1)

    low, high = ACCEPTED_RATIO_RANGE
    for row in rows:
        assert low <= row["ratio"] <= high, row
    # the shape claim: the overhead factor does not grow with model size
    # (generous slack: single-round wall timings are noisy under load)
    assert rows[-1]["ratio"] <= rows[0]["ratio"] * 2.0

    record_result(
        "fig12_load_cost",
        {
            "parallel": PARALLEL.describe(),
            "rows": rows,
            "paper_ratio_range": list(PAPER_RATIO_RANGE),
            "note": "ratios include engine reconstruction on both paths; "
                    "mini-scale per-atom file latency inflates the factor "
                    "vs the paper's DeepNVMe numbers, and it shrinks with "
                    "model size as bandwidth dominates; sliced_load_bytes "
                    "vs whole_load_bytes shows the byte-range load path "
                    "never reads more than whole-atom loading",
        },
    )
