"""Fig 1 — naive distributed checkpoints break on topology changes.

The paper's motivating figure: a run saved under one parallelism
strategy cannot resume under another (runtime name/shape mismatch) with
strict per-rank loaders.  We measure the failure across topology
changes and benchmark the (fast) failing load path.
"""

import pytest

from repro.ckpt.errors import CheckpointIncompatibleError
from repro.dist.topology import ParallelConfig

from bench_util import make_engine, record_result

SOURCE = ParallelConfig(tp=2, pp=2, dp=2)
CHANGED_TOPOLOGIES = [
    ParallelConfig(tp=1, pp=1, dp=1),   # shrink to one GPU
    ParallelConfig(tp=1, pp=2, dp=4),   # same world, different shape
    ParallelConfig(tp=2, pp=2, dp=1),   # lose the DP replicas
    ParallelConfig(tp=1, pp=1, dp=8, zero_stage=1),  # pure data parallel
]


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    ckpt = str(tmp_path_factory.mktemp("fig1"))
    engine = make_engine(parallel=SOURCE)
    engine.train(2)
    engine.save_checkpoint(ckpt)
    return ckpt


def test_fig1_naive_resume_fails(benchmark, checkpoint):
    failures = []

    def attempt_all():
        failed = 0
        for target in CHANGED_TOPOLOGIES:
            engine = make_engine(parallel=target)
            try:
                engine.load_checkpoint(checkpoint)
            except CheckpointIncompatibleError as exc:
                failed += 1
                failures.append(
                    {"target": target.describe(), "error": str(exc)[:120]}
                )
        return failed

    failed = benchmark.pedantic(attempt_all, rounds=1, iterations=1)
    assert failed == len(CHANGED_TOPOLOGIES), (
        "every topology change must fail the strict loader"
    )

    # the unchanged topology still loads fine
    same = make_engine(parallel=SOURCE)
    same.load_checkpoint(checkpoint)
    assert same.iteration == 2

    record_result(
        "fig1_naive_failure",
        {
            "source": SOURCE.describe(),
            "failed_targets": failures,
            "same_topology_loads": True,
        },
    )
