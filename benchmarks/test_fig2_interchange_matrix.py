"""Fig 2/3 — UCP as a common interchange format.

The design argument: direct converters need N x (N-1) implementations;
UCP needs one converter per source (to UCP) and one loader per target
(from UCP).  We exercise the full Source x Target matrix through the
single UCP path and benchmark one complete convert+load.
"""

from repro.core.resume import resume_training
from repro.dist.topology import ParallelConfig

from bench_util import PAPER_LOSS_BAND, loss_curve, make_engine, max_abs_delta, record_result

SOURCES = [
    ParallelConfig(tp=2, pp=2, dp=2),
    ParallelConfig(tp=1, pp=1, dp=4, zero_stage=2),
    ParallelConfig(tp=1, pp=1, dp=2, zero_stage=3),
    ParallelConfig(tp=2, pp=1, dp=2, sp=1),
]
TARGETS = [
    ParallelConfig(tp=1, pp=1, dp=1),
    ParallelConfig(tp=2, pp=2, dp=1),
    ParallelConfig(tp=1, pp=2, dp=2),
    ParallelConfig(tp=1, pp=1, dp=4, zero_stage=2),
]


def test_fig2_interchange_matrix(benchmark, tmp_path):
    matrix = []
    baselines = {}
    checkpoints = {}
    for i, source in enumerate(SOURCES):
        engine = make_engine(parallel=source)
        engine.train(2)
        ckpt = str(tmp_path / f"src{i}")
        engine.save_checkpoint(ckpt)
        checkpoints[source.describe()] = ckpt
        baselines[source.describe()] = loss_curve(engine, 2)

    def convert_and_load_one():
        return resume_training(
            checkpoints[SOURCES[0].describe()], TARGETS[1],
            ucp_dir=str(tmp_path / "bench_ucp"),
        )

    benchmark.pedantic(convert_and_load_one, rounds=1, iterations=1)

    for source in SOURCES:
        for target in TARGETS:
            engine = resume_training(checkpoints[source.describe()], target)
            resumed = loss_curve(engine, 2)
            delta = max_abs_delta(baselines[source.describe()], resumed)
            matrix.append(
                {
                    "source": source.describe(),
                    "target": target.describe(),
                    "max_loss_delta": delta,
                }
            )
            assert delta <= PAPER_LOSS_BAND, (source.describe(), target.describe())

    record_result(
        "fig2_interchange_matrix",
        {
            "pairs_tested": len(matrix),
            "converters_needed_direct": len(SOURCES) * (len(SOURCES) - 1),
            "converters_needed_ucp": 1,
            "matrix": matrix,
        },
    )
