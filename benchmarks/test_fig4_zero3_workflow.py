"""Fig 4 — the UCP workflow for ZeRO-3 (DP=4 source -> DP=2 target).

Follows the paper's figure exactly: a ZeRO-3 run on 4 GPUs saves flat
fp32 shards with alignment padding; Extract/Union build consolidated
atoms with padding stripped; GenUcpMetadata computes the DP=2 target
map with fresh padding; Load streams atoms into the 2-GPU flat buffers.
"""

from repro.core.atom import AtomStore
from repro.core.convert import ucp_convert
from repro.core.loader import load_ucp_into_engine
from repro.core.ops import gen_ucp_metadata
from repro.dist.topology import ParallelConfig
from repro.models import get_config

from bench_util import PAPER_LOSS_BAND, loss_curve, make_engine, max_abs_delta, record_result

SOURCE = ParallelConfig(tp=1, pp=1, dp=4, zero_stage=3)
TARGET = ParallelConfig(tp=1, pp=1, dp=2, zero_stage=3)


def test_fig4_zero3_workflow(benchmark, tmp_path):
    src = make_engine(parallel=SOURCE)
    src.train(2)
    ckpt = str(tmp_path / "ckpt")
    info = src.save_checkpoint(ckpt)
    baseline = loss_curve(src, 3)

    # ZeRO-3 model states are flat per-dp partitions, not full tensors
    assert sum("zero3_dp_rank" in f for f in info.files) == 4

    ucp_dir = str(tmp_path / "ucp")
    report = benchmark.pedantic(
        lambda: ucp_convert(ckpt, ucp_dir) if not AtomStore(ucp_dir).list_atoms()
        else None,
        rounds=1, iterations=1,
    )

    # atoms are consolidated and padding-free
    store = AtomStore(ucp_dir)
    cfg = get_config("gpt3-mini")
    emb = store.read_state("embedding.weight", "fp32")
    assert emb.shape[0] == cfg.vocab_size

    # target metadata re-introduces alignment padding for the new width
    plan = gen_ucp_metadata(cfg, TARGET)
    rank_layout = plan.layout.rank_layout(0, 0, 0)
    assert rank_layout.flat_numel % (2 * rank_layout.alignment) == 0

    dst = make_engine(parallel=TARGET, seed=0)
    load_ucp_into_engine(dst, ucp_dir)
    resumed = loss_curve(dst, 3)
    delta = max_abs_delta(baseline, resumed)
    assert delta <= PAPER_LOSS_BAND

    record_result(
        "fig4_zero3_workflow",
        {
            "source": SOURCE.describe(),
            "target": TARGET.describe(),
            "source_rank_files": len(info.files),
            "baseline_losses": baseline,
            "resumed_losses": resumed,
            "max_loss_delta": delta,
        },
    )
