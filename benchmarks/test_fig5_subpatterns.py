"""Fig 5 — fragment sub-patterns: MoE expert tensors and GQA fused QKV.

The paper's two hard sharding cases under TP=2: a 3-dim expert weight
[n_experts, hidden_out, hidden_in] partitioned along hidden_out within
every expert, and a fused QKV tensor whose Q/K/V sections have
*different sizes* under GQA.  We verify UCP's sub-patterns consolidate
both exactly, benchmark the union, and demonstrate params_to_average.
"""

import numpy as np

from repro.core.convert import ucp_convert
from repro.core.atom import AtomStore
from repro.core.ops import ParamFragment, union
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.parallel.sp import average_param_copies, perturb_copies_for_demo
from repro.parallel.sharding import ExpertFragment, FusedSectionsFragment
from repro.parallel.tp import PATTERN_FRAGMENT, PATTERN_TO_AVERAGE, ShardSpec

from bench_util import make_engine, record_result


def _fragment(name, shard, tp):
    flat = np.ascontiguousarray(shard, dtype=np.float32).reshape(-1)
    return ParamFragment(
        name=name, kind="fp32", data=flat, shard_start=0, shard_end=flat.size,
        pp_stage=0, sp_rank=0, tp_rank=tp, dp_rank=0,
        shard_shape=tuple(shard.shape),
    )


def test_fig5_subpatterns(benchmark, tmp_path):
    gen = np.random.default_rng(5)

    # --- MoE expert tensor: [4 experts, hidden_out=8, hidden_in=6], TP=2
    moe_frag = ExpertFragment(expert_axis=0, shard_dim=1)
    moe_full = gen.standard_normal((4, 8, 6)).astype(np.float32)
    moe_spec = ShardSpec(PATTERN_FRAGMENT, (4, 8, 6), (4, 8, 6), moe_frag)
    moe_fragments = [
        _fragment("moe.up_weight", moe_frag.shard(moe_full, 2, tp), tp)
        for tp in range(2)
    ]

    # --- GQA fused QKV: q=8, k=4, v=4 rows, TP=2 -> variable sections
    qkv_frag = FusedSectionsFragment(dim=0, section_sizes=(8, 4, 4))
    qkv_full = gen.standard_normal((16, 6)).astype(np.float32)
    qkv_spec = ShardSpec(PATTERN_FRAGMENT, (16, 6), (16, 6), qkv_frag)
    qkv_fragments = [
        _fragment("attn.qkv.weight", qkv_frag.shard(qkv_full, 2, tp), tp)
        for tp in range(2)
    ]

    def union_both():
        a = union(moe_fragments, moe_spec, tp_degree=2)
        b = union(qkv_fragments, qkv_spec, tp_degree=2)
        return a, b

    moe_joined, qkv_joined = benchmark.pedantic(union_both, rounds=3, iterations=1)
    assert np.array_equal(moe_joined, moe_full)
    assert np.array_equal(qkv_joined, qkv_full)

    # --- params_to_average with genuinely divergent copies
    base = gen.standard_normal(16).astype(np.float32)
    copies = perturb_copies_for_demo(base, degree=4, scale=1e-3, seed=9)
    avg_spec = ShardSpec(PATTERN_TO_AVERAGE, (16,), (16,))
    avg_fragments = [
        ParamFragment(
            name="norm.weight", kind="fp32", data=copy, shard_start=0,
            shard_end=16, pp_stage=0, sp_rank=sp, tp_rank=0, dp_rank=0,
            shard_shape=(16,),
        )
        for sp, copy in copies.items()
    ]
    averaged = union(avg_fragments, avg_spec, tp_degree=1)
    assert np.allclose(averaged, average_param_copies(list(copies.values())))
    # averaging 4 copies shrinks the 1e-3 noise by ~2x
    assert np.abs(averaged - base).max() < 2e-3

    # --- end-to-end: an MoE + GQA model converts and loads under new TP
    src = make_engine("moe-mini", parallel=ParallelConfig(tp=2, pp=1, dp=2))
    src.train(1)
    ckpt, ucp = str(tmp_path / "c"), str(tmp_path / "u")
    src.save_checkpoint(ckpt)
    ucp_convert(ckpt, ucp)
    atoms = AtomStore(ucp).list_atoms()
    assert "blocks.0.ffn.up_weight" in atoms
    assert "blocks.0.attn.qkv.weight" in atoms

    record_result(
        "fig5_subpatterns",
        {
            "moe_roundtrip_exact": True,
            "gqa_roundtrip_exact": True,
            "gqa_section_sizes": [8, 4, 4],
            "params_to_average_max_residual": float(np.abs(averaged - base).max()),
            "moe_model_atoms": len(atoms),
        },
    )
