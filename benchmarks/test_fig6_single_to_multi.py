"""Fig 6 — single Source to multiple Targets.

The paper trains GPT-3 with TP=2, PP=2, DP=2 (ZeRO-1), converts the
iteration-100 checkpoint to UCP, and resumes under many different GPU
counts and strategies; all training curves continue the baseline.  We
reproduce the experiment at mini scale: resume at iteration 20 of 40.
"""


from repro.core.resume import resume_training
from repro.dist.topology import ParallelConfig

from bench_util import (
    PAPER_LOSS_BAND,
    loss_curve,
    make_engine,
    max_abs_delta,
    record_result,
)

SOURCE = ParallelConfig(tp=2, pp=2, dp=2, zero_stage=1)
TARGETS = [
    ParallelConfig(tp=1, pp=1, dp=1),                 # 8 GPUs -> 1 GPU
    ParallelConfig(tp=2, pp=1, dp=2),                 # drop pipeline
    ParallelConfig(tp=1, pp=2, dp=2),                 # drop tensor slicing
    ParallelConfig(tp=1, pp=1, dp=4, zero_stage=2),   # pure ZeRO-2 DP
    ParallelConfig(tp=1, pp=1, dp=2, sp=2),           # sequence parallel
]
RESUME_AT = 20
TOTAL = 40


def test_fig6_single_source_to_multiple_targets(benchmark, tmp_path):
    source = make_engine(parallel=SOURCE)
    pre = loss_curve(source, RESUME_AT)
    ckpt = str(tmp_path / "ckpt")
    source.save_checkpoint(ckpt)
    baseline = loss_curve(source, TOTAL - RESUME_AT)

    curves = {"source_continued": baseline}
    deltas = {}

    first_target = TARGETS[0]
    engine = benchmark.pedantic(
        lambda: resume_training(ckpt, first_target), rounds=1, iterations=1
    )
    curves[first_target.describe()] = loss_curve(engine, TOTAL - RESUME_AT)

    for target in TARGETS[1:]:
        engine = resume_training(ckpt, target)
        assert engine.iteration == RESUME_AT
        curves[target.describe()] = loss_curve(engine, TOTAL - RESUME_AT)

    for name, curve in curves.items():
        if name == "source_continued":
            continue
        deltas[name] = max_abs_delta(baseline, curve)
        assert deltas[name] <= PAPER_LOSS_BAND, name

    # the curve keeps descending across the resume boundary
    assert baseline[-1] < pre[0]

    record_result(
        "fig6_single_to_multi",
        {
            "source": SOURCE.describe(),
            "resume_at": RESUME_AT,
            "total_iterations": TOTAL,
            "pre_resume_losses": pre,
            "curves": curves,
            "max_loss_delta_per_target": deltas,
            "paper_band": PAPER_LOSS_BAND,
        },
    )
