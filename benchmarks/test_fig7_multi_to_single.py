"""Fig 7 — multiple Sources to a single Target.

The inverse of Fig 6: with a fixed seed, several different source
strategies each train to iteration 100, convert their checkpoints to
UCP, and all resume under one target (TP=2, PP=2, DP=1); each resumed
curve matches its own source's continuation.
"""


from repro.core.resume import resume_training
from repro.dist.topology import ParallelConfig

from bench_util import (
    PAPER_LOSS_BAND,
    loss_curve,
    make_engine,
    max_abs_delta,
    record_result,
)

SOURCES = [
    ParallelConfig(tp=2, pp=2, dp=2, zero_stage=1),
    ParallelConfig(tp=1, pp=1, dp=4, zero_stage=1),
    ParallelConfig(tp=2, pp=1, dp=1, zero_stage=1),
    ParallelConfig(tp=1, pp=1, dp=2, zero_stage=3),
]
TARGET = ParallelConfig(tp=2, pp=2, dp=1, zero_stage=1)
RESUME_AT = 20
TOTAL = 40


def test_fig7_multiple_sources_to_single_target(benchmark, tmp_path):
    results = {}
    checkpoints = {}
    continuations = {}
    for i, source in enumerate(SOURCES):
        engine = make_engine(parallel=source)  # fixed seed: same init
        engine.train(RESUME_AT)
        ckpt = str(tmp_path / f"src{i}")
        engine.save_checkpoint(ckpt)
        checkpoints[source.describe()] = ckpt
        continuations[source.describe()] = loss_curve(engine, TOTAL - RESUME_AT)

    def resume_first():
        return resume_training(checkpoints[SOURCES[0].describe()], TARGET)

    benchmark.pedantic(resume_first, rounds=1, iterations=1)

    for source in SOURCES:
        engine = resume_training(checkpoints[source.describe()], TARGET)
        curve = loss_curve(engine, TOTAL - RESUME_AT)
        delta = max_abs_delta(continuations[source.describe()], curve)
        results[source.describe()] = {
            "resumed_losses": curve,
            "max_delta_vs_own_continuation": delta,
        }
        assert delta <= PAPER_LOSS_BAND, source.describe()

    # all sources share the seed, so their resumed curves also agree
    curves = [r["resumed_losses"] for r in results.values()]
    cross = max(max_abs_delta(curves[0], c) for c in curves[1:])
    assert cross <= 2 * PAPER_LOSS_BAND

    record_result(
        "fig7_multi_to_single",
        {
            "target": TARGET.describe(),
            "resume_at": RESUME_AT,
            "per_source": results,
            "cross_source_max_delta": cross,
        },
    )
