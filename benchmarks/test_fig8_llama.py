"""Fig 8 — LLaMA architecture resume.

Paper: LLaMA (RMSNorm / SwiGLU / RoPE, untied head) trained with
TP=2, PP=2, DP=2; resumed at iteration 101 under TP=2, PP=1, DP=2 and
TP=2, PP=2, DP=1.  Mini scale, with GQA enabled (num_kv_heads <
num_heads) so the variable-size QKV sub-pattern is on the hot path.
"""


from repro.core.resume import resume_training
from repro.dist.topology import ParallelConfig

from bench_util import (
    PAPER_LOSS_BAND,
    loss_curve,
    make_engine,
    max_abs_delta,
    record_result,
)

SOURCE = ParallelConfig(tp=2, pp=2, dp=2)
TARGETS = [ParallelConfig(tp=2, pp=1, dp=2), ParallelConfig(tp=2, pp=2, dp=1)]
RESUME_AT = 15
TOTAL = 30


def test_fig8_llama_resume(benchmark, tmp_path):
    source = make_engine("llama-mini", parallel=SOURCE)
    pre = loss_curve(source, RESUME_AT)
    ckpt = str(tmp_path / "ckpt")
    source.save_checkpoint(ckpt)
    baseline = loss_curve(source, TOTAL - RESUME_AT)

    engine = benchmark.pedantic(
        lambda: resume_training(ckpt, TARGETS[0]), rounds=1, iterations=1
    )
    curves = {TARGETS[0].describe(): loss_curve(engine, TOTAL - RESUME_AT)}
    curves[TARGETS[1].describe()] = loss_curve(
        resume_training(ckpt, TARGETS[1]), TOTAL - RESUME_AT
    )

    deltas = {name: max_abs_delta(baseline, c) for name, c in curves.items()}
    for name, delta in deltas.items():
        assert delta <= PAPER_LOSS_BAND, name
    assert baseline[-1] < pre[0]  # loss still descending after resume

    record_result(
        "fig8_llama",
        {
            "model": "llama-mini (RMSNorm/SwiGLU/RoPE/GQA, untied head)",
            "source": SOURCE.describe(),
            "pre_resume_losses": pre,
            "baseline_losses": baseline,
            "curves": curves,
            "max_loss_delta_per_target": deltas,
        },
    )
