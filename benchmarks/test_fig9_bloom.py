"""Fig 9 — BLOOM architecture resume.

Paper: BLOOM-176B trained with TP=2, PP=24, DP=8 and resumed mid-run
under TP=2, PP=24, DP=4 (halved data-parallel width).  Mini scale:
the 8-layer BLOOM-mini with a deep pipeline (PP=4), halving DP across
the resume exactly as the paper does.
"""


from repro.core.resume import resume_training
from repro.dist.topology import ParallelConfig

from bench_util import (
    PAPER_LOSS_BAND,
    loss_curve,
    make_engine,
    max_abs_delta,
    record_result,
)

SOURCE = ParallelConfig(tp=2, pp=4, dp=4)   # deep pipeline, wide DP
TARGET = ParallelConfig(tp=2, pp=4, dp=2)   # halve DP, keep MP shape
RESUME_AT = 15
TOTAL = 30


def test_fig9_bloom_resume(benchmark, tmp_path):
    source = make_engine("bloom-mini", parallel=SOURCE)
    pre = loss_curve(source, RESUME_AT)
    ckpt = str(tmp_path / "ckpt")
    source.save_checkpoint(ckpt)
    baseline = loss_curve(source, TOTAL - RESUME_AT)

    engine = benchmark.pedantic(
        lambda: resume_training(ckpt, TARGET), rounds=1, iterations=1
    )
    resumed = loss_curve(engine, TOTAL - RESUME_AT)
    delta = max_abs_delta(baseline, resumed)
    assert delta <= PAPER_LOSS_BAND
    assert baseline[-1] < pre[0]

    record_result(
        "fig9_bloom",
        {
            "model": "bloom-mini (deep pipeline)",
            "source": SOURCE.describe(),
            "target": TARGET.describe(),
            "pre_resume_losses": pre,
            "baseline_losses": baseline,
            "resumed_losses": resumed,
            "max_loss_delta": delta,
        },
    )
