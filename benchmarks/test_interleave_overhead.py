"""BENCH_interleave — cost of running one schedule under the explorer.

Three measurements keep the cooperative scheduler honest:

* **plain_s**: a production-scale convert+verify workload (1 MiB
  windows over an 8 MiB source through a shared ``BlockCache``) run
  serially with nothing attached — the context number.
* **witnessed_s**: the same workload under the three per-run witnesses
  every explored schedule pays (sanitizer, lock witness, FS trace).
  Their cost is budgeted by their *own* benches
  (``BENCH_lockwitness_overhead``, ``BENCH_sanitizer_overhead``); this
  bench does not re-gate it.
* **controlled_s**: the full :func:`interleave.run_schedule` — park
  every thread at every yield point, dispatch serially, record the
  trace.  The gate: ``controlled_s / witnessed_s <= MAX_OVERHEAD``,
  i.e. the scheduler machinery proper adds at most 30% on top of the
  instrumentation the run needs anyway.  Yield-point handoffs are two
  ``Event`` round trips (~tens of µs); at production window sizes they
  amortize into the real IO/digest work between them.

Off-mode, the whole subsystem must vanish: with ``REPRO_INTERLEAVE``
unset no controller is installed, and every hook site is one module
global load plus a ``None`` check.  The micro-ratio budget is loose on
purpose — it exists to catch an accidental always-on regression
(unconditional stack capture or event recording is ~100x), not to
police nanoseconds.
"""

import hashlib
import os
import time

from repro.analysis import interleave, schedpoint
from repro.analysis.fswitness import fstrace
from repro.analysis.lockwitness import lockcheck
from repro.analysis.sanitizer import sanitize
from repro.storage.rangeio import BlockCache, RangeReader
from repro.storage.store import ObjectStore

from bench_util import record_result

MB = 1 << 20
SOURCE_BYTES = 8 * MB
WINDOW_BYTES = MB
REPEATS = 4
MAX_OVERHEAD = 1.3
MAX_OFF_MODE_RATIO = 10.0
OFF_CALLS = 200_000


def _best_of(fn, repeats=REPEATS):
    """Min-of-N wall time: the least-noise estimator for short runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_scenario(root) -> interleave.Scenario:
    """Convert+verify at production granularity: one tenant streams a
    planned read through the shared cache and publishes an atom while
    a verifier digests the same source through the same cache."""
    src = ObjectStore(os.path.join(root, "src"), durable=False)
    src.put_bytes("rank0.bin", interleave._blob(0, "bench", SOURCE_BYTES))
    dst_root = os.path.join(root, "dst")
    plan = [(off, WINDOW_BYTES) for off in range(0, SOURCE_BYTES, WINDOW_BYTES)]

    def fresh() -> interleave.RunCase:
        dst = ObjectStore(dst_root, durable=False)
        cache = BlockCache(4 * MB)
        r0 = RangeReader(src, cache=cache, window_bytes=WINDOW_BYTES)
        r1 = RangeReader(src, cache=cache, window_bytes=WINDOW_BYTES)
        out = {}

        def convert() -> None:
            parts = r0.read_multi("rank0.bin", plan)
            dst.put_bytes("atom.bin", b"".join(parts))

        def verify() -> None:
            digest = hashlib.sha256()
            for off, length in plan:
                digest.update(r1.read("rank0.bin", off, length))
            out["digest"] = digest.hexdigest()

        return interleave.RunCase(
            threads=[convert, verify],
            fingerprint=lambda: dst.digest("atom.bin") + out["digest"],
        )

    return interleave.scenario("bench-convert-verify", fresh)


def test_interleave_overhead_within_budget(benchmark, tmp_path):
    scen = _bench_scenario(str(tmp_path))

    def plain():
        case = scen.fresh()
        for fn in case.threads:
            fn()
        case.fingerprint()
        case.cleanup()

    def witnessed():
        with sanitize(strict=False), lockcheck(strict=False), \
                fstrace(capture_data=False):
            plain()

    def controlled():
        interleave.run_schedule(scen.fresh())

    # the fingerprints must agree before any timing means anything
    case = scen.fresh()
    for fn in case.threads:
        fn()
    serial_fp = case.fingerprint()
    case.cleanup()
    result = interleave.run_schedule(scen.fresh())
    assert result.fingerprint == serial_fp
    # and the controlled run really crossed the yield points
    kinds = {ev.kind for ev in result.trace}
    assert {"acquire", "release", "access", "fs"} <= kinds
    assert len(result.trace) > 50

    witnessed()  # extra warmup (plain/controlled warmed above)
    plain_s = _best_of(plain)
    witnessed_s = _best_of(witnessed)
    controlled_s = _best_of(controlled)
    ratio = controlled_s / witnessed_s

    benchmark.pedantic(controlled, rounds=1, iterations=1)

    # off-mode micro: a yield point with no controller installed is a
    # global load + None check around a no-op
    assert schedpoint.controller() is None

    def baseline():
        for _ in range(OFF_CALLS):
            pass

    def hooked():
        for _ in range(OFF_CALLS):
            interleave.access("bench")

    baseline_s = _best_of(lambda: baseline())
    hooked_s = _best_of(lambda: hooked())
    off_ratio = hooked_s / max(baseline_s, 1e-9)

    record_result(
        "BENCH_interleave",
        {
            "workload": {
                "source_bytes": SOURCE_BYTES,
                "window_bytes": WINDOW_BYTES,
                "threads": 2,
                "trace_events": len(result.trace),
            },
            "repeats": REPEATS,
            "plain_s": round(plain_s, 4),
            "witnessed_s": round(witnessed_s, 4),
            "controlled_s": round(controlled_s, 4),
            "overhead_ratio": round(ratio, 3),
            "budget_ratio": MAX_OVERHEAD,
            "off_mode_calls": OFF_CALLS,
            "off_mode_ratio": round(off_ratio, 2),
            "off_mode_budget_ratio": MAX_OFF_MODE_RATIO,
        },
    )
    assert ratio <= MAX_OVERHEAD, (
        f"controlled schedule costs {ratio:.2f}x the witnessed run "
        f"(budget {MAX_OVERHEAD}x): {controlled_s:.3f}s vs "
        f"{witnessed_s:.3f}s over {len(result.trace)} yield points"
    )
    assert off_ratio <= MAX_OFF_MODE_RATIO, (
        f"inactive yield point costs {off_ratio:.1f}x an empty loop "
        f"body (budget {MAX_OFF_MODE_RATIO}x): the None fast path "
        f"regressed"
    )


def test_interleave_off_mode_is_inert(monkeypatch):
    """With ``REPRO_INTERLEAVE`` unset nothing may be installed: the
    env gate reads off, no controller exists, and a hook call leaves
    no trace behind."""
    monkeypatch.delenv(interleave.ENV_VAR, raising=False)
    assert not interleave.enabled_from_env()
    assert schedpoint.controller() is None
    interleave.access("off-mode", write=True)
    assert schedpoint.controller() is None
