"""BENCH_lockwitness_overhead — cost of the runtime lock witness.

Two budgets keep the witness honest:

* **Active overhead**: a representative threaded-IO workload — a
  streaming ``ucp_convert`` whose RangeReader/BlockCache locks are all
  witnessed — run with and without a strict :func:`lockcheck` active
  must cost at most ``MAX_OVERHEAD``x the plain run (the CI
  ``concurrency`` job keeps ``REPRO_LOCKCHECK=1`` on only while this
  holds).
* **Off-mode cost**: with no witness active a :class:`WitnessedLock`
  must stay a near-free wrapper (one list-truthiness check around a
  plain lock).  The micro-ratio budget is deliberately loose — it
  exists to catch an accidental always-on instrumentation regression
  (unconditional stack capture is ~100x), not to police nanoseconds.
"""

import time

from repro.analysis.lockwitness import lockcheck, make_lock
from repro.ckpt.saver import save_distributed_checkpoint
from repro.core.convert import ucp_convert
from repro.dist.topology import ParallelConfig

from bench_util import make_engine, record_result

PARALLEL = ParallelConfig(tp=2, pp=1, dp=2, zero_stage=1)
REPEATS = 3
MAX_OVERHEAD = 1.3
MAX_OFF_MODE_RATIO = 40.0
ACQUIRES = 20_000


def _best_of(fn, repeats=REPEATS):
    """Min-of-N wall time: the least-noise estimator for short runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_lockwitness_overhead_within_budget(benchmark, tmp_path):
    engine = make_engine(parallel=PARALLEL)
    engine.train(2)
    ckpt = tmp_path / "ckpt"
    save_distributed_checkpoint(engine, str(ckpt))
    runs = [0]

    def _convert():
        runs[0] += 1
        ucp_convert(str(ckpt), str(tmp_path / f"ucp{runs[0]}"), workers=2)

    def witnessed():
        with lockcheck(strict=True):
            _convert()

    # interleave a warmup of each before timing
    _convert()
    witnessed()
    plain_s = _best_of(_convert)
    witnessed_s = _best_of(witnessed)
    ratio = witnessed_s / plain_s

    benchmark.pedantic(witnessed, rounds=1, iterations=1)

    # off-mode micro: an unwitnessed WitnessedLock vs a plain lock
    import threading

    wlock, plock = make_lock("bench"), threading.Lock()

    def spin(lock):
        for _ in range(ACQUIRES):
            with lock:
                pass

    plain_acquire_s = _best_of(lambda: spin(plock))
    off_acquire_s = _best_of(lambda: spin(wlock))
    off_ratio = off_acquire_s / plain_acquire_s

    record_result(
        "BENCH_lockwitness_overhead",
        {
            "workload": {
                "parallel": PARALLEL.describe(),
                "convert": "streaming",
                "workers": 2,
            },
            "repeats": REPEATS,
            "plain_s": round(plain_s, 4),
            "witnessed_s": round(witnessed_s, 4),
            "overhead_ratio": round(ratio, 3),
            "budget_ratio": MAX_OVERHEAD,
            "off_mode_acquires": ACQUIRES,
            "off_mode_ratio": round(off_ratio, 2),
            "off_mode_budget_ratio": MAX_OFF_MODE_RATIO,
        },
    )
    assert ratio <= MAX_OVERHEAD, (
        f"strict lock witness costs {ratio:.2f}x the plain run "
        f"(budget {MAX_OVERHEAD}x): {witnessed_s:.3f}s vs {plain_s:.3f}s"
    )
    assert off_ratio <= MAX_OFF_MODE_RATIO, (
        f"inactive WitnessedLock costs {off_ratio:.1f}x a plain lock "
        f"(budget {MAX_OFF_MODE_RATIO}x): the lazy-activation fast "
        f"path regressed"
    )


def test_lockwitness_checks_actually_ran(tmp_path):
    """Guard the benchmark itself: the witnessed conversion must cross
    lock and accessor hooks, or the timing is meaningless."""
    engine = make_engine(parallel=PARALLEL)
    engine.train(1)
    ckpt = tmp_path / "ckpt"
    save_distributed_checkpoint(engine, str(ckpt))
    with lockcheck(strict=True) as w:
        ucp_convert(str(ckpt), str(tmp_path / "ucp"), workers=2)
    assert w.checks > 0
    kinds = {e[2] for e in w.to_payload()["events"]}
    assert {"acquire", "release", "access"} <= kinds
