"""Projection — the paper-scale workloads, analytically.

The mini benchmarks validate behaviour; this one projects the paper's
actual four workloads (Table 4) onto plausible cluster shapes using
the exact layout arithmetic + the NVMe model, reporting checkpoint
footprints and the Fig 11/12 quantities at real scale — including that
the UCP load-overhead ratio lands near the paper's 1.14-1.37x once
checkpoints are bandwidth-bound.
"""


from repro.core.projection import project_checkpoint_costs
from repro.dist.topology import ParallelConfig
from repro.models import get_config

from bench_util import record_result

CONFIGS = [
    ("gpt3-350m", ParallelConfig(tp=2, pp=2, dp=2)),
    ("llama-7b", ParallelConfig(tp=2, pp=2, dp=2)),
    ("mixtral-moe-42b", ParallelConfig(tp=2, pp=4, dp=2)),
    ("bloom-176b", ParallelConfig(tp=2, pp=24, dp=8)),   # the BLOOM run's shape
]


def test_projection_paper_scale(benchmark):
    projections = [
        project_checkpoint_costs(get_config(name), parallel)
        for name, parallel in CONFIGS
    ]

    benchmark.pedantic(
        lambda: project_checkpoint_costs(*[
            (get_config(n), p) for n, p in CONFIGS
        ][-1]),
        rounds=3, iterations=1,
    )

    rows = []
    for proj in projections:
        rows.append(
            {
                "model": proj.model_name,
                "parallel": proj.parallel,
                "world_size": proj.world_size,
                "state_tb": round(proj.total_state_tb, 4),
                "per_rank_file_gb": round(proj.bytes_per_optim_file / 1e9, 3),
                "save_s": round(proj.save_seconds, 2),
                "standard_load_s": round(proj.standard_load_seconds, 2),
                "ucp_convert_s": round(proj.ucp_convert_seconds, 2),
                "ucp_load_s": round(proj.ucp_load_seconds, 2),
                "ucp_overhead_ratio": round(proj.ucp_overhead_ratio, 3),
            }
        )

    by_name = {r["model"]: r for r in rows}
    # BLOOM-176B optimizer state is ~2.1 TB (176B params x 12 bytes)
    assert 1.8 <= by_name["bloom-176b"]["state_tb"] <= 2.6
    # footprints are ordered by model size
    assert (
        by_name["gpt3-350m"]["state_tb"]
        < by_name["llama-7b"]["state_tb"]
        < by_name["mixtral-moe-42b"]["state_tb"]
        < by_name["bloom-176b"]["state_tb"]
    )
    # at bandwidth-bound scale the UCP overhead ratio is a small factor,
    # in the neighbourhood the paper measured (1.14-1.37x)
    for row in rows:
        assert 1.0 <= row["ucp_overhead_ratio"] <= 6.0, row

    record_result(
        "projection_paper_scale",
        {
            "rows": rows,
            "paper_fig12_ratio_range": [1.14, 1.37],
        },
    )
