"""BENCH_recovery_mttr — repair time and goodput of elastic recovery.

Runs the supervised kill→reshard→resume loop over a deterministic
kill schedule covering the three recovery-triggering failure points
(mid-step, post-commit save, mid-convert) and records the simulated
MTTR, per-stage repair breakdown, and goodput the CI chaos job
publishes as an artifact.  Everything here is simulated time, so the
numbers are byte-stable across machines for a fixed schedule + seed.
"""

from repro.dist.supervisor import supervise
from repro.dist.topology import ParallelConfig
from repro.models import get_config
from repro.storage.faults import KillSchedule

from bench_util import record_result

PARALLEL = ParallelConfig(tp=2, pp=1, dp=2, zero_stage=1)
HORIZON = 16
SAVE_EVERY = 4
KILLS = ["5:step:3", "12:save-post:1", "5:convert:2:4"]


def test_recovery_mttr(benchmark, tmp_path):
    def run():
        return supervise(
            get_config("gpt3-mini"),
            PARALLEL,
            str(tmp_path / "job"),
            horizon=HORIZON,
            save_every=SAVE_EVERY,
            schedule=KillSchedule.from_specs(KILLS),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    assert report.useful_steps == HORIZON
    assert 0.0 < report.goodput <= 1.0
    assert report.mttr_s > 0.0
    assert report.lost_committed_tags == []
    assert report.continuity is not None and report.continuity.ok
    completed = [e for e in report.events if e.completed]
    assert completed

    record_result(
        "BENCH_recovery_mttr",
        {
            "model": "gpt3-mini",
            "initial_config": report.initial_config,
            "final_config": report.final_config,
            "kills": KILLS,
            "horizon": HORIZON,
            "mttr_s": round(report.mttr_s, 6),
            "goodput": round(report.goodput, 6),
            "useful_steps": report.useful_steps,
            "wall_steps": report.wall_steps,
            "interruptions": report.interruptions,
            "sim_time_s": round(report.sim_time_s, 6),
            "recoveries": [
                {
                    "trigger": f"{e.trigger_phase}@step{e.trigger_step}",
                    "target": e.target_config,
                    "lost_steps": e.lost_steps,
                    "atoms_reused": e.atoms_reused,
                    "completed": e.completed,
                    "timings": e.timings.to_dict(),
                }
                for e in report.events
            ],
        },
    )
