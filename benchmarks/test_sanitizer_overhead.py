"""BENCH_sanitizer_overhead — cost of the strict memory sanitizer.

The sanitizer now sits on every isolation boundary of the simulated
cluster, including the engine's DP gradient-sync path (UCP025 checks
on every ``train_step``).  That only stays on by default in CI if it
is cheap: this benchmark times a representative workload — training
steps on a TP×DP ZeRO-1 engine plus a checkpoint save — with and
without a strict sanitizer active, and fails if the sanitized run
costs more than ``MAX_OVERHEAD``× the plain one.
"""

import time

from repro.analysis.sanitizer import sanitize
from repro.ckpt.saver import save_distributed_checkpoint
from repro.dist.topology import ParallelConfig

from bench_util import make_engine, record_result

PARALLEL = ParallelConfig(tp=2, pp=1, dp=2, zero_stage=1)
STEPS = 8
REPEATS = 3
MAX_OVERHEAD = 1.3


def _workload(tmp_path, label):
    engine = make_engine(parallel=PARALLEL)
    engine.train(STEPS)
    save_distributed_checkpoint(engine, str(tmp_path / label))


def _best_of(fn, repeats=REPEATS):
    """Min-of-N wall time: the least-noise estimator for short runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_sanitizer_overhead_within_budget(benchmark, tmp_path):
    runs = [0]

    def plain():
        runs[0] += 1
        _workload(tmp_path, f"plain{runs[0]}")

    def sanitized():
        runs[0] += 1
        with sanitize(strict=True):
            _workload(tmp_path, f"san{runs[0]}")

    # interleave a warmup of each before timing
    plain()
    sanitized()
    plain_s = _best_of(plain)
    sanitized_s = _best_of(sanitized)
    ratio = sanitized_s / plain_s

    benchmark.pedantic(sanitized, rounds=1, iterations=1)

    record_result(
        "BENCH_sanitizer_overhead",
        {
            "workload": {
                "parallel": PARALLEL.describe(),
                "steps": STEPS,
                "save": True,
            },
            "repeats": REPEATS,
            "plain_s": round(plain_s, 4),
            "sanitized_s": round(sanitized_s, 4),
            "overhead_ratio": round(ratio, 3),
            "budget_ratio": MAX_OVERHEAD,
        },
    )
    assert ratio <= MAX_OVERHEAD, (
        f"strict sanitizer costs {ratio:.2f}x the plain run "
        f"(budget {MAX_OVERHEAD}x): {sanitized_s:.3f}s vs {plain_s:.3f}s"
    )


def test_sanitizer_checks_actually_ran(tmp_path):
    """Guard the benchmark itself: the sanitized workload must cross
    collective and snapshot boundaries, or the timing is meaningless."""
    with sanitize(strict=True) as san:
        _workload(tmp_path, "probe")
    assert san.checks > STEPS
