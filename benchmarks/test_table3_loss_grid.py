"""Table 3 — detailed training losses across the full target grid.

The paper's table resumes the TP=2/PP=2/DP=2 (ZeRO-1) GPT checkpoint
under eleven target strategies and reports LM loss at iterations 101,
120, 140, 160, 180, 200; all rows stay within 0.02 of the baseline.
We reproduce the same eleven-row grid at mini scale (resume at 20,
sample every 4 iterations to 40).
"""


from repro.analysis.continuity import assert_loss_continuity
from repro.core.resume import resume_training
from repro.dist.topology import ParallelConfig

from bench_util import (
    PAPER_LOSS_BAND,
    loss_curve,
    make_engine,
    record_result,
)

SOURCE = ParallelConfig(tp=2, pp=2, dp=2, zero_stage=1)

# the eleven Target rows of Table 3: (tp, pp, dp, sp, zero_stage)
TABLE3_TARGETS = [
    (2, 2, 2, 1, 1),
    (1, 1, 1, 1, 1),
    (1, 2, 2, 1, 1),
    (2, 1, 1, 1, 1),
    (1, 1, 2, 2, 1),
    (2, 1, 2, 1, 1),
    (2, 2, 1, 1, 1),
    (1, 1, 4, 1, 2),
    (2, 1, 2, 1, 2),
    (1, 1, 2, 1, 3),
    (1, 1, 4, 1, 3),
]
RESUME_AT = 20
TOTAL = 40
SAMPLE_EVERY = 4


def test_table3_loss_grid(benchmark, tmp_path):
    source = make_engine(parallel=SOURCE)
    source.train(RESUME_AT)
    ckpt = str(tmp_path / "ckpt")
    source.save_checkpoint(ckpt)
    baseline = loss_curve(source, TOTAL - RESUME_AT)
    sample_idx = list(range(0, TOTAL - RESUME_AT, SAMPLE_EVERY))

    rows = []

    def run_row(spec):
        tp, pp, dp, sp, zero = spec
        target = ParallelConfig(tp=tp, pp=pp, dp=dp, sp=sp, zero_stage=zero)
        engine = resume_training(ckpt, target)
        curve = loss_curve(engine, TOTAL - RESUME_AT)
        return target, curve

    # benchmark one representative row end-to-end (resume + train)
    benchmark.pedantic(lambda: run_row(TABLE3_TARGETS[1]), rounds=1, iterations=1)

    worst = 0.0
    for spec in TABLE3_TARGETS:
        target, curve = run_row(spec)
        # the same library check the elastic supervisor applies after
        # every recovery — raises ContinuityError outside the band
        report = assert_loss_continuity(
            baseline, curve, context=target.describe()
        )
        worst = max(worst, report.max_delta)
        rows.append(
            {
                "target": f"{spec[0]}/{spec[1]}/{spec[2]}/{spec[3]}",
                "zero": spec[4],
                "losses": {
                    f"iter_{RESUME_AT + i + 1}": curve[i] for i in sample_idx
                },
                "max_delta_vs_baseline": report.max_delta,
            }
        )

    record_result(
        "table3_loss_grid",
        {
            "source": SOURCE.describe(),
            "baseline_losses": {
                f"iter_{RESUME_AT + i + 1}": baseline[i] for i in sample_idx
            },
            "rows": rows,
            "worst_delta": worst,
            "paper_band": PAPER_LOSS_BAND,
        },
    )
