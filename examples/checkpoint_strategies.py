"""Checkpoint strategies side by side: sync disk, async snapshot,
in-memory replication, and UCP — plus the cluster-scale arithmetic.

The paper positions UCP against a landscape of checkpointing systems
(CheckFreq, Gemini, Check-N-Run).  This example runs the ones this
repository implements on a single failure scenario, then uses the
resilience planner to project the comparison to GPT-4 scale.

Run:  python examples/checkpoint_strategies.py
"""

import tempfile
import time

from repro import ParallelConfig, TrainingEngine, get_config, resume_training
from repro.ckpt.inmemory import InMemoryCheckpoint
from repro.ckpt.planner import plan_resilience
from repro.ckpt.snapshot import SnapshotManager, tune_checkpoint_interval


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        topology = ParallelConfig(tp=2, pp=2, dp=2, zero_stage=1)
        engine = TrainingEngine(
            get_config("gpt3-mini"), topology, seed=7,
            global_batch_size=8, seq_len=32,
        )
        engine.train(10)
        print(f"training gpt3-mini on {topology.world_size} GPUs; "
              f"comparing checkpoint strategies at iteration 10\n")

        start = time.perf_counter()
        engine.save_checkpoint(f"{workdir}/sync")
        sync_s = time.perf_counter() - start

        manager = SnapshotManager(engine)
        start = time.perf_counter()
        snap = manager.snapshot()
        block_s = time.perf_counter() - start
        engine.train(2)  # training continues while the persist runs
        manager.persist(snap, f"{workdir}/async")

        mem = InMemoryCheckpoint(engine, replication_factor=2)
        start = time.perf_counter()
        mem.commit()
        commit_s = time.perf_counter() - start

        print(f"  sync disk save:            {sync_s * 1e3:7.1f} ms (blocks training)")
        print(f"  CheckFreq snapshot:        {block_s * 1e3:7.1f} ms (blocks), "
              f"persist overlapped")
        print(f"  Gemini in-memory commit:   {commit_s * 1e3:7.1f} ms "
              f"(to 2 peer replicas)")

        freq = tune_checkpoint_interval(
            step_time_s=0.05, snapshot_time_s=block_s,
            max_overhead_fraction=0.035,
        )
        print(f"\n  CheckFreq tuner: snapshot every {freq.interval_steps} steps "
              f"keeps overhead at {freq.overhead_fraction:.1%}")

        print("\nfailure: rank 5 dies")
        start = time.perf_counter()
        mem.recover(failed_ranks={5})
        mem_s = time.perf_counter() - start
        print(f"  Gemini recovery (same topology, spare required): "
              f"{mem_s * 1e3:.1f} ms")

        start = time.perf_counter()
        shrunk = resume_training(f"{workdir}/sync", ParallelConfig(tp=2, pp=2, dp=1))
        ucp_s = time.perf_counter() - start
        print(f"  UCP resume (continue on 4 survivors, no spare): "
              f"{ucp_s * 1e3:.1f} ms, now {shrunk.parallel_cfg.describe()}")

        plan = plan_resilience(
            num_gpus=24576, gpus_per_node=8, node_mtbf_hours=50_000,
            checkpoint_cost_hours=0.05, repair_hours=6.0,
        )
        print(f"\nprojected to a 24,576-GPU job "
              f"({plan.failures_per_30_days:.0f} failures/month):")
        print(f"  wait-for-repair waste:  {plan.waste_wait_gpuh:10,.0f} GPU-hours/failure")
        print(f"  UCP elastic waste:      {plan.waste_elastic_gpuh:10,.0f} GPU-hours/failure "
              f"({plan.elastic_savings_fraction:.0%} saved)")


if __name__ == "__main__":
    main()
