"""Continual pre-training of a sparse MoE under a smaller GPU budget.

The paper's second motivating scenario: a generic base model was
pre-trained on a large cluster; a team wants to continue training it
for a specialty domain — with a *different* (smaller) GPU budget and a
fresh, lower learning-rate schedule.

This example pre-trains a Mixtral-style MoE (top-2 routing, GQA
attention, 3-dim expert tensors — UCP's hardest sub-patterns) on a
simulated 8-GPU cluster, then continues it on 2 GPUs with a new LR
schedule, all through one UCP conversion.

Run:  python examples/continual_pretrain_moe.py
"""

import tempfile

from repro import ParallelConfig, TrainingEngine, get_config, resume_training
from repro.optim.lr_schedule import CosineLRSchedule


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        ckpt_dir = f"{workdir}/base-model"

        pretrain_cfg = ParallelConfig(tp=1, pp=2, dp=4, zero_stage=1)
        print(f"pre-training moe-mini (4 experts, top-2) on "
              f"{pretrain_cfg.world_size} GPUs ({pretrain_cfg.describe()})")
        base = TrainingEngine(
            get_config("moe-mini"), pretrain_cfg, seed=21,
            global_batch_size=8, seq_len=32,
            lr_schedule=CosineLRSchedule(
                max_lr=1.2e-4, min_lr=1.2e-5, warmup_steps=5, total_steps=100
            ),
        )
        for result in base.train(25):
            if result.step % 5 == 0:
                print(f"  step {result.step:3d}  loss {result.loss:.4f}  "
                      f"lr {result.lr:.2e}")
        base.save_checkpoint(ckpt_dir)
        print(f"base model checkpointed at iteration {base.iteration}")

        finetune_cfg = ParallelConfig(tp=2, pp=1, dp=1, zero_stage=1)
        print(f"\ncontinuing on {finetune_cfg.world_size} GPUs "
              f"({finetune_cfg.describe()}) with a fresh low-LR schedule")
        specialist = resume_training(
            ckpt_dir,
            finetune_cfg,
            lr_schedule=CosineLRSchedule(
                max_lr=2.0e-5, min_lr=2.0e-6, warmup_steps=2, total_steps=50
            ),
        )
        print(f"  resumed at iteration {specialist.iteration}; expert "
              f"tensors were re-sharded from TP=1 atoms to TP=2 fragments")
        for result in specialist.train(15):
            if result.step % 5 == 0:
                print(f"  step {result.step:3d}  loss {result.loss:.4f}  "
                      f"lr {result.lr:.2e}")

        start = specialist.loss_history[0]
        end = specialist.loss_history[-1]
        print(f"\ncontinued training loss: {start:.4f} -> {end:.4f} "
              f"(optimizer moments carried through the conversion)")


if __name__ == "__main__":
    main()
