"""Cross-framework migration: import foreign weights, train distributed.

The paper's UCP accepts checkpoints from frameworks that run DeepSpeed
as a backend (HuggingFace Accelerate, PyTorch Lightning).  This example
simulates that flow end to end:

1. A "foreign" GPT-2-style checkpoint arrives with HuggingFace naming
   (``transformer.h.0.attn.c_attn.weight``, ...) and an *unpadded*
   vocabulary table.
2. The HF adapter translates names; ``import_foreign_state`` builds a
   UCP directory (fresh Adam moments).
3. The imported model loads straight into 3D-parallel training.

Run:  python examples/cross_framework_migration.py
"""

import tempfile

from repro import ParallelConfig, TrainingEngine, get_config
from repro.core.adapters import HF_GPT2_ADAPTER, import_foreign_state
from repro.models import build_model


def fake_huggingface_checkpoint(seed: int = 99):
    """A weights-only GPT state dict under HF GPT-2 naming."""
    cfg = get_config("gpt3-mini")
    donor = build_model("gpt3-mini", seed=seed)
    foreign = {}
    for name, values in donor.state_dict().items():
        if name == "embedding.weight":
            values = values[: cfg.vocab_size]  # HF tables are unpadded
        foreign[HF_GPT2_ADAPTER.foreign_name(name)] = values
    return cfg, foreign


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        cfg, foreign = fake_huggingface_checkpoint()
        print(f"received a foreign checkpoint with {len(foreign)} tensors; "
              f"sample keys:")
        for key in list(foreign)[:4]:
            print(f"  {key}")

        ucp_dir = f"{workdir}/imported-ucp"
        meta = import_foreign_state(foreign, HF_GPT2_ADAPTER, cfg, ucp_dir)
        print(f"\nimported through adapter {HF_GPT2_ADAPTER.name!r}: "
              f"{len(meta.params)} atoms, fresh optimizer state")

        target_cfg = ParallelConfig(tp=2, pp=2, dp=2, zero_stage=1)
        print(f"loading into 3D-parallel training "
              f"({target_cfg.describe()}, {target_cfg.world_size} GPUs)")
        engine = TrainingEngine(
            cfg, target_cfg, seed=0, global_batch_size=8, seq_len=32
        )
        engine.load_universal(ucp_dir)
        for result in engine.train(15):
            if result.step % 5 == 0:
                print(f"  step {result.step:3d}  loss {result.loss:.4f}")

        print("\na checkpoint that never saw this codebase is now training "
              "under tensor + pipeline + data parallelism.")


if __name__ == "__main__":
    main()
