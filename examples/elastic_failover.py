"""Elastic failover: survive hardware failures, exploit spare capacity.

Reproduces the paper's headline operational story on the simulated
cluster:

* an 8-GPU job checkpoints periodically;
* a node failure kills two ranks mid-run — the strict world check
  aborts the step;
* the ElasticResumeManager picks the best topology for the 6 survivors
  (keeping the model-parallel shape, shrinking DP), converts the last
  checkpoint to UCP, and continues training;
* later, capacity returns *plus* two extra GPUs — the job grows to 10
  ranks without ever having planned for that world size.

Run:  python examples/elastic_failover.py
"""

import tempfile

from repro import ElasticResumeManager, ParallelConfig, TrainingEngine, get_config
from repro.dist.cluster import RankFailure


def train_and_report(engine, steps, label):
    results = engine.train(steps)
    print(f"  [{label}] steps {results[0].step}..{results[-1].step}: "
          f"loss {results[0].loss:.4f} -> {results[-1].loss:.4f}")
    return results


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        ckpt_dir = f"{workdir}/ckpt"
        source_cfg = ParallelConfig(tp=2, pp=2, dp=2, zero_stage=1)
        manager = ElasticResumeManager(ckpt_dir, global_batch_size=8)

        print(f"phase 1: training on {source_cfg.world_size} GPUs "
              f"({source_cfg.describe()})")
        engine = TrainingEngine(
            get_config("gpt3-mini"), source_cfg, seed=7,
            global_batch_size=8, seq_len=32,
        )
        train_and_report(engine, 10, "8 GPUs")
        engine.save_checkpoint(ckpt_dir)
        print(f"  checkpointed at iteration {engine.iteration}")

        train_and_report(engine, 3, "8 GPUs")  # progress past the checkpoint

        print("\nphase 2: simulated node failure takes out ranks 4 and 5")
        engine.cluster.fail_rank(4)
        engine.cluster.fail_rank(5)
        try:
            engine.train_step()
        except RankFailure as exc:
            print(f"  training aborted: {exc}")

        healthy = len(engine.cluster.healthy_ranks)
        plan = manager.plan_resize(source_cfg, healthy)
        print(f"  resize plan for {healthy} survivors: "
              f"{plan.target.describe()} ({plan.reason})")
        survivor = manager.resume_after_failure(source_cfg, healthy)
        print(f"  resumed from iteration {survivor.iteration} "
              f"(3 steps of progress since the checkpoint were lost)")
        train_and_report(survivor, 8, f"{plan.target.world_size} GPUs")
        survivor.save_checkpoint(ckpt_dir)

        print("\nphase 3: capacity restored + 2 spot GPUs appear (10 offered)")
        grown = manager.resume_with_capacity(survivor.parallel_cfg, 10)
        print(f"  best-fit plan uses {grown.parallel_cfg.world_size} of 10 "
              f"ranks: {grown.parallel_cfg.describe()}")
        train_and_report(grown, 8, f"{grown.parallel_cfg.world_size} GPUs")

        print("\nthe job consumed 3 different cluster shapes with one "
              "checkpoint lineage and no custom converters.")


if __name__ == "__main__":
    main()
