"""Quickstart: train, checkpoint, and resume under a different topology.

The 60-second tour of Universal Checkpointing:

1. Train a GPT-style model on a simulated 8-GPU cluster
   (TP=2, PP=2, DP=2 with ZeRO-1).
2. Save an ordinary distributed checkpoint — per-rank files, exactly
   what DeepSpeed-style training already writes.
3. Show that a *strict* loader cannot resume it on 2 GPUs (the paper's
   Fig 1 failure).
4. Resume through UCP instead: convert once, load under the new
   topology, and watch the loss curve continue seamlessly.

Run:  python examples/quickstart.py
"""

import tempfile

from repro import (
    CheckpointIncompatibleError,
    ParallelConfig,
    TrainingEngine,
    get_config,
    resume_training,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        ckpt_dir = f"{workdir}/checkpoints"

        source_cfg = ParallelConfig(tp=2, pp=2, dp=2, zero_stage=1)
        print(f"training gpt3-mini on {source_cfg.world_size} simulated GPUs "
              f"({source_cfg.describe()})")
        engine = TrainingEngine(
            get_config("gpt3-mini"), source_cfg, seed=7,
            global_batch_size=8, seq_len=32,
        )
        for result in engine.train(20):
            if result.step % 5 == 0:
                print(f"  step {result.step:3d}  loss {result.loss:.4f}  "
                      f"lr {result.lr:.2e}")

        info = engine.save_checkpoint(ckpt_dir)
        print(f"\nsaved distributed checkpoint '{info.tag}': "
              f"{len(info.files)} rank files, {info.total_bytes / 1e6:.1f} MB")

        # continue the source for reference
        reference = [r.loss for r in engine.train(10)]

        target_cfg = ParallelConfig(tp=1, pp=1, dp=2, zero_stage=1)
        print(f"\nnaively loading on {target_cfg.world_size} GPUs "
              f"({target_cfg.describe()})...")
        naive = TrainingEngine(
            get_config("gpt3-mini"), target_cfg, seed=0,
            global_batch_size=8, seq_len=32,
        )
        try:
            naive.load_checkpoint(ckpt_dir)
        except CheckpointIncompatibleError as exc:
            print(f"  FAILED (as the paper's Fig 1 describes):\n    {exc}")

        print("\nresuming through UCP instead...")
        resumed = resume_training(ckpt_dir, target_cfg)
        print(f"  converted + loaded; resuming at iteration {resumed.iteration}")
        resumed_losses = [r.loss for r in resumed.train(10)]

        print("\n  step   source-continued   UCP-resumed   |delta|")
        for i, (a, b) in enumerate(zip(reference, resumed_losses)):
            print(f"  {20 + i:4d}   {a:16.6f}   {b:11.6f}   {abs(a - b):.2e}")
        worst = max(abs(a - b) for a, b in zip(reference, resumed_losses))
        print(f"\nmax loss deviation across the resume: {worst:.2e} "
              f"(paper's acceptance band: 0.02)")


if __name__ == "__main__":
    main()
