"""A tour of the UCP language: patterns, sub-patterns, and operations.

Walks through the paper's §3.2 machinery on concrete tensors:

* the four parameter patterns of Table 1;
* the Fig 5 sub-patterns — variable-size fused QKV (GQA) and 3-dim
  expert tensors (MoE);
* the Table 2 operations — Extract, Union, StripPadding,
  GenUcpMetadata, Load — run by hand on a toy checkpoint;
* writing a custom PatternProgram rule.

Run:  python examples/ucp_language_tour.py
"""

import tempfile

import numpy as np

from repro import ParallelConfig, PatternProgram, PatternRule, get_config
from repro.core.atom import AtomStore
from repro.core.ops import extract, gen_ucp_metadata, load, strip_padding, union
from repro.core.patterns import program_for_config
from repro.parallel.sharding import FusedSectionsFragment
from repro.parallel.tp import PATTERN_FRAGMENT, PATTERN_TO_AVERAGE
from repro.storage.store import ObjectStore
from repro.parallel.engine import TrainingEngine


def show_patterns() -> None:
    print("== Table 1: the parameter patterns, as a program ==")
    cfg = get_config("llama-mini")
    program = program_for_config(cfg)
    for name in [
        "embedding.weight",
        "blocks.0.attn.qkv.weight",
        "blocks.0.attn.out.weight",
        "blocks.0.norm1.weight",
    ]:
        rule = program.match(name)
        frag = f", sub-pattern {rule.fragmenter.kind}" if rule.fragmenter else ""
        print(f"  {name:32s} -> {rule.pattern}{frag}   ({rule.label})")


def show_gqa_subpattern() -> None:
    print("\n== Fig 5: variable-size fused QKV under GQA, TP=2 ==")
    cfg = get_config("llama-mini")  # 4 q heads, 2 kv heads
    q = cfg.num_heads * cfg.head_dim
    kv = cfg.num_kv_heads * cfg.head_dim
    frag = FusedSectionsFragment(dim=0, section_sizes=(q, kv, kv))
    full = np.arange((q + 2 * kv) * 4, dtype=np.float32).reshape(-1, 4)
    shard0 = frag.shard(full, 2, 0)
    print(f"  fused tensor rows: q={q}, k={kv}, v={kv} (unequal sections)")
    print(f"  rank 0 shard shape: {shard0.shape} "
          f"(half of each section, concatenated)")
    rejoined = frag.join([shard0, frag.shard(full, 2, 1)])
    print(f"  join(shards) == original: {np.array_equal(rejoined, full)}")


def run_operations_by_hand() -> None:
    print("\n== Table 2: Extract / Union / StripPadding / GenUcpMetadata / Load ==")
    with tempfile.TemporaryDirectory() as workdir:
        cfg = get_config("gpt3-mini")
        source = ParallelConfig(tp=2, pp=1, dp=2)
        engine = TrainingEngine(cfg, source, seed=3, global_batch_size=4, seq_len=16)
        engine.train(1)
        engine.save_checkpoint(f"{workdir}/ckpt")

        store = ObjectStore(f"{workdir}/ckpt")
        optim_files = [f for f in store.list() if "optim_states" in f]
        fragments = []
        for rel in optim_files:
            fragments.extend(extract(store.load(rel)))
        print(f"  Extract: {len(optim_files)} rank files -> "
              f"{len(fragments)} parameter-state fragments")

        name = "embedding.weight"
        spec = engine.layout.spec(name)
        mine = [f for f in fragments if f.name == name and f.kind == "fp32"]
        consolidated = union(mine, spec, tp_degree=source.tp)
        print(f"  Union: {len(mine)} fragments of {name!r} -> "
              f"consolidated {consolidated.shape}")

        atom = strip_padding(consolidated, spec)
        print(f"  StripPadding: {consolidated.shape} -> {atom.shape} "
              f"(vocab divisibility padding removed)")

        target = ParallelConfig(tp=1, pp=1, dp=4, zero_stage=2)
        plan = gen_ucp_metadata(cfg, target)
        pieces = plan.partition_assignment(0, 0, 0, dp_rank=1)
        print(f"  GenUcpMetadata: target {target.describe()} -> "
              f"{plan.total_partitions()} partitions; partition (mp 0, dp 1) "
              f"holds {len(pieces)} tensor slices")

        # Load needs actual atoms on disk; make them with the converter
        from repro.core.convert import ucp_convert
        ucp_convert(f"{workdir}/ckpt", f"{workdir}/ucp")
        atom_store = AtomStore(f"{workdir}/ucp")
        partition = load(atom_store, plan, "fp32", 0, 0, 0, 1)
        print(f"  Load: streamed {partition.size} fp32 elements into "
              f"partition (mp 0, dp 1) in layer order")


def write_a_custom_rule() -> None:
    print("\n== Extending the language with a custom rule ==")
    program = PatternProgram([
        PatternRule(r"\.norm\d\.", PATTERN_TO_AVERAGE,
                    label="independently-updated norms (custom SP variant)"),
        PatternRule(r".*", PATTERN_FRAGMENT,
                    fragmenter=FusedSectionsFragment(dim=0, section_sizes=(8, 4, 4)),
                    label="everything else: fused sections"),
    ])
    rule = program.match("blocks.3.norm1.weight")
    print(f"  blocks.3.norm1.weight -> {rule.pattern} ({rule.label})")


def main() -> None:
    show_patterns()
    show_gqa_subpattern()
    run_operations_by_hand()
    write_a_custom_rule()


if __name__ == "__main__":
    main()
