"""Shim for environments without the `wheel` package (offline installs).

`pip install -e .` requires wheel to build PEP 660 editable metadata;
`python setup.py develop` works with bare setuptools. Configuration
lives in pyproject.toml.
"""
from setuptools import setup

setup()
