"""Universal Checkpointing (UCP), reproduced in pure Python.

A from-scratch implementation of the checkpointing system from
"Universal Checkpointing: Efficient and Flexible Checkpointing for
Large Scale Distributed Training" (Lian et al.), together with every
substrate it needs: a numpy transformer-training framework, a simulated
multi-rank cluster, TP/PP/ZeRO-DP/SP parallelism with checkpoint-exact
state layouts, and a distributed-checkpoint store.

Quickstart::

    from repro import TrainingEngine, ParallelConfig, get_config, resume_training

    engine = TrainingEngine(get_config("gpt3-mini"), ParallelConfig(tp=2, pp=2, dp=2))
    engine.train(100)
    engine.save_checkpoint("ckpt")

    # later: a node died — continue on 2 GPUs instead of 8
    engine = resume_training("ckpt", ParallelConfig(tp=1, pp=1, dp=2))
    engine.train(100)
"""

from repro.dist.topology import ParallelConfig, Topology
from repro.models import ModelConfig, available_models, build_model, get_config
from repro.parallel.engine import TrainingEngine, TrainStepResult
from repro.ckpt import (
    CheckpointIncompatibleError,
    load_distributed_checkpoint,
    save_distributed_checkpoint,
)
from repro.core import (
    ElasticResumeManager,
    PatternProgram,
    PatternRule,
    UCPError,
    load_ucp_into_engine,
    program_for_config,
    resume_training,
    ucp_convert,
)
from repro.dist.supervisor import (
    RecoveryReport,
    Supervisor,
    TopologyRejectedError,
    supervise,
)

__version__ = "1.0.0"

__all__ = [
    "ParallelConfig",
    "Topology",
    "ModelConfig",
    "available_models",
    "build_model",
    "get_config",
    "TrainingEngine",
    "TrainStepResult",
    "CheckpointIncompatibleError",
    "save_distributed_checkpoint",
    "load_distributed_checkpoint",
    "ElasticResumeManager",
    "PatternProgram",
    "PatternRule",
    "UCPError",
    "load_ucp_into_engine",
    "program_for_config",
    "resume_training",
    "ucp_convert",
    "RecoveryReport",
    "Supervisor",
    "TopologyRejectedError",
    "supervise",
    "__version__",
]
