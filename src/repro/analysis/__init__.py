"""Static analysis over checkpoint layouts and collective schedules.

Four analyzers, none of which ever materializes a tensor:

- :mod:`~repro.analysis.layout_lint` — derive every rank's expected
  checkpoint contents from the configs and diff against a tag's commit
  manifest and rank-file headers (``repro lint-ckpt``).
- :mod:`~repro.analysis.interchange` — prove a source -> target
  reconfiguration well-formed before any IO (``repro lint-plan`` and
  ``ucp_convert``'s mandatory pre-flight).
- :mod:`~repro.analysis.provenance` — a symbolic shadow interpreter
  that executes a conversion plan over byte *intervals*: every target
  data byte must come from exactly one real (non-padding) source byte
  (``repro lint-plan --provenance`` and the conversion pre-flight).
- :mod:`~repro.analysis.collective_trace` — per-group ordering,
  cross-rank argument lint, and a vector-clock happens-before replay
  detecting deadlock cycles and critical-section overlaps
  (``repro lint-trace``).

Two enforcement layers guard the *memory* side of the same contracts:

- :mod:`~repro.analysis.sanitizer` — runtime buffer-ownership and
  write-protection checks at every isolation boundary of the simulated
  cluster (collectives, snapshots, atom/block caches, zero-copy loads);
  activate with :func:`~repro.analysis.sanitizer.sanitize` or
  ``REPRO_SANITIZE=1``.
- :mod:`~repro.analysis.srclint` — an AST lint over ``src/repro``
  itself that flags the code patterns *causing* those violations
  (``repro lint-src``).

And two for the *concurrency* side (the threaded IO layer):

- :mod:`~repro.analysis.locks` — the guarded-by/lock-discipline lint
  (SRC005-SRC008), run as part of ``repro lint-src``.
- :mod:`~repro.analysis.lockwitness` — instrumented lock wrappers
  recording per-thread acquisition stacks and a global lock-order
  graph (UCP029-UCP031); activate with
  :func:`~repro.analysis.lockwitness.lockcheck`, ``REPRO_LOCKCHECK=1``,
  or ``REPRO_SANITIZE=1``.  ``repro lint-trace --locks`` replays a
  recorded witness payload offline.

And two for the *crash-consistency* side (the commit protocol):

- :mod:`~repro.analysis.fseffects` — the filesystem-effect lint
  (SRC009-SRC012: publishes of never-fsynced bytes, missing directory
  fsyncs, temp-file leaks on exception paths, ``latest``-before-
  manifest order violations), run as part of ``repro lint-src``
  (``--fs`` to filter).
- :mod:`~repro.analysis.fswitness` — an FS-op recorder over every
  store file effect plus an ALICE-style crash-state enumerator that
  materializes every legal post-crash disk state of a trace and proves
  recovery from each one (UCP032-UCP035); activate with
  :func:`~repro.analysis.fswitness.fstrace`, replay with
  ``repro lint-trace --fs``.

All findings carry stable rule IDs (``UCP001``... / ``SRC001``...); see
``docs/ANALYSIS.md`` for the catalogue.
"""

from repro.analysis.continuity import (
    PAPER_LOSS_BAND,
    ContinuityError,
    ContinuityReport,
    assert_loss_continuity,
    check_loss_continuity,
)
from repro.analysis.collective_trace import (
    CollectiveTraceRecorder,
    TraceEvent,
    check_collective_args,
    check_collective_ordering,
    check_happens_before,
    check_trace,
    numel_class,
    simulate_happens_before,
)
from repro.analysis.diagnostics import (
    RULES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    LayoutLintError,
    LintReport,
    error,
    warning,
)
from repro.analysis.interchange import (
    config_diagnostics,
    lint_plan,
    preflight_convert,
)
from repro.analysis.layout_lint import (
    crosscheck_manifest,
    expected_tag_basenames,
    lint_checkpoint,
)
from repro.analysis.provenance import (
    ProvenanceAnalysis,
    analyze_interchange,
    analyze_source,
    analyze_ucp_source,
    check_plan_provenance,
    check_source_provenance,
    check_target_provenance,
)
from repro.analysis.fseffects import lint_fs_effects
from repro.analysis.fswitness import (
    CrashState,
    FSOp,
    FSOpRecorder,
    check_fs_trace,
    enumerate_crash_states,
    fstrace,
)
from repro.analysis.lockwitness import (
    LockWitness,
    LockWitnessError,
    WitnessedLock,
    check_lock_trace,
    lockcheck,
    make_lock,
)
from repro.analysis.sanitizer import (
    MemorySanitizer,
    SanitizerError,
    check_engine_isolation,
    model_param_arrays,
    sanitize,
    zero_state_arrays,
)
from repro.analysis.srclint import lint_source_tree, stale_baseline_entries
from repro.analysis.locks import lint_locks

__all__ = [
    "PAPER_LOSS_BAND",
    "RULES",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "CollectiveTraceRecorder",
    "ContinuityError",
    "ContinuityReport",
    "CrashState",
    "FSOp",
    "FSOpRecorder",
    "assert_loss_continuity",
    "check_loss_continuity",
    "Diagnostic",
    "LayoutLintError",
    "LintReport",
    "LockWitness",
    "LockWitnessError",
    "MemorySanitizer",
    "ProvenanceAnalysis",
    "SanitizerError",
    "TraceEvent",
    "WitnessedLock",
    "analyze_interchange",
    "analyze_source",
    "analyze_ucp_source",
    "check_collective_args",
    "check_collective_ordering",
    "check_engine_isolation",
    "check_fs_trace",
    "check_happens_before",
    "check_lock_trace",
    "check_plan_provenance",
    "check_source_provenance",
    "check_target_provenance",
    "check_trace",
    "config_diagnostics",
    "crosscheck_manifest",
    "enumerate_crash_states",
    "error",
    "expected_tag_basenames",
    "fstrace",
    "lint_checkpoint",
    "lint_fs_effects",
    "lint_locks",
    "lint_plan",
    "lint_source_tree",
    "lockcheck",
    "make_lock",
    "model_param_arrays",
    "numel_class",
    "preflight_convert",
    "sanitize",
    "simulate_happens_before",
    "stale_baseline_entries",
    "warning",
    "zero_state_arrays",
]
