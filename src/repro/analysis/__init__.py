"""Static analysis over checkpoint layouts and collective schedules.

Three analyzers, none of which ever materializes a tensor:

- :mod:`~repro.analysis.layout_lint` — derive every rank's expected
  checkpoint contents from the configs and diff against a tag's commit
  manifest and rank-file headers (``repro lint-ckpt``).
- :mod:`~repro.analysis.interchange` — prove a source -> target
  reconfiguration well-formed before any IO (``repro lint-plan`` and
  ``ucp_convert``'s mandatory pre-flight).
- :mod:`~repro.analysis.collective_trace` — verify all ranks of each
  process group issued identical collective sequences.

All findings carry stable rule IDs (``UCP001``...); see
``docs/ANALYSIS.md`` for the catalogue.
"""

from repro.analysis.collective_trace import (
    CollectiveTraceRecorder,
    TraceEvent,
    check_collective_ordering,
    numel_class,
)
from repro.analysis.diagnostics import (
    RULES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    LayoutLintError,
    LintReport,
    error,
    warning,
)
from repro.analysis.interchange import (
    config_diagnostics,
    lint_plan,
    preflight_convert,
)
from repro.analysis.layout_lint import (
    crosscheck_manifest,
    expected_tag_basenames,
    lint_checkpoint,
)

__all__ = [
    "RULES",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "CollectiveTraceRecorder",
    "Diagnostic",
    "LayoutLintError",
    "LintReport",
    "TraceEvent",
    "check_collective_ordering",
    "config_diagnostics",
    "crosscheck_manifest",
    "error",
    "expected_tag_basenames",
    "lint_checkpoint",
    "lint_plan",
    "numel_class",
    "preflight_convert",
    "warning",
]
