"""Collective-trace analysis: ordering, arguments, and happens-before.

Deadlocks and silent corruption in distributed training very often
trace back to a small set of bug shapes: ranks of the same process
group issuing *different* collective sequences (one rank skips an
all-reduce behind a data-dependent branch), ranks disagreeing on a
collective's arguments (shape, dtype, reduce op), or two code paths —
a save and a conversion, say — entering overlapping critical sections
whose collectives interleave.  A real NCCL job hangs (or worse,
mismatched buffers silently reduce); the simulator, which executes
collectives group-wide, cannot hang — so these bug classes would be
invisible here without explicit checks.

Three checkers close the gap, all reading the same per-rank
:class:`TraceEvent` logs every :class:`~repro.dist.process_group.
ProcessGroup` records:

* :func:`check_collective_ordering` — per-group sequence equality
  (UCP014), the classic skipped-collective detector.  Numel is
  bucketed to its power-of-two class so benign size wobble (uneven
  final microbatch) passes while genuine size disagreement is flagged.
* :func:`check_collective_args` — positional argument lint (UCP024):
  ranks that *did* line up on the same collective must agree on
  dtype, reduce op, and (for shape-preserving ops) tensor shape.
* :func:`check_happens_before` — a vector-clock happens-before
  analysis (UCP023).  The per-rank logs are replayed as a
  synchronization game: a collective fires only when every member's
  log head has reached it.  A stuck replay is exactly a deadlock, and
  the cross-group wait-for graph names the cycle.  Fired barriers
  carry vector clocks, so ``save:<tag>``/``convert:<tag>``
  enter/commit critical sections can be checked for overlap: two
  sections neither of which happens-before the other would interleave
  their file writes on a real cluster.

:func:`check_trace` composes all three — the ``repro lint-trace``
entry point.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import LintReport, error

TRACE_VERSION = 1

_SECTION_RE = re.compile(r"^barrier:(save|convert):(.+):(enter|commit)$")

_SHAPE_STRICT_OPS = ("all_reduce", "broadcast", "reduce_scatter")
"""Ops whose per-member input shapes must match exactly (all_gather is
exempt: members may legitimately contribute uneven shards along the
gather axis)."""


def numel_class(numel: int) -> int:
    """Power-of-two bucket of an element count (0 stays 0).

    Collectives whose sizes fall in the same bucket are considered
    order-compatible; a rank sending half its peers' message size lands
    in a different bucket and is flagged.
    """
    if numel < 0:
        raise ValueError(f"numel must be >= 0, got {numel}")
    return int(numel).bit_length()


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One collective call as one rank observed it.

    ``shape`` and ``reduce_op`` are argument-level detail for the
    UCP024 lint; they are *not* part of :attr:`signature`, so the
    ordering check keeps its original wobble tolerance.
    """

    op: str
    group: str
    dtype: str
    numel_class: int
    shape: Tuple[int, ...] = ()
    reduce_op: str = ""

    @property
    def signature(self) -> Tuple[str, str, str, int]:
        """The ordering-equality key: (op, group, dtype, numel class)."""
        return (self.op, self.group, self.dtype, self.numel_class)

    def render(self) -> str:
        """Compact text form, e.g. ``all_reduce(dp:0,2 f32 ~2^14)``."""
        return (
            f"{self.op}({self.group} {self.dtype} ~2^{self.numel_class})"
        )

    def to_record(self) -> List:
        """Serializable list form (inverse of :meth:`from_record`)."""
        return [
            self.op, self.group, self.dtype, self.numel_class,
            list(self.shape), self.reduce_op,
        ]

    @classmethod
    def from_record(cls, record: Sequence) -> "TraceEvent":
        """Rebuild from :meth:`to_record` output (older 4-field records
        load with empty shape/reduce_op)."""
        op, group, dtype, nclass = record[:4]
        shape = tuple(int(d) for d in record[4]) if len(record) > 4 else ()
        reduce_op = str(record[5]) if len(record) > 5 else ""
        return cls(
            op=str(op), group=str(group), dtype=str(dtype),
            numel_class=int(nclass), shape=shape, reduce_op=reduce_op,
        )


class CollectiveTraceRecorder:
    """Per-rank log of every collective a job issues.

    One recorder is shared by all of a :class:`~repro.dist.cluster.
    Cluster`'s process groups.  Well-behaved group-wide calls append
    the same event to every member rank; the ``rank=`` override exists
    so tests (and future per-rank execution paths) can record what one
    rank alone observed — which is exactly the divergence the checkers
    then catch.
    """

    def __init__(self) -> None:
        self.events: Dict[int, List[TraceEvent]] = {}
        self.group_members: Dict[str, Tuple[int, ...]] = {}

    def record(
        self,
        op: str,
        group: str,
        ranks: Sequence[int],
        numel: int,
        dtype: str = "float32",
        rank: Optional[int] = None,
        shape: Sequence[int] = (),
        reduce_op: str = "",
    ) -> TraceEvent:
        """Log one collective call.

        Args:
            op: collective name (``all_reduce``, ``barrier:save`` ...).
            group: process-group name the call ran on.
            ranks: the group's member ranks.
            numel: per-rank input element count (bucketed for matching).
            dtype: element dtype name.
            rank: record for this member only (divergence injection);
                default records the event for every member.
            shape: per-rank input tensor shape (argument lint).
            reduce_op: reduction operator for reducing collectives.
        """
        members = tuple(ranks)
        self.group_members.setdefault(group, members)
        event = TraceEvent(
            op=op, group=group, dtype=dtype,
            numel_class=numel_class(numel),
            shape=tuple(int(d) for d in shape), reduce_op=reduce_op,
        )
        targets = members if rank is None else (rank,)
        for r in targets:
            self.events.setdefault(r, []).append(event)
        return event

    def record_call(
        self,
        op: str,
        group: str,
        ranks: Sequence[int],
        arrays: Sequence[np.ndarray],
        reduce_op: str = "",
    ) -> None:
        """Log one collective with each member's *own* argument facts.

        Unlike :meth:`record` (one event fan-copied to all members),
        this records per-member shape/dtype/numel — so a rank passing
        a differently-shaped or differently-typed buffer is visible to
        the UCP024 argument lint.  A single array is broadcast to all
        members (the ``broadcast`` collective's calling convention).
        """
        members = tuple(ranks)
        self.group_members.setdefault(group, members)
        arrs = [np.asarray(a) for a in arrays]
        if len(arrs) == 1 and len(members) > 1:
            arrs = arrs * len(members)
        if len(arrs) != len(members):
            raise ValueError(
                f"record_call on group {group!r} got {len(arrs)} arrays "
                f"for {len(members)} members"
            )
        for r, arr in zip(members, arrs):
            self.events.setdefault(r, []).append(TraceEvent(
                op=op, group=group, dtype=str(arr.dtype),
                numel_class=numel_class(int(arr.size)),
                shape=tuple(int(d) for d in arr.shape),
                reduce_op=reduce_op,
            ))

    def events_of(self, rank: int, group: Optional[str] = None) -> List[TraceEvent]:
        """One rank's event log, optionally restricted to one group."""
        log = self.events.get(rank, [])
        if group is None:
            return list(log)
        return [e for e in log if e.group == group]

    @property
    def num_events(self) -> int:
        """Total logged events across all ranks."""
        return sum(len(v) for v in self.events.values())

    def reset(self) -> None:
        """Drop all logged events and group memberships."""
        self.events.clear()
        self.group_members.clear()

    def to_payload(self) -> Dict:
        """Serializable form (``.npt``/JSON-safe: str keys, list leaves)."""
        return {
            "version": TRACE_VERSION,
            "group_members": {
                group: list(members)
                for group, members in sorted(self.group_members.items())
            },
            "events": {
                str(rank): [e.to_record() for e in log]
                for rank, log in sorted(self.events.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "CollectiveTraceRecorder":
        """Inverse of :meth:`to_payload`."""
        version = int(payload.get("version", -1))
        if version != TRACE_VERSION:
            raise ValueError(
                f"unsupported trace version {version}; this build reads "
                f"version {TRACE_VERSION}"
            )
        recorder = cls()
        for group, members in payload.get("group_members", {}).items():
            recorder.group_members[group] = tuple(int(r) for r in members)
        for rank, records in payload.get("events", {}).items():
            recorder.events[int(rank)] = [
                TraceEvent.from_record(r) for r in records
            ]
        return recorder


def check_collective_ordering(recorder: CollectiveTraceRecorder) -> LintReport:
    """Prove every group's ranks issued identical collective sequences.

    For each group the recorder saw, the per-rank event subsequences
    (restricted to that group) must be signature-identical across all
    member ranks: same ops, in the same order, with matching dtype and
    numel-class.  Any divergence is a UCP014 error naming the group,
    the disagreeing ranks, and the first divergent position — the
    information needed to find the data-dependent branch that caused
    it.
    """
    report = LintReport(subject="collective trace")
    for group in sorted(recorder.group_members):
        members = recorder.group_members[group]
        logs = {r: recorder.events_of(r, group) for r in members}
        reference_rank = members[0]
        reference = logs[reference_rank]
        for r in members[1:]:
            log = logs[r]
            if [e.signature for e in log] == [e.signature for e in reference]:
                continue
            limit = min(len(log), len(reference))
            index = next(
                (
                    i for i in range(limit)
                    if log[i].signature != reference[i].signature
                ),
                limit,
            )
            if index < limit:
                detail = (
                    f"rank {reference_rank} issued "
                    f"{reference[index].render()}, rank {r} issued "
                    f"{log[index].render()}"
                )
            else:
                detail = (
                    f"rank {reference_rank} issued {len(reference)} "
                    f"calls, rank {r} issued {len(log)}"
                )
            report.add(error(
                "UCP014",
                f"ranks {reference_rank} and {r} diverge at collective "
                f"#{index}: {detail}; mismatched sequences deadlock (or "
                f"silently corrupt) a real communicator",
                location=f"group {group}",
            ))
    return report


def check_collective_args(recorder: CollectiveTraceRecorder) -> LintReport:
    """Lint collectives whose ranks disagree on arguments (UCP024).

    Walks each group's per-rank logs positionally: at every position
    where all members issued the *same op* (sequence divergence itself
    is UCP014's domain), the dtype and reduce op must match across
    ranks, and for shape-preserving ops (:data:`_SHAPE_STRICT_OPS`)
    the input shapes must be identical — a rank reducing a transposed
    or truncated buffer corrupts every peer's result silently.
    """
    report = LintReport(subject="collective trace")
    for group in sorted(recorder.group_members):
        members = recorder.group_members[group]
        logs = {r: recorder.events_of(r, group) for r in members}
        depth = min(len(log) for log in logs.values()) if logs else 0
        for index in range(depth):
            events = [(r, logs[r][index]) for r in members]
            ops = {e.op for _, e in events}
            if len(ops) != 1:
                continue
            op = ops.pop()
            first_rank, first = events[0]
            for r, event in events[1:]:
                mismatches = []
                if event.dtype != first.dtype:
                    mismatches.append(
                        f"dtype {first.dtype} vs {event.dtype}"
                    )
                if event.reduce_op != first.reduce_op:
                    mismatches.append(
                        f"reduce op {first.reduce_op or '<none>'} vs "
                        f"{event.reduce_op or '<none>'}"
                    )
                if (
                    op in _SHAPE_STRICT_OPS
                    and first.shape and event.shape
                    and event.shape != first.shape
                ):
                    mismatches.append(
                        f"shape {first.shape} vs {event.shape}"
                    )
                if mismatches:
                    report.add(error(
                        "UCP024",
                        f"collective #{index} ({op}): ranks "
                        f"{first_rank} and {r} disagree on "
                        f"{'; '.join(mismatches)}; mismatched arguments "
                        f"silently corrupt the reduction on a real "
                        f"communicator",
                        location=f"group {group}",
                    ))
    return report


@dataclasses.dataclass(frozen=True)
class FiredCollective:
    """One collective instance the happens-before replay retired.

    ``clock`` is the members' joined vector clock *after* the fire —
    the partial-order timestamp critical-section analysis compares.
    """

    op: str
    group: str
    members: Tuple[int, ...]
    clock: Dict[int, int]


@dataclasses.dataclass
class HappensBeforeResult:
    """Outcome of replaying the per-rank logs as a synchronization game."""

    fired: List[FiredCollective]
    completed: bool
    stuck_heads: Dict[int, TraceEvent]
    exhausted_ranks: List[int]

    def wait_graph(
        self, group_members: Dict[str, Tuple[int, ...]]
    ) -> Dict[int, List[int]]:
        """Cross-group wait-for edges at the stuck point.

        Rank ``r`` (blocked on its head event's group) waits for every
        member of that group whose own head is elsewhere (or whose log
        is exhausted).
        """
        graph: Dict[int, List[int]] = {}
        for rank in sorted(self.stuck_heads):
            head = self.stuck_heads[rank]
            members = group_members.get(head.group, ())
            waits = [
                m for m in members
                if m != rank and (
                    m not in self.stuck_heads
                    or self.stuck_heads[m].group != head.group
                )
            ]
            graph[rank] = waits
        return graph


def simulate_happens_before(
    recorder: CollectiveTraceRecorder,
) -> HappensBeforeResult:
    """Replay per-rank logs as blocking collectives; build vector clocks.

    A collective on group ``g`` fires only when *every* member's log
    head has reached an event on ``g`` — exactly the blocking semantics
    of a real communicator (op-name mismatches still fire; naming
    divergence is UCP014's domain, while *reachability* is decided
    purely by which group a rank is blocked on).  On fire, all members
    synchronize: their vector clocks join and each member's own
    component increments.  A replay that stops with unconsumed events
    is a deadlock; the stuck heads drive the wait-for graph.
    """
    pointers: Dict[int, int] = {r: 0 for r in recorder.events}
    clocks: Dict[int, Dict[int, int]] = {r: {} for r in recorder.events}
    fired: List[FiredCollective] = []

    def head(rank: int) -> Optional[TraceEvent]:
        log = recorder.events.get(rank, [])
        index = pointers.get(rank, 0)
        return log[index] if index < len(log) else None

    progress = True
    while progress:
        progress = False
        for group in sorted(recorder.group_members):
            members = recorder.group_members[group]
            heads = [head(r) for r in members]
            if any(h is None or h.group != group for h in heads):
                continue
            joined: Dict[int, int] = {}
            for member in members:
                for r, count in clocks.setdefault(member, {}).items():
                    joined[r] = max(joined.get(r, 0), count)
            for member in members:
                joined[member] = clocks[member].get(member, 0) + 1
            for member in members:
                clocks[member] = dict(joined)
                pointers[member] = pointers.get(member, 0) + 1
            fired.append(FiredCollective(
                op=heads[0].op, group=group, members=members,
                clock=dict(joined),
            ))
            progress = True

    stuck_heads = {
        r: h for r in sorted(recorder.events)
        if (h := head(r)) is not None
    }
    exhausted = sorted(
        r for r in recorder.events
        if head(r) is None and any(
            r in recorder.group_members.get(h.group, ())
            for h in stuck_heads.values()
        )
    )
    return HappensBeforeResult(
        fired=fired,
        completed=not stuck_heads,
        stuck_heads=stuck_heads,
        exhausted_ranks=exhausted,
    )


def clock_lte(a: Dict, b: Dict) -> bool:
    """Vector-clock partial order: ``a`` happened-before-or-equal ``b``.

    Keys are event-source identities — simulated ranks here, thread
    names in :mod:`repro.analysis.lockwitness`'s thread-level replay,
    which reuses this exact partial order.
    """
    return all(count <= b.get(r, 0) for r, count in a.items())


_clock_lte = clock_lte


def find_cycle(graph: Dict) -> Optional[List]:
    """One directed cycle in a wait-for/order graph, or None.

    Nodes may be any sortable hashable (ranks here, lock names in the
    lock witness); traversal order is deterministic (sorted roots).
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {r: WHITE for r in graph}
    for start in sorted(graph):
        if color[start] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(start, 0)]
        path: List[int] = []
        while stack:
            node, edge_index = stack.pop()
            if edge_index == 0:
                color[node] = GRAY
                path.append(node)
            edges = graph.get(node, [])
            advanced = False
            for i in range(edge_index, len(edges)):
                nxt = edges[i]
                if color.get(nxt, BLACK) == GRAY:
                    return path[path.index(nxt):]
                if color.get(nxt, BLACK) == WHITE:
                    stack.append((node, i + 1))
                    stack.append((nxt, 0))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
    return None


_find_cycle = find_cycle


def check_happens_before(recorder: CollectiveTraceRecorder) -> LintReport:
    """Deadlock cycles and critical-section overlaps (UCP023).

    Two findings come out of the vector-clock replay:

    * **deadlock** — the replay stuck with unconsumed events.  The
      wait-for graph's cycle (rank-by-rank, naming the group each rank
      is blocked on) is rendered when one exists; otherwise the stuck
      ranks are blocked on peers that already exhausted their logs
      (e.g. a dropped barrier).
    * **critical-section overlap** — ``barrier:save:<tag>:enter`` /
      ``:commit`` (and ``convert:``) pairs delimit sections whose file
      writes must serialize.  Two sections neither of whose commits
      happens-before the other's enter would interleave on a real
      cluster; and a section entered but never committed is a torn
      protocol (dropped commit barrier).
    """
    report = LintReport(subject="collective trace")
    result = simulate_happens_before(recorder)

    if not result.completed:
        graph = result.wait_graph(recorder.group_members)
        cycle = _find_cycle(graph)
        if cycle is not None:
            hops = []
            for i, rank in enumerate(cycle):
                head_event = result.stuck_heads[rank]
                nxt = cycle[(i + 1) % len(cycle)]
                hops.append(
                    f"rank {rank} waits for rank {nxt} on group "
                    f"{head_event.group} ({head_event.render()})"
                )
            report.add(error(
                "UCP023",
                f"collective deadlock cycle: {'; '.join(hops)}; a real "
                f"communicator would hang here forever",
                location="trace",
            ))
        else:
            blocked = "; ".join(
                f"rank {r} blocked on group "
                f"{result.stuck_heads[r].group} "
                f"({result.stuck_heads[r].render()})"
                for r in sorted(result.stuck_heads)
            )
            exhausted = (
                f"; ranks {result.exhausted_ranks} already exhausted "
                f"their logs (dropped collective?)"
                if result.exhausted_ranks else ""
            )
            report.add(error(
                "UCP023",
                f"collective replay deadlocks with no cycle: {blocked}"
                f"{exhausted}",
                location="trace",
            ))

    # critical sections from fired barriers, in fire order
    open_sections: Dict[Tuple[str, str, str], Dict[int, int]] = {}
    closed: List[Tuple[Tuple[str, str, str], Dict[int, int], Dict[int, int]]] = []
    for fired in result.fired:
        match = _SECTION_RE.match(fired.op)
        if match is None:
            continue
        kind, tag, edge = match.groups()
        key = (kind, tag, fired.group)
        if edge == "enter":
            open_sections[key] = fired.clock
        elif key in open_sections:
            closed.append((key, open_sections.pop(key), fired.clock))

    for key in sorted(open_sections):
        kind, tag, group = key
        report.add(error(
            "UCP023",
            f"{kind} critical section {tag!r} entered but never "
            f"committed (dropped commit barrier on group {group}); a "
            f"crash here leaves a torn checkpoint that looks committed "
            f"to stragglers",
            location=f"group {group}",
        ))

    for i in range(len(closed)):
        for j in range(i + 1, len(closed)):
            (kind_a, tag_a, _), enter_a, commit_a = closed[i]
            (kind_b, tag_b, _), enter_b, commit_b = closed[j]
            if _clock_lte(commit_a, enter_b) or _clock_lte(commit_b, enter_a):
                continue
            report.add(error(
                "UCP023",
                f"critical sections {kind_a}:{tag_a} and "
                f"{kind_b}:{tag_b} overlap: neither commit "
                f"happens-before the other's enter, so their file "
                f"writes interleave on a real cluster",
                location="trace",
            ))
    return report


def check_trace(recorder: CollectiveTraceRecorder) -> LintReport:
    """All trace checks composed: ordering, arguments, happens-before.

    The ``repro lint-trace`` entry point (UCP014 + UCP023 + UCP024).
    """
    report = LintReport(subject="collective trace")
    report.extend(check_collective_ordering(recorder).diagnostics)
    report.extend(check_collective_args(recorder).diagnostics)
    report.extend(check_happens_before(recorder).diagnostics)
    return report
