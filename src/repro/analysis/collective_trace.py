"""Collective-ordering race detector.

Deadlocks and silent corruption in distributed training very often
trace back to one bug shape: ranks of the same process group issuing
*different* collective sequences — one rank skips an all-reduce behind
a data-dependent branch, two ranks disagree on message size, a save
path gathers in a different order than its peers.  A real NCCL job
hangs (or worse, mismatched buffers silently reduce); the simulator,
which executes collectives group-wide, cannot hang — so the bug class
would be invisible here without an explicit check.

The detector closes that gap: every collective records one
:class:`TraceEvent` per member rank (op, group, dtype, numel-class),
and :func:`check_collective_ordering` statically verifies that all
ranks of each group logged identical sequences.  Numel is bucketed to
its power-of-two class so benign size wobble (e.g. uneven final micro
batch) is tolerated while genuine size disagreement is flagged.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import LintReport, error


def numel_class(numel: int) -> int:
    """Power-of-two bucket of an element count (0 stays 0).

    Collectives whose sizes fall in the same bucket are considered
    order-compatible; a rank sending half its peers' message size lands
    in a different bucket and is flagged.
    """
    if numel < 0:
        raise ValueError(f"numel must be >= 0, got {numel}")
    return int(numel).bit_length()


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One collective call as one rank observed it."""

    op: str
    group: str
    dtype: str
    numel_class: int

    def render(self) -> str:
        """Compact text form, e.g. ``all_reduce(dp:0,2 f32 ~2^14)``."""
        return (
            f"{self.op}({self.group} {self.dtype} ~2^{self.numel_class})"
        )


class CollectiveTraceRecorder:
    """Per-rank log of every collective a job issues.

    One recorder is shared by all of a :class:`~repro.dist.cluster.
    Cluster`'s process groups.  Well-behaved group-wide calls append
    the same event to every member rank; the ``rank=`` override exists
    so tests (and future per-rank execution paths) can record what one
    rank alone observed — which is exactly the divergence the checker
    then catches.
    """

    def __init__(self) -> None:
        self.events: Dict[int, List[TraceEvent]] = {}
        self.group_members: Dict[str, Tuple[int, ...]] = {}

    def record(
        self,
        op: str,
        group: str,
        ranks: Sequence[int],
        numel: int,
        dtype: str = "float32",
        rank: Optional[int] = None,
    ) -> TraceEvent:
        """Log one collective call.

        Args:
            op: collective name (``all_reduce``, ``barrier:save`` ...).
            group: process-group name the call ran on.
            ranks: the group's member ranks.
            numel: per-rank input element count (bucketed for matching).
            dtype: element dtype name.
            rank: record for this member only (divergence injection);
                default records the event for every member.
        """
        members = tuple(ranks)
        self.group_members.setdefault(group, members)
        event = TraceEvent(
            op=op, group=group, dtype=dtype, numel_class=numel_class(numel)
        )
        targets = members if rank is None else (rank,)
        for r in targets:
            self.events.setdefault(r, []).append(event)
        return event

    def events_of(self, rank: int, group: Optional[str] = None) -> List[TraceEvent]:
        """One rank's event log, optionally restricted to one group."""
        log = self.events.get(rank, [])
        if group is None:
            return list(log)
        return [e for e in log if e.group == group]

    @property
    def num_events(self) -> int:
        """Total logged events across all ranks."""
        return sum(len(v) for v in self.events.values())

    def reset(self) -> None:
        """Drop all logged events and group memberships."""
        self.events.clear()
        self.group_members.clear()


def check_collective_ordering(recorder: CollectiveTraceRecorder) -> LintReport:
    """Prove every group's ranks issued identical collective sequences.

    For each group the recorder saw, the per-rank event subsequences
    (restricted to that group) must be element-wise identical across
    all member ranks: same ops, in the same order, with matching dtype
    and numel-class.  Any divergence is a UCP014 error naming the
    group, the disagreeing ranks, and the first divergent position —
    the information needed to find the data-dependent branch that
    caused it.
    """
    report = LintReport(subject="collective trace")
    for group in sorted(recorder.group_members):
        members = recorder.group_members[group]
        logs = {r: recorder.events_of(r, group) for r in members}
        reference_rank = members[0]
        reference = logs[reference_rank]
        for r in members[1:]:
            log = logs[r]
            if log == reference:
                continue
            limit = min(len(log), len(reference))
            index = next(
                (i for i in range(limit) if log[i] != reference[i]), limit
            )
            if index < limit:
                detail = (
                    f"rank {reference_rank} issued "
                    f"{reference[index].render()}, rank {r} issued "
                    f"{log[index].render()}"
                )
            else:
                detail = (
                    f"rank {reference_rank} issued {len(reference)} "
                    f"calls, rank {r} issued {len(log)}"
                )
            report.add(error(
                "UCP014",
                f"ranks {reference_rank} and {r} diverge at collective "
                f"#{index}: {detail}; mismatched sequences deadlock (or "
                f"silently corrupt) a real communicator",
                location=f"group {group}",
            ))
    return report
