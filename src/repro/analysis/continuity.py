"""Loss-curve continuity: the Table 3 acceptance criterion as a library.

The paper's evaluation (§4.2, Table 3) resumes one checkpoint under
many target strategies and accepts a resume when every post-resume LM
loss stays within 0.02 of the uninterrupted baseline.  The benchmark
harness originally inlined that comparison; this module makes it a
first-class check so the elastic supervisor
(:mod:`repro.dist.supervisor`), the loss-grid benchmark, and the chaos
tests all assert the *same* contract.

A continuity check compares two per-step loss curves — a golden
(uninterrupted) run and a resumed run — pointwise over the steps both
cover, and reports the worst deviation against a tolerance band.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.core.errors import UCPError

PAPER_LOSS_BAND = 0.02
"""Paper §4.2: resumed-loss deltas stay within 0.02 of the baseline."""


class ContinuityError(UCPError):
    """A resumed loss curve left the tolerance band of its baseline."""


@dataclasses.dataclass(frozen=True)
class ContinuityReport:
    """Outcome of one loss-continuity comparison.

    Attributes:
        num_steps: number of steps compared (intersection of both curves).
        max_delta: worst pointwise ``|golden - resumed|``.
        worst_step: step index (into the compared range) of ``max_delta``.
        tolerance: the band the curves were held to.
        ok: whether every compared point stayed within the band.
    """

    num_steps: int
    max_delta: float
    worst_step: int
    tolerance: float

    @property
    def ok(self) -> bool:
        """Whether the resumed curve stayed within the band throughout."""
        return self.max_delta <= self.tolerance

    def to_dict(self) -> Dict:
        """JSON-friendly form (stable keys, rounded floats)."""
        return {
            "num_steps": self.num_steps,
            "max_delta": round(self.max_delta, 6),
            "worst_step": self.worst_step,
            "tolerance": self.tolerance,
            "ok": self.ok,
        }


def check_loss_continuity(
    golden: Sequence[float],
    resumed: Sequence[float],
    tolerance: float = PAPER_LOSS_BAND,
    offset: int = 0,
) -> ContinuityReport:
    """Compare a resumed loss curve against its uninterrupted baseline.

    Args:
        golden: per-step losses of the uninterrupted run.
        resumed: per-step losses of the resumed run.
        tolerance: maximum allowed pointwise deviation.
        offset: index into ``golden`` where ``resumed[0]`` aligns (e.g.
            the resume step when ``resumed`` covers only the post-resume
            suffix).

    Returns:
        A :class:`ContinuityReport`; never raises on deviation (use
        :func:`assert_loss_continuity` for the raising form).

    Raises:
        ValueError: nothing to compare (empty overlap) or bad offset.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    if offset < 0 or offset > len(golden):
        raise ValueError(
            f"offset {offset} out of range for a {len(golden)}-step baseline"
        )
    span = min(len(golden) - offset, len(resumed))
    if span <= 0:
        raise ValueError(
            f"no overlapping steps to compare (baseline {len(golden)}, "
            f"resumed {len(resumed)}, offset {offset})"
        )
    max_delta = -1.0
    worst = 0
    for i in range(span):
        delta = abs(float(golden[offset + i]) - float(resumed[i]))
        if delta > max_delta:
            max_delta = delta
            worst = i
    return ContinuityReport(
        num_steps=span,
        max_delta=max_delta,
        worst_step=worst,
        tolerance=tolerance,
    )


def assert_loss_continuity(
    golden: Sequence[float],
    resumed: Sequence[float],
    tolerance: float = PAPER_LOSS_BAND,
    offset: int = 0,
    context: str = "",
) -> ContinuityReport:
    """The raising form of :func:`check_loss_continuity`.

    Returns:
        The (passing) :class:`ContinuityReport`.

    Raises:
        ContinuityError: the resumed curve left the band; the message
            names the worst step and both loss values.
    """
    report = check_loss_continuity(
        golden, resumed, tolerance=tolerance, offset=offset
    )
    if not report.ok:
        where = f"{context}: " if context else ""
        step = report.worst_step
        raise ContinuityError(
            f"{where}resumed loss diverged from the uninterrupted baseline: "
            f"|{float(golden[offset + step]):.6f} - "
            f"{float(resumed[step]):.6f}| = {report.max_delta:.6f} at "
            f"compared step {step} exceeds the {report.tolerance} band"
        )
    return report
