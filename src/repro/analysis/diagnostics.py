"""Structured diagnostics for the static-analysis layer.

Every check in :mod:`repro.analysis` reports through the same three
types: a :class:`Diagnostic` (one finding, carrying a stable rule ID),
a :class:`LintReport` (an ordered collection with text/JSON rendering),
and :class:`LayoutLintError` (the typed exception raised when a caller
needs a hard failure — e.g. ``ucp_convert``'s mandatory pre-flight).

Rule IDs are part of the tool's contract: scripts and CI gates key off
them, so an ID is never renumbered or reused.  The catalogue lives in
:data:`RULES`; ``docs/ANALYSIS.md`` documents the rationale per rule.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.errors import UCPFormatError

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

RULES: Dict[str, str] = {
    "UCP001": "missing-atom",
    "UCP002": "unknown-atom",
    "UCP003": "padding-mismatch",
    "UCP004": "shard-shape-mismatch",
    "UCP005": "overlapping-partition-slices",
    "UCP006": "partition-gap",
    "UCP007": "fragment-indivisible",
    "UCP008": "missing-rank-file",
    "UCP009": "unknown-rank-file",
    "UCP010": "manifest-mismatch",
    "UCP011": "flat-extent-mismatch",
    "UCP012": "expert-count-mismatch",
    "UCP013": "config-mismatch",
    "UCP014": "collective-order-mismatch",
    "UCP015": "cross-rank-divergence",
    "UCP016": "uncommitted-tag",
    "UCP017": "provenance-gap",
    "UCP018": "provenance-overlap",
    "UCP019": "padding-leak",
    "UCP020": "provenance-dtype-mismatch",
    "UCP021": "fragment-out-of-bounds",
    "UCP022": "provenance-unverifiable",
    "UCP023": "collective-deadlock",
    "UCP024": "collective-arg-mismatch",
    "UCP025": "cross-rank-writable-aliasing",
    "UCP026": "snapshot-aliases-live-state",
    "UCP027": "cache-return-mutation",
    "UCP028": "loaded-param-aliases-cache",
    "UCP029": "lock-order-cycle",
    "UCP030": "unguarded-state-access",
    "UCP031": "lock-held-across-blocking-io",
    "UCP032": "publish-observed-before-durable",
    "UCP033": "crash-state-recovery-failure",
    "UCP034": "tmp-leaked-after-clean-exit",
    "UCP035": "crash-enumeration-bounded",
    "UCP036": "schedule-dependent-divergence",
    "UCP037": "deadlock-schedule",
    "UCP038": "unsynchronized-access-pair",
    "UCP039": "bounded-exploration",
    "SRC001": "collective-result-no-copy",
    "SRC002": "frombuffer-escape",
    "SRC003": "unordered-set-iteration",
    "SRC004": "mutable-default-argument",
    "SRC005": "guarded-attr-outside-lock",
    "SRC006": "inconsistent-lock-order",
    "SRC007": "blocking-call-under-lock",
    "SRC008": "guarded-container-escape",
    "SRC009": "publish-without-durable-temp",
    "SRC010": "missing-dir-fsync-after-publish",
    "SRC011": "temp-file-leak-on-exception",
    "SRC012": "commit-order-violation",
    "SRC013": "check-then-act-on-guarded-state",
    "SRC014": "compound-op-spans-critical-sections",
}
"""Stable rule ID -> short kebab-case name.  Append-only.

``UCP0xx`` rules are produced by the checkpoint/runtime analyzers;
``SRC0xx`` rules are produced by the AST source lint
(:mod:`repro.analysis.srclint`, ``repro lint-src``).
"""


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        rule_id: stable ID from :data:`RULES` (e.g. ``"UCP001"``).
        severity: ``"error"`` or ``"warning"``.
        message: human-readable description of the finding.
        location: what the finding is anchored to — a store-relative
            file path, a parameter name, or a rank/group label.
    """

    rule_id: str
    severity: str
    message: str
    location: str = ""

    def __post_init__(self) -> None:
        if self.rule_id not in RULES:
            raise ValueError(f"unknown rule id {self.rule_id!r}")
        if self.severity not in (SEVERITY_ERROR, SEVERITY_WARNING):
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def rule_name(self) -> str:
        """The rule's kebab-case name (e.g. ``missing-atom``)."""
        return RULES[self.rule_id]

    @property
    def sort_key(self) -> Tuple[str, str, str, str]:
        """Total order over findings: (rule, location, severity, message).

        The location string embeds rank/file/tensor identity, so sorting
        on this key makes report output independent of the traversal
        order that produced the findings — the contract behind
        byte-identical ``--format json`` output across runs.
        """
        return (self.rule_id, self.location, self.severity, self.message)

    def render(self) -> str:
        """One-line text form, e.g. ``error UCP001 [missing-atom] ...``."""
        where = f" at {self.location}" if self.location else ""
        return (
            f"{self.severity} {self.rule_id} [{self.rule_name}]"
            f"{where}: {self.message}"
        )

    def to_dict(self) -> Dict:
        """JSON-friendly form (used by ``--format json`` and CI gates)."""
        return {
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
        }


def error(rule_id: str, message: str, location: str = "") -> Diagnostic:
    """Shorthand for an error-severity diagnostic."""
    return Diagnostic(rule_id, SEVERITY_ERROR, message, location)


def warning(rule_id: str, message: str, location: str = "") -> Diagnostic:
    """Shorthand for a warning-severity diagnostic."""
    return Diagnostic(rule_id, SEVERITY_WARNING, message, location)


class LintReport:
    """An ordered collection of diagnostics from one analysis run."""

    def __init__(
        self,
        subject: str = "",
        diagnostics: Optional[Iterable[Diagnostic]] = None,
    ) -> None:
        self.subject = subject
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append several findings."""
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        """Error-severity findings only."""
        return [d for d in self.diagnostics if d.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Warning-severity findings only."""
        return [d for d in self.diagnostics if d.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was reported."""
        return not self.errors

    def rule_ids(self) -> List[str]:
        """Distinct rule IDs reported, sorted."""
        return sorted({d.rule_id for d in self.diagnostics})

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        """All findings for one rule ID."""
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def sorted_diagnostics(self) -> List[Diagnostic]:
        """Findings in canonical order (:attr:`Diagnostic.sort_key`).

        Every rendering (text and JSON) goes through this, so two runs
        that produce the same finding *set* produce byte-identical
        output regardless of hash seeds or traversal order.  The sort
        is stable, so findings sharing a key keep insertion order.
        """
        return sorted(self.diagnostics, key=lambda d: d.sort_key)

    def summary(self) -> str:
        """One-line outcome, e.g. ``2 errors, 1 warning``."""
        n_err, n_warn = len(self.errors), len(self.warnings)
        if not n_err and not n_warn:
            return "clean"
        parts = []
        if n_err:
            parts.append(f"{n_err} error{'s' if n_err != 1 else ''}")
        if n_warn:
            parts.append(f"{n_warn} warning{'s' if n_warn != 1 else ''}")
        return ", ".join(parts)

    def render_text(self) -> str:
        """Multi-line human-readable rendering."""
        lines = []
        head = f"lint {self.subject}: " if self.subject else "lint: "
        lines.append(head + self.summary())
        for diag in self.sorted_diagnostics():
            lines.append(f"  {diag.render()}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-friendly form."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "num_errors": len(self.errors),
            "num_warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.sorted_diagnostics()],
        }

    def to_json(self) -> str:
        """Stable JSON rendering (for ``--format json`` and CI)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def raise_if_errors(self) -> "LintReport":
        """Raise :class:`LayoutLintError` when any error was found."""
        if self.errors:
            raise LayoutLintError(self)
        return self


class LayoutLintError(UCPFormatError):
    """A static layout check found error-severity diagnostics.

    Subclasses :class:`~repro.core.errors.UCPFormatError` so existing
    callers that treat "semantically inconsistent checkpoint" as one
    failure class keep working; the attached :class:`LintReport`
    preserves the individual findings and their rule IDs.
    """

    def __init__(self, report: LintReport, prefix: str = "") -> None:
        self.report = report
        errors = [
            d for d in report.sorted_diagnostics()
            if d.severity == SEVERITY_ERROR
        ]
        shown = "; ".join(d.render() for d in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        subject = f" {report.subject}" if report.subject else ""
        lead = prefix if prefix else f"layout lint failed for{subject}"
        super().__init__(f"{lead}: {shown}{more}")
