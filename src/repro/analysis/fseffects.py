"""Crash-consistency / filesystem-effect AST lint (SRC009-SRC012).

The static half of the crash-consistency checker (the runtime half is
:mod:`repro.analysis.fswitness`).  PR 1's atomic-commit protocol —
temp file, fsync, publishing rename, directory fsync, manifest before
``latest`` — was until now only *documented*; this lint makes each leg
of it checkable from the source text alone, the same shape as the
locks/lockwitness split for concurrency:

========  ============================  =====================================
rule      name                          pattern
========  ============================  =====================================
SRC009    publish-without-durable-temp  a publishing ``os.replace``/
                                        ``os.rename`` whose source temp file
                                        was never fsynced first — atomic
                                        against torn writes, but after a
                                        power loss the rename can be durable
                                        while the data is not
SRC010    missing-dir-fsync-after-      no directory fsync (``os.fsync`` of
          publish                       an ``os.open``-ed dirfd, or an
                                        ``fsync_dir``-named helper) after a
                                        publishing rename — the rename itself
                                        may not survive a crash
SRC011    temp-file-leak-on-exception   a function writes a temp file and
                                        publishes it with no ``except``/
                                        ``finally`` cleanup unlinking the
                                        temp — an exception between write
                                        and rename leaks the ``*.tmp``
SRC012    commit-order-violation        the ``latest`` marker written in a
                                        function with no manifest publish
                                        lexically before it — readers could
                                        observe a pointer to an uncommitted
                                        tag
========  ============================  =====================================

Scope and limits (deliberate): the analysis is a per-function lexical
dataflow — "dominated by" means *lexically preceded by* within the same
function body, so an fsync inside ``if self.durable:`` satisfies SRC009
(the off-switch is an explicit operator choice, not a protocol bug).
Temp files are recognized by name (``"tmp"`` in the variable name or a
``".tmp"``/``"tmp"`` literal in the binding expression); a temp path
laundered through an unrelated name defeats the check, which is what
the runtime witness is for.  SRC011 only fires for functions that both
write a temp *and* publish one — the fault-injection harness writes
torn temp files on purpose and never renames them.

Suppression shares :mod:`repro.analysis.srclint`'s mechanism:
``# srclint: disable=SRC009`` on the offending physical line.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, error
from repro.analysis.srclint import _suppressions

FS_RULES = ("SRC009", "SRC010", "SRC011", "SRC012")
"""The rule family this module produces (``repro lint-src --fs``)."""

_RENAME_NAMES = frozenset({"replace", "rename"})
_UNLINK_NAMES = frozenset({"unlink", "remove"})
_DIR_FSYNC_HELPERS = frozenset({"fsync_dir", "_fsync_dir", "sync_dir"})
_LATEST_WRITERS = frozenset({
    "write_text", "put_bytes", "save", "save_with_digest", "write_marker",
})
_MANIFEST_WRITERS = frozenset({"write_manifest"})

_FN_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _norm(expr: ast.expr) -> str:
    """Whitespace-free unparsed form, for textual path identity."""
    return "".join(ast.unparse(expr).split())


def _terminal(func: ast.expr) -> str:
    """Rightmost identifier of a call target."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_os_call(node: ast.Call, name: str) -> bool:
    """Whether ``node`` is ``os.<name>(...)`` (or a bare ``<name>`` import)."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == name:
        return isinstance(func.value, ast.Name) and func.value.id == "os"
    return isinstance(func, ast.Name) and func.id == name


def _string_literals(node: ast.AST) -> List[str]:
    """Every string constant appearing anywhere inside ``node``."""
    return [
        n.value for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    ]


def _is_tmpish(norm: str, extra_tmp_names: Set[str]) -> bool:
    """Whether a normalized expression plausibly denotes a temp path."""
    lowered = norm.lower()
    return (
        "tmp" in lowered
        or "temp" in lowered
        or norm in extra_tmp_names
    )


def _mentions(node: ast.AST, needles: Tuple[str, ...]) -> bool:
    """Whether any identifier/attribute/string in ``node`` matches."""
    for sub in ast.walk(node):
        text: Optional[str] = None
        if isinstance(sub, ast.Attribute):
            text = sub.attr
        elif isinstance(sub, ast.Name):
            text = sub.id
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            text = sub.value
        if text is None:
            continue
        lowered = text.lower()
        if any(n in lowered for n in needles):
            return True
    return False


class _FnState:
    """Lexical dataflow state for one function body."""

    def __init__(self) -> None:
        # variable names bound to temp-path expressions
        self.tmp_names: Set[str] = set()
        # normalized exprs whose bytes were made durable (fsync of the
        # open file handle, or an fsync helper applied to the path)
        self.durable: Set[str] = set()
        # file-handle name -> normalized path expr it was opened on
        self.handles: Dict[str, str] = {}
        # names assigned from os.open(...) — candidate dirfds
        self.dirfds: Set[str] = set()
        # publishing renames awaiting a directory fsync: (lineno, dst)
        self.pending_dir_sync: List[Tuple[int, str]] = []
        # (lineno, norm tmp expr) of temp-file writes, for SRC011
        self.tmp_writes: List[Tuple[int, str]] = []
        self.published = False
        self.manifest_written = False
        # temp exprs a surrounding try's handler/finally unlinks
        self.cleanup_exprs: Set[str] = set()


class _FSChecker:
    def __init__(self, rel: str, source: str, tree: ast.AST) -> None:
        self.rel = rel
        self.tree = tree
        self.suppress = _suppressions(source)
        self.findings: List[Diagnostic] = []

    def _emit(self, rule: str, lineno: int, message: str) -> None:
        rules = self.suppress.get(lineno, "absent")
        if rules is None or (rules != "absent" and rule in rules):
            return
        self.findings.append(
            error(rule, message, location=f"{self.rel}:{lineno}")
        )

    # --- per-function walk -------------------------------------------

    def _check_function(self, fn) -> None:
        state = _FnState()
        # pre-pass: collect every unlink of a temp-ish expression that
        # lives in an except handler or finally block — cleanup on ANY
        # exception path of the function counts (the usual shape is one
        # try wrapping the whole write->publish sequence)
        for node in ast.walk(fn):
            if isinstance(node, ast.Try):
                protected: List[ast.stmt] = list(node.finalbody)
                for handler in node.handlers:
                    protected.extend(handler.body)
                for stmt in protected:
                    for call in ast.walk(stmt):
                        if (
                            isinstance(call, ast.Call)
                            and _terminal(call.func) in _UNLINK_NAMES
                        ):
                            target = (
                                _norm(call.args[0]) if call.args
                                else _norm(call.func.value)
                                if isinstance(call.func, ast.Attribute)
                                else ""
                            )
                            state.cleanup_exprs.add(target)
        self._walk(fn.body, state)
        # SRC010: publishes never followed by a directory fsync
        for lineno, dst in state.pending_dir_sync:
            self._emit(
                "SRC010", lineno,
                f"publishing rename to {dst} is never followed by a "
                f"directory fsync: the rename lives only in the page "
                f"cache, so a power loss can roll the publish back "
                f"(or reorder it against later writes)",
            )
        # SRC011: temp writes in a publishing function with no cleanup
        if state.published:
            for lineno, tmp in state.tmp_writes:
                if any(
                    cleanup == tmp or _is_tmpish(cleanup, state.tmp_names)
                    for cleanup in state.cleanup_exprs
                ):
                    continue
                self._emit(
                    "SRC011", lineno,
                    f"temp file {tmp} is written and later published, "
                    f"but no except/finally path unlinks it: an "
                    f"exception between write and rename leaks the "
                    f"*.tmp on disk",
                )

    def _walk(self, body: List[ast.stmt], state: _FnState) -> None:
        for stmt in body:
            self._visit(stmt, state)

    def _visit(self, node: ast.AST, state: _FnState) -> None:
        if isinstance(node, _FN_NODES + (ast.Lambda, ast.ClassDef)):
            return  # nested scopes get their own pass
        if isinstance(node, ast.Assign):
            self._track_assign(node, state)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._track_with_item(item, state)
            self._walk(node.body, state)
            return
        if isinstance(node, ast.Call):
            self._check_call(node, state)
        for child in ast.iter_child_nodes(node):
            self._visit(child, state)

    # --- binding trackers --------------------------------------------

    def _track_assign(self, node: ast.Assign, state: _FnState) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        value = node.value
        if isinstance(value, ast.Call) and _is_os_call(value, "open"):
            state.dirfds.add(name)
            return
        literals = " ".join(_string_literals(value)).lower()
        if "tmp" in literals or "temp" in literals or "tmp" in name.lower():
            state.tmp_names.add(name)

    def _track_with_item(self, item: ast.withitem, state: _FnState) -> None:
        """``with open(X, "wb") as fh`` binds ``fh`` to path X."""
        expr = item.context_expr
        if not (isinstance(expr, ast.Call) and _terminal(expr.func) == "open"):
            return
        if not expr.args:
            return
        path_norm = _norm(expr.args[0])
        if item.optional_vars is not None and isinstance(
            item.optional_vars, ast.Name
        ):
            state.handles[item.optional_vars.id] = path_norm
        modes = [
            lit for lit in _string_literals(expr)
            if set(lit) <= set("rwxab+tU")
        ]
        writing = any("w" in m or "a" in m or "x" in m or "+" in m
                      for m in modes)
        if writing and _is_tmpish(path_norm, state.tmp_names):
            state.tmp_writes.append((expr.lineno, path_norm))

    # --- effect calls -------------------------------------------------

    def _check_call(self, node: ast.Call, state: _FnState) -> None:
        name = _terminal(node.func)

        # fsync classification: file handle, raw path, or directory fd
        if _is_os_call(node, "fsync") and node.args:
            arg = node.args[0]
            # os.fsync(fh.fileno()) -> the path fh was opened on
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Attribute)
                and arg.func.attr == "fileno"
                and isinstance(arg.func.value, ast.Name)
            ):
                path = state.handles.get(arg.func.value.id)
                if path is not None:
                    state.durable.add(path)
                return
            # os.fsync(dirfd) where dirfd came from os.open -> dir sync
            if isinstance(arg, ast.Name) and arg.id in state.dirfds:
                state.pending_dir_sync.clear()
                return
            state.durable.add(_norm(arg))
            return
        if name in _DIR_FSYNC_HELPERS:
            state.pending_dir_sync.clear()
            return
        if name in ("fsync_file", "fsync_path") and node.args:
            state.durable.add(_norm(node.args[0]))
            return

        # publishing rename
        if (
            name in _RENAME_NAMES
            and _is_os_call(node, name)
            and len(node.args) >= 2
        ):
            src, dst = _norm(node.args[0]), _norm(node.args[1])
            if _is_tmpish(dst, state.tmp_names):
                return  # renaming *into* a temp name is not a publish
            state.published = True
            if src not in state.durable:
                self._emit(
                    "SRC009", node.lineno,
                    f"os.{name}({src} -> {dst}) publishes bytes that "
                    f"were never fsynced: the rename can become durable "
                    f"while the data is still in the page cache, so a "
                    f"power loss leaves a committed-looking file with "
                    f"torn or empty content",
                )
            state.pending_dir_sync.append((node.lineno, dst))
            return

        # commit-protocol ordering: manifest before `latest`
        if name in _MANIFEST_WRITERS or (
            name in _LATEST_WRITERS
            and any(_mentions(a, ("manifest",)) for a in node.args)
        ):
            state.manifest_written = True
            return
        if name in _LATEST_WRITERS and any(
            _mentions(a, ("latest",)) for a in node.args
        ):
            if not state.manifest_written:
                self._emit(
                    "SRC012", node.lineno,
                    f"the `latest` marker is written by {name}() with no "
                    f"manifest publish before it in this function: a "
                    f"crash after this write leaves the pointer naming "
                    f"an uncommitted tag, which readers must never "
                    f"trust",
                )

    # --- entry --------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        for node in ast.walk(self.tree):
            if isinstance(node, _FN_NODES):
                self._check_function(node)
        return self.findings


def lint_fs_effects(rel: str, source: str, tree: ast.AST) -> List[Diagnostic]:
    """Run the filesystem-effect rules over one parsed file."""
    return _FSChecker(rel, source, tree).run()
