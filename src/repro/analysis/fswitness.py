"""Runtime FS-op witness + ALICE-style crash-state enumeration.

The runtime half of the crash-consistency checker (the static half is
:mod:`repro.analysis.fseffects`), in the same shape as the
locks/lockwitness split: the store's file effects are *recorded* while
code runs, and the resulting trace is *replayed* offline against an
adversarial persistence model.

Recording
    Every :class:`~repro.storage.store.ObjectStore` file operation —
    data write, fsync, publishing rename, directory fsync, unlink —
    lands in the innermost active :class:`FSOpRecorder` (activate with
    the :func:`fstrace` context manager).  Zero cost when no trace is
    active: the store's hook is one ``current()`` stack check.  Ops
    from different stores (a save's checkpoint dir, a conversion's
    output dir) are namespaced by a per-root label (``s0/``, ``s1/``,
    assigned in first-touch order), so one trace can cover a whole
    save→convert pipeline without path collisions.

Replay (``repro lint-trace --fs``)
    :func:`check_fs_trace` analyzes a recorded trace two ways:

    - *structurally*: a publishing rename whose source bytes were never
      fsynced, or that is never followed by a directory fsync, fires
      **UCP032** (publish-observed-before-durable); a ``*.tmp`` still
      present after every op applied fires **UCP034**.
    - *exhaustively*: the crash-state enumerator derives every legal
      post-crash disk state the trace permits — for each crash point,
      the all-applied prefix, the durable-only state (every op a
      missing fsync leaves reorderable is dropped), every
      drop-one-volatile-op variant, and every torn-volatile-write
      variant (mirroring the fault harness's torn-write model).  Each
      deduplicated state is materialized in a scratch directory and
      recovery is run against every store root in it:
      ``latest_committed_tag`` + a deep manifest verify.  A state from
      which recovery fails, loads torn data, or loses a durably
      committed tag fires **UCP033**.

    The enumeration is *bounded*: at most ``state_cap`` distinct states
    are materialized, and hitting the cap (or replaying a trace whose
    payload carries no file contents) is reported as a **UCP035**
    warning — a bounded run never silently passes as an exhaustive one.

The persistence model (what "legal post-crash state" means)
    - a data write becomes durable at the matching file's ``fsync``;
    - a rename/unlink (directory-entry op) becomes durable at the next
      ``fsync`` of the *parent directory*;
    - anything not yet durable at the crash point may independently be
      lost or (for writes) torn to a prefix — in particular a rename
      can survive while the data write it published is lost, leaving a
      committed-looking empty file, exactly the state SRC009 warns
      about statically.

All diagnostics carry deterministic state labels (``crash@i/drop#k``)
and store-root labels, never scratch-directory paths, so
``--format json`` output is byte-stable across runs and machines.
"""

from __future__ import annotations

import base64
import contextlib
import hashlib
import posixpath
import shutil
import tempfile
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis import schedpoint as _schedpoint
from repro.analysis.diagnostics import LintReport, error, warning

PAYLOAD_VERSION = 1

DEFAULT_STATE_CAP = 512
"""Materialization budget for one enumeration run (UCP035 when hit)."""

WRITE = "write"
FSYNC = "fsync"
RENAME = "rename"
FSYNC_DIR = "fsync_dir"
UNLINK = "unlink"

_ENTRY_OPS = (WRITE, RENAME, UNLINK)
"""Ops that change disk contents (fsyncs only change durability)."""


def _dirname(rel: str) -> str:
    """Parent directory of a store-relative path (``"."`` for the root)."""
    return posixpath.dirname(rel) or "."


@dataclass(frozen=True)
class FSOp:
    """One recorded filesystem effect.

    Attributes:
        kind: one of ``write``/``fsync``/``rename``/``fsync_dir``/
            ``unlink``.
        path: root-labeled store-relative subject path (the directory
            for ``fsync_dir``, the rename *source* for ``rename``).
        dst: rename destination (``rename`` only).
        nbytes: payload size (``write`` only).
        sha256: payload digest (``write`` only) — identifies content
            even when the bytes themselves were not captured.
        data: payload bytes when the recorder captured them; the
            enumerator needs these to materialize states.
        thread: name of the thread that performed the op (stamped by
            the recorder) — what lets interleaving traces and
            crash-state enumeration compose once the async persister's
            queue coalesces writes from several threads.
    """

    kind: str
    path: str
    dst: Optional[str] = None
    nbytes: int = 0
    sha256: str = ""
    data: Optional[bytes] = None
    thread: str = ""

    def to_dict(self, with_data: bool) -> Dict:
        """JSON-ready form; ``with_data`` inlines write bytes as base64."""
        out: Dict = {"kind": self.kind, "path": self.path}
        if self.dst is not None:
            out["dst"] = self.dst
        if self.thread:
            out["thread"] = self.thread
        if self.kind == WRITE:
            out["nbytes"] = self.nbytes
            out["sha256"] = self.sha256
            if with_data and self.data is not None:
                out["data_b64"] = base64.b64encode(self.data).decode("ascii")
        return out

    @staticmethod
    def from_dict(raw: Dict) -> "FSOp":
        data = raw.get("data_b64")
        return FSOp(
            kind=raw["kind"],
            path=raw["path"],
            dst=raw.get("dst"),
            nbytes=int(raw.get("nbytes", 0)),
            sha256=raw.get("sha256", ""),
            data=base64.b64decode(data) if data is not None else None,
            thread=raw.get("thread", ""),
        )


class FSOpRecorder:
    """Thread-safe append-only trace of store file effects.

    Every ``record_*`` method takes the recording store's identity
    (its base-directory string) first; the recorder maps each distinct
    root to a stable label (``s0``, ``s1``, ... in first-touch order)
    and prefixes recorded paths with it, so ops from several stores
    never collide and replay output stays free of machine-specific
    temp paths.

    Args:
        capture_data: record each write's payload bytes (required for
            crash-state materialization).  Disable for long traces
            where only the structural UCP032/UCP034 checks are wanted —
            the enumerator then reports UCP035 instead of guessing.
    """

    def __init__(self, capture_data: bool = True) -> None:
        self.capture_data = capture_data
        self._mu = threading.Lock()
        self._ops: List[FSOp] = []  # guarded-by: self._mu
        self._roots: Dict[str, str] = {}  # guarded-by: self._mu

    def _rel(self, root: str, rel: str) -> str:
        with self._mu:
            label = self._roots.get(root)
            if label is None:
                label = f"s{len(self._roots)}"
                self._roots[root] = label
        # normpath collapses the store root itself ("s0/." -> "s0") so
        # directory-fsync paths match _dirname() of the entries they
        # cover
        return posixpath.normpath(f"{label}/{rel}")

    def _add(self, op: FSOp) -> None:
        if not op.thread:
            op = replace(op, thread=threading.current_thread().name)
        with self._mu:
            self._ops.append(op)
        # yield AFTER recording: under the cooperative scheduler only
        # one thread runs at a time, so trace order == effect order
        ctl = _schedpoint._CONTROLLER
        if ctl is not None:
            ctl.on_fs(op.kind, op.path)

    def record_write(self, root: str, rel: str, data: bytes) -> None:
        """A data write of ``data`` to ``rel`` (typically a ``*.tmp``)."""
        self._add(FSOp(
            kind=WRITE,
            path=self._rel(root, rel),
            nbytes=len(data),
            sha256=hashlib.sha256(data).hexdigest(),
            data=bytes(data) if self.capture_data else None,
        ))

    def record_fsync(self, root: str, rel: str) -> None:
        """An ``fsync`` of the open file at ``rel`` (data now durable)."""
        self._add(FSOp(kind=FSYNC, path=self._rel(root, rel)))

    def record_rename(self, root: str, src: str, dst: str) -> None:
        """An atomic publishing rename ``src -> dst``."""
        self._add(FSOp(
            kind=RENAME, path=self._rel(root, src), dst=self._rel(root, dst),
        ))

    def record_fsync_dir(self, root: str, rel_dir: str) -> None:
        """A directory fsync (entry ops under ``rel_dir`` now durable)."""
        self._add(FSOp(kind=FSYNC_DIR, path=self._rel(root, rel_dir or ".")))

    def record_unlink(self, root: str, rel: str) -> None:
        """A file removal."""
        self._add(FSOp(kind=UNLINK, path=self._rel(root, rel)))

    def ops(self) -> List[FSOp]:
        """Snapshot of the trace so far."""
        with self._mu:
            return list(self._ops)

    def roots(self) -> List[str]:
        """Root labels recorded so far, sorted."""
        with self._mu:
            return sorted(self._roots.values())

    def __len__(self) -> int:
        with self._mu:
            return len(self._ops)

    def to_payload(self) -> Dict:
        """JSON-able trace for offline replay (``lint-trace --fs``)."""
        with self._mu:
            return {
                "version": PAYLOAD_VERSION,
                "captured_data": self.capture_data,
                "roots": sorted(self._roots.values()),
                "fs_ops": [
                    op.to_dict(self.capture_data) for op in self._ops
                ],
            }


def ops_from_payload(payload: Dict) -> List[FSOp]:
    """Decode a :meth:`FSOpRecorder.to_payload` dict."""
    version = payload.get("version")
    if version != PAYLOAD_VERSION:
        raise ValueError(
            f"unsupported fs-trace payload version {version!r}; this build "
            f"replays version {PAYLOAD_VERSION}"
        )
    return [FSOp.from_dict(raw) for raw in payload.get("fs_ops", [])]


# --- activation (mirrors lockwitness/sanitizer) -----------------------

_STACK: List[FSOpRecorder] = []
_STACK_MU = threading.Lock()


def current() -> Optional[FSOpRecorder]:
    """The innermost active recorder, or None (the store's fast path)."""
    return _STACK[-1] if _STACK else None


@contextlib.contextmanager
def fstrace(capture_data: bool = True) -> Iterator[FSOpRecorder]:
    """Record every store file effect inside the block.

    Usage::

        with fstrace() as rec:
            saver.save(...)
        report = check_fs_trace(rec)
    """
    recorder = FSOpRecorder(capture_data=capture_data)
    with _STACK_MU:
        _STACK.append(recorder)
    try:
        yield recorder
    finally:
        with _STACK_MU:
            for i in range(len(_STACK) - 1, -1, -1):
                if _STACK[i] is recorder:
                    del _STACK[i]
                    break


# --- persistence model ------------------------------------------------

def _durable_set(ops: List[FSOp], upto: int) -> Set[int]:
    """Indices of entry ops in ``ops[:upto]`` that are durable at ``upto``.

    A write is durable once a later-but-pre-crash fsync names its path
    (before the entry is renamed away — fsyncing after the rename names
    a different path); a rename/unlink once a later fsync covers the
    parent directory of the entry it changed.  Everything else is
    volatile — the crash may independently drop it.
    """
    durable: Set[int] = set()
    for k in range(upto):
        op = ops[k]
        if op.kind == WRITE:
            for j in range(k + 1, upto):
                later = ops[j]
                if later.kind == FSYNC and later.path == op.path:
                    durable.add(k)
                    break
                if later.kind in (RENAME, UNLINK) and later.path == op.path:
                    break
        elif op.kind == RENAME:
            want = _dirname(op.dst or op.path)
            if any(
                ops[j].kind == FSYNC_DIR and ops[j].path == want
                for j in range(k + 1, upto)
            ):
                durable.add(k)
        elif op.kind == UNLINK:
            want = _dirname(op.path)
            if any(
                ops[j].kind == FSYNC_DIR and ops[j].path == want
                for j in range(k + 1, upto)
            ):
                durable.add(k)
    return durable


def apply_ops(
    ops: List[FSOp],
    include: Set[int],
    torn: Optional[int] = None,
) -> Dict[str, bytes]:
    """Replay a subset of a trace into a ``path -> bytes`` disk image.

    ``include`` selects which entry ops take effect (fsyncs never
    change contents); ``torn`` truncates that one write to a half-size
    prefix, the same torn-write model as the fault harness.  A rename
    whose source write was dropped publishes an *empty* file — the
    signature crash state of a missing pre-publish fsync.
    """
    fs: Dict[str, bytes] = {}
    for k, op in enumerate(ops):
        if k not in include or op.kind not in _ENTRY_OPS:
            continue
        if op.kind == WRITE:
            data = op.data if op.data is not None else b""
            if torn == k and data:
                data = data[: max(1, len(data) // 2)]
            fs[op.path] = data
        elif op.kind == RENAME:
            fs[op.dst or op.path] = fs.pop(op.path, b"")
        elif op.kind == UNLINK:
            fs.pop(op.path, None)
    return fs


def _signature(fs: Dict[str, bytes]) -> Tuple[Tuple[str, str], ...]:
    """Content identity of a disk image, for deduplication."""
    return tuple(sorted(
        (path, hashlib.sha256(data).hexdigest())
        for path, data in fs.items()
    ))


@dataclass
class CrashState:
    """One enumerated post-crash disk image."""

    label: str
    """Deterministic identity, e.g. ``crash@7/drop#4`` — crash after
    the first 7 ops were issued, with volatile op 4 independently
    lost."""

    files: Dict[str, bytes]
    crash_point: int
    guaranteed_tags: Tuple[str, ...] = ()
    """Root-labeled tags durably committed at the crash point —
    recovery from this state must find one at least this new."""


@dataclass
class Enumeration:
    """The bounded output of :func:`enumerate_crash_states`."""

    states: List[CrashState] = field(default_factory=list)
    capped: bool = False
    crash_points_total: int = 0
    crash_points_covered: int = 0


def _guaranteed_tags(
    ops: List[FSOp], upto: int, durable: Set[int]
) -> Tuple[str, ...]:
    """Tags whose commit is durable at ``upto`` under every legal state.

    A tag qualifies when its manifest was durably published (write
    fsynced, rename directory-fsynced) and *every* entry op under the
    tag so far is durable — then no enumerated state can be missing any
    of its files.  A tag retention has started deleting is never
    guaranteed.
    """
    from repro.ckpt import naming

    manifest_suffix = "/" + naming.MANIFEST_FILE
    candidates: Set[str] = set()
    for k in range(upto):
        op = ops[k]
        if op.kind == RENAME and k in durable and (
            op.dst or ""
        ).endswith(manifest_suffix):
            candidates.add(posixpath.dirname(op.dst or ""))
    out = []
    for tag in sorted(candidates):
        prefix = tag + "/"
        ok = True
        for k in range(upto):
            op = ops[k]
            touched = op.path.startswith(prefix) or (
                op.dst or ""
            ).startswith(prefix)
            if not touched or op.kind not in _ENTRY_OPS:
                continue
            if op.kind == UNLINK or k not in durable:
                ok = False
                break
        if ok:
            out.append(tag)
    return tuple(out)


def enumerate_crash_states(
    ops: List[FSOp],
    state_cap: int = DEFAULT_STATE_CAP,
) -> Enumeration:
    """Every distinct post-crash disk state the trace permits, bounded.

    Per crash point ``i`` (crash after ``ops[:i]`` were issued) the
    enumerated variants are: the all-applied prefix; the durable-only
    state; for every volatile entry op, the drop-that-one-op state; and
    for every volatile write, the torn-prefix state.  States are
    deduplicated by content, and enumeration stops at ``state_cap``
    distinct states (:attr:`Enumeration.capped` set — callers must
    surface UCP035, never silently treat a capped run as exhaustive).
    """
    result = Enumeration(crash_points_total=len(ops) + 1)
    seen: Set[Tuple[Tuple[str, str], ...]] = set()
    for i in range(len(ops) + 1):
        durable = _durable_set(ops, i)
        guaranteed = _guaranteed_tags(ops, i, durable)
        volatile = [
            k for k in range(i)
            if ops[k].kind in _ENTRY_OPS and k not in durable
        ]
        variants: List[Tuple[str, Set[int], Optional[int]]] = [
            (f"crash@{i}/all", set(range(i)), None),
            (f"crash@{i}/durable", set(durable), None),
        ]
        for v in volatile:
            variants.append(
                (f"crash@{i}/drop#{v}", set(range(i)) - {v}, None)
            )
            if ops[v].kind == WRITE:
                variants.append((f"crash@{i}/torn#{v}", set(range(i)), v))
        for label, include, torn in variants:
            fs = apply_ops(ops, include, torn)
            sig = _signature(fs)
            if sig in seen:
                continue
            if len(result.states) >= state_cap:
                result.capped = True
                return result
            seen.add(sig)
            result.states.append(CrashState(
                label=label,
                files=fs,
                crash_point=i,
                guaranteed_tags=guaranteed,
            ))
        result.crash_points_covered = i + 1
    return result


# --- recovery check ---------------------------------------------------

def materialize(fs: Dict[str, bytes], root: Path) -> None:
    """Write a disk image into ``root`` (created empty by the caller)."""
    for rel in sorted(fs):
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(fs[rel])


def _check_recovery(
    state: CrashState, root: Path, domains: List[str]
) -> Optional[str]:
    """Run recovery against a materialized state; describe any failure.

    Recovery = ``latest_committed_tag`` over each store domain, then a
    deep manifest verify of the recovered tag (what ``repro verify``
    runs).  Returns None when the state is survivable from every
    domain, else a deterministic description (no filesystem paths).
    """
    from repro.ckpt import naming
    from repro.ckpt.errors import CheckpointNotFoundError
    from repro.ckpt.loader import latest_committed_tag
    from repro.ckpt.manifest import verify_tag
    from repro.storage.store import ObjectStore

    for dom in domains:
        base = root if dom == "." else root / dom
        where = "" if dom == "." else f"store {dom}: "
        expected = [
            posixpath.basename(t) for t in state.guaranteed_tags
            if dom == "." or t.startswith(dom + "/")
        ]
        try:
            tag = latest_committed_tag(str(base))
        except CheckpointNotFoundError:
            tag = None
        except Exception as exc:  # noqa: BLE001 - any raise IS the finding
            return (
                f"{where}recovery raised {type(exc).__name__} instead of "
                f"selecting a committed tag or reporting a clean cold "
                f"start"
            )
        if tag is None:
            if expected:
                return (
                    f"{where}recovery found no committed tag, but "
                    f"{expected[-1]} was durably committed before the "
                    f"crash"
                )
            continue
        try:
            problems = verify_tag(ObjectStore(str(base)), tag, deep=True)
        except Exception as exc:  # noqa: BLE001 - any raise IS the finding
            return (
                f"{where}recovered tag {tag} failed its deep verify with "
                f"{type(exc).__name__}"
            )
        if problems:
            shown = "; ".join(
                f"{posixpath.basename(rel)}: {why}"
                for rel, why in sorted(problems.items())[:2]
            )
            return (
                f"{where}recovered tag {tag} contains torn or missing "
                f"data: {shown}"
            )
        if expected:
            newest = expected[-1]
            try:
                behind = (
                    naming.step_from_tag(tag) < naming.step_from_tag(newest)
                )
            except ValueError:
                behind = tag < newest
            if behind:
                return (
                    f"{where}recovery selected {tag}, losing durably "
                    f"committed {newest}"
                )
    return None


# --- the replay check (lint-trace --fs) -------------------------------

def check_fs_trace(
    trace,
    state_cap: int = DEFAULT_STATE_CAP,
    enumerate_states: bool = True,
    clean_exit: bool = True,
) -> LintReport:
    """Replay a recorded FS-op trace against the persistence model.

    Args:
        trace: an :class:`FSOpRecorder`, a payload dict from
            :meth:`FSOpRecorder.to_payload`, or a raw :class:`FSOp`
            list (replayed as one anonymous store domain).
        state_cap: materialization budget for the enumerator.
        enumerate_states: run the crash-state enumeration (needs a
            trace captured with file contents); the structural
            UCP032/UCP034 checks always run.
        clean_exit: the traced run finished without an injected crash,
            so leftover ``*.tmp`` files are leaks (UCP034).  Pass False
            when replaying a deliberately killed run.
    """
    if isinstance(trace, FSOpRecorder):
        ops = trace.ops()
        domains = trace.roots() or ["."]
    elif isinstance(trace, dict):
        ops = ops_from_payload(trace)
        domains = list(trace.get("roots") or ["."])
    else:
        ops = list(trace)
        domains = ["."]
    report = LintReport(subject="fs-trace")

    # UCP032: structural durability-ordering scan (no materialization)
    for r, op in enumerate(ops):
        if op.kind != RENAME:
            continue
        dst = op.dst or op.path
        last_write = None
        for w in range(r - 1, -1, -1):
            if ops[w].kind == WRITE and ops[w].path == op.path:
                last_write = w
                break
        if last_write is not None and not any(
            ops[j].kind == FSYNC and ops[j].path == op.path
            for j in range(last_write + 1, r)
        ):
            report.add(error(
                "UCP032",
                f"op#{r}: rename publishes {dst} before its bytes were "
                f"fsynced — after a power loss the rename can survive "
                f"while the data does not, leaving a committed-looking "
                f"empty or torn file",
                location=dst,
            ))
        want = _dirname(dst)
        if not any(
            ops[j].kind == FSYNC_DIR and ops[j].path == want
            for j in range(r + 1, len(ops))
        ):
            report.add(error(
                "UCP032",
                f"op#{r}: publishing rename of {dst} is never made "
                f"durable by an fsync of directory {want} — the publish "
                f"itself can be rolled back by a crash",
                location=dst,
            ))

    # UCP034: tmp files surviving the clean-exit final state
    final_fs = apply_ops(ops, set(range(len(ops))))
    if clean_exit:
        for rel in sorted(final_fs):
            if rel.endswith(".tmp"):
                report.add(error(
                    "UCP034",
                    f"temp file {rel} still exists after the traced run "
                    f"finished cleanly: some write was never published "
                    f"or cleaned up",
                    location=rel,
                ))

    if not enumerate_states:
        return report

    total_writes = sum(1 for op in ops if op.kind == WRITE)
    missing_data = sum(
        1 for op in ops if op.kind == WRITE and op.data is None
    )
    if missing_data:
        report.add(warning(
            "UCP035",
            f"crash-state enumeration skipped: {missing_data} of "
            f"{total_writes} writes in the trace carry no captured "
            f"payload (recorded with capture_data=False); only the "
            f"structural checks ran",
            location="enumeration",
        ))
        return report

    enum = enumerate_crash_states(ops, state_cap=state_cap)
    scratch = Path(tempfile.mkdtemp(prefix="repro-crashenum-"))
    try:
        for n, state in enumerate(enum.states):
            state_root = scratch / f"state{n}"
            state_root.mkdir()
            materialize(state.files, state_root)
            failure = _check_recovery(state, state_root, domains)
            if failure is not None:
                report.add(error(
                    "UCP033",
                    f"crash state {state.label} "
                    f"({len(state.files)} files on disk): {failure}",
                    location=state.label,
                ))
            shutil.rmtree(state_root)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    if enum.capped:
        report.add(warning(
            "UCP035",
            f"crash-state enumeration bounded: stopped at the "
            f"{state_cap}-state cap after covering "
            f"{enum.crash_points_covered} of {enum.crash_points_total} "
            f"crash points; raise state_cap for an exhaustive run",
            location="enumeration",
        ))
    return report
