"""Interchange pre-flight: prove a conversion well-formed before IO.

A source -> target reconfiguration can be rejected from the configs
alone: every fragment dimension must divide the target's tensor/expert
degree, the target layout's ZeRO partition slices must tile each flat
buffer exactly, and (when converting *from* a UCP directory) every
parameter the target layout derives must have an atom to read.  The
checks here prove all of that symbolically — no tensor is touched — so
``ucp_convert`` and ``repro lint-plan`` can refuse a doomed plan in
milliseconds instead of failing mid-conversion after terabytes of IO.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis.diagnostics import Diagnostic, LintReport, error, warning
from repro.analysis.layout_lint import expected_tag_basenames
from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.parallel.layout import ModelParallelLayout
from repro.parallel.tp import build_shard_specs
from repro.storage.store import ObjectStore

_EXPERT_KINDS = ("expert_parallel",)


def config_diagnostics(
    model_cfg: ModelConfig,
    parallel_cfg: ParallelConfig,
    atom_names: Optional[Iterable[str]] = None,
    role: str = "target",
) -> List[Diagnostic]:
    """Statically check one ``(model, parallel)`` pair.

    Proves, per parameter: the fragmenter divides the config's TP
    degree (UCP007 / UCP012 for expert axes), and — when no
    indivisibility blocks layout construction — that the derived
    layout's partition slices tile every rank's flat buffer (UCP005 /
    UCP006).  With ``atom_names`` (the atoms available in a UCP
    directory), every derived parameter must be among them (UCP001).

    Args:
        model_cfg: the model being reconfigured.
        parallel_cfg: the strategy to prove loadable.
        atom_names: optional atom inventory to check coverage against.
        role: diagnostic location prefix (``"source"`` / ``"target"``).
    """
    out: List[Diagnostic] = []
    prefix = f"{role}:{parallel_cfg.describe()}"
    specs = build_shard_specs(
        model_cfg, expert_parallel=parallel_cfg.expert_parallel
    )

    divisible = True
    for name in sorted(specs):
        spec = specs[name]
        try:
            spec.shard_shape(parallel_cfg.tp)
        except ValueError as exc:
            divisible = False
            kind = getattr(spec.fragmenter, "kind", None)
            if kind in _EXPERT_KINDS:
                out.append(error(
                    "UCP012",
                    f"{name!r} cannot split across tp={parallel_cfg.tp} "
                    f"expert-parallel ranks: {exc}",
                    location=prefix,
                ))
            else:
                out.append(error(
                    "UCP007",
                    f"{name!r} fragment dimension does not divide "
                    f"tp={parallel_cfg.tp}: {exc}",
                    location=prefix,
                ))

    if atom_names is not None:
        available = set(atom_names)
        for name in sorted(set(specs) - available):
            out.append(error(
                "UCP001",
                f"{role} layout needs parameter {name!r} but no atom "
                f"provides it",
                location=prefix,
            ))
        for name in sorted(available - set(specs)):
            out.append(warning(
                "UCP002",
                f"atom {name!r} is not consumed by the {role} layout",
                location=prefix,
            ))

    if divisible:
        try:
            layout = ModelParallelLayout(model_cfg, parallel_cfg)
        except ValueError as exc:
            out.append(error(
                "UCP007",
                f"layout underivable for {parallel_cfg.describe()}: {exc}",
                location=prefix,
            ))
        else:
            for diag in layout.tiling_diagnostics():
                out.append(Diagnostic(
                    diag.rule_id,
                    diag.severity,
                    diag.message,
                    location=f"{prefix}.{diag.location}",
                ))
    return out


def lint_plan(
    model_cfg: ModelConfig,
    source_cfg: ParallelConfig,
    target_cfg: ParallelConfig,
    atom_names: Optional[Iterable[str]] = None,
) -> LintReport:
    """Statically prove a source -> target conversion well-formed.

    Both sides are checked: the source config must itself be derivable
    (its rank files were written under it), and the target config must
    be reachable — every fragment dimension divides the target degrees
    and the target's partition tiling is exact.  Nothing is read from
    disk; this is the pre-flight ``repro lint-plan`` exposes.

    Args:
        model_cfg: the shared model configuration.
        source_cfg: the strategy the checkpoint was saved under.
        target_cfg: the strategy to resume under.
        atom_names: when converting from a UCP directory, the atoms it
            actually holds; coverage is proven against the target.
    """
    report = LintReport(
        subject=f"{source_cfg.describe()} -> {target_cfg.describe()}"
    )
    report.extend(config_diagnostics(model_cfg, source_cfg, role="source"))
    report.extend(config_diagnostics(
        model_cfg, target_cfg, atom_names=atom_names, role="target"
    ))
    if model_cfg.is_moe and source_cfg.expert_parallel != target_cfg.expert_parallel:
        report.add(warning(
            "UCP013",
            f"expert layout changes across the plan "
            f"(expert_parallel {source_cfg.expert_parallel} -> "
            f"{target_cfg.expert_parallel}); conversion re-fragments "
            f"{model_cfg.num_experts} experts through atoms",
            location=f"{source_cfg.describe()} -> {target_cfg.describe()}",
        ))
    return report


def preflight_convert(
    src_store: ObjectStore,
    src_tag: str,
    manifest: Dict,
    model_cfg: ModelConfig,
    source_cfg: ParallelConfig,
    optimizer_layout: str = "flat",
    provenance: bool = True,
    analysis=None,
) -> LintReport:
    """The converter's mandatory pre-pass over a committed source tag.

    Runs before any rank file is read: proves the source config
    self-consistent (fragment divisibility + partition tiling) and
    that the commit manifest records every rank file the layout
    derives — a manifest that never listed a rank's optimizer state
    means the save was structurally incomplete, which per-file digest
    verification alone cannot see.  When the structural checks pass,
    the byte-provenance theorems (:mod:`repro.analysis.provenance`)
    run over the rank-file *headers*: every consolidated data byte
    must be supplied exactly once with no padding read as data
    (UCP017-UCP022) — still without touching any tensor payload.

    Args:
        src_store: source checkpoint store.
        src_tag: the committed tag being converted.
        manifest: the tag's commit-manifest payload.
        model_cfg: model config recorded in the tag's job config.
        source_cfg: parallel config recorded in the tag's job config.
        optimizer_layout: the job's recorded optimizer layout.
        provenance: run the header-only byte-provenance pass (on by
            default; costs kilobytes of header IO).
        analysis: a pre-built
            :class:`~repro.analysis.provenance.ProvenanceAnalysis` of
            the same source; its report is folded in instead of
            re-running the provenance pass, so a converter that also
            *lowers* the interval maps into read plans analyzes the
            source exactly once.
    """
    report = LintReport(subject=f"{src_store.base}/{src_tag}")
    report.extend(config_diagnostics(model_cfg, source_cfg, role="source"))
    if not report.ok:
        return report

    layout = ModelParallelLayout(model_cfg, source_cfg)
    recorded = set(manifest["files"])
    expected = expected_tag_basenames(source_cfg, layout, optimizer_layout)
    for basename in sorted(expected - recorded):
        report.add(error(
            "UCP008",
            f"the {source_cfg.describe()} layout derives rank file "
            f"{basename!r} but the commit manifest never recorded it; "
            f"the save was structurally incomplete",
            location=f"{src_tag}/{basename}",
        ))
    if provenance and report.ok:
        if analysis is not None:
            report.extend(analysis.report.diagnostics)
        else:
            from repro.analysis.provenance import check_source_provenance

            report.extend(check_source_provenance(
                src_store, src_tag, model_cfg, source_cfg, optimizer_layout
            ).diagnostics)
    return report
