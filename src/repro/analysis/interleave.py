"""Deterministic interleaving explorer for the threaded IO layer.

The witnesses of PRs 7-8 check the *one* schedule the OS happened to
run.  The concurrency claims the multi-tenant checkpoint hub and the
async persister rest on are quantified over *all* schedules, so this
module explores the schedule *space*: a cooperative scheduler runs a
scenario's threads one at a time, switching only at instrumented yield
points, and a DFS explorer with dynamic partial-order reduction and a
preemption bound drives the scenario through every inequivalent
schedule it can afford, checking per-schedule invariants.

Yield points are the hooks the runtime checkers already own — no new
instrumentation in production code:

* :class:`~repro.analysis.lockwitness.WitnessedLock` acquire/release,
* the ``BlockCache`` accessor hooks behind UCP030 (now carrying a
  read/write flag),
* every :class:`~repro.analysis.fswitness.FSOpRecorder` store op,
* explicit :func:`access` calls for scenario-declared shared state.

Per-schedule invariants and the rules they report:

========  ==============================  ================================
rule      name                            finding
========  ==============================  ================================
UCP036    schedule-dependent-divergence   a schedule whose output
                                          fingerprint differs from the
                                          serial reference — reported
                                          with both schedules' yield
                                          traces and a delta-shrunk
                                          minimal counterexample
UCP037    deadlock-schedule               an all-blocked state, with the
                                          wait cycle and the acquisition
                                          stacks of every held lock
UCP038    unsynchronized-access-pair      two accesses to one resource
                                          from different threads with no
                                          common lock and no
                                          happens-before edge at
                                          yield-point granularity
UCP039    bounded-exploration             the schedule cap or preemption
                                          bound was hit; counts reported
                                          (a bounded run never silently
                                          passes as exhaustive)
========  ==============================  ================================

The reduction is race-reversal DPOR: after each executed schedule the
explorer finds racing pairs — adjacent-concurrent dependent events from
different threads — and queues a schedule that reverses each pair at
the branch point where the earlier event was chosen.  Two events are
dependent when they touch the same resource with at least one write,
or when they acquire the same lock while at least one holder nests it
under another lock (the shape that can create a wait cycle).  Lock
acquisitions whose critical sections touch no conflicting state are
treated as independent, which is what keeps real IO scenarios — where
every cache hit takes the same lock — tractable.

Everything is deterministic: thread names are fixed (``T0``, ``T1``,
...), schedules are branch-choice lists, the DFS order is sorted, and
:meth:`ExploreReport.to_json` is byte-stable for one seed/schedule.
``repro explore`` is the CLI entry; ``--schedule FILE`` replays one
exact schedule, which is how a UCP036/UCP037 minimal counterexample is
reproduced.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis import lockwitness as _lockwitness
from repro.analysis import schedpoint
from repro.analysis.collective_trace import clock_lte
from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    error,
    warning,
)

ENV_VAR = "REPRO_INTERLEAVE"
"""Set to ``1`` to opt tests/CI into deeper (slower) exploration caps."""

DEFAULT_SCHEDULE_CAP = 256
"""Executed-schedule budget per exploration (UCP039 when exceeded)."""

DEFAULT_MAX_STEPS = 100_000
"""Per-schedule step budget; past it the run is treated as divergent
non-termination and the exploration raises :class:`ExploreError`."""

DEFAULT_SHRINK_BUDGET = 64
"""Extra runs the delta-shrinker may spend per counterexample."""

_TRACE_LIMIT = 400
"""Events kept per serialized yield trace in reports (head)."""


class ExploreError(Exception):
    """The exploration itself is misconfigured (bad scenario, bad
    schedule file, step-budget blowout) — distinct from a *finding*."""


class _Abort(BaseException):
    """Unwinds a controlled thread when the scheduler cancels a run.

    A ``BaseException`` so scenario code's ``except Exception`` blocks
    cannot swallow the unwind.
    """


def enabled_from_env() -> bool:
    """Whether ``REPRO_INTERLEAVE`` asks for deep exploration caps."""
    return os.environ.get(ENV_VAR, "") not in ("", "0")


# --- events and per-run results ----------------------------------------


@dataclasses.dataclass(frozen=True)
class Event:
    """One executed yield point.

    ``key`` is the dependency identity (lock uid / resource / path);
    ``resource`` is the display name.  ``branch`` is the index into the
    run's branch-choice list when >1 thread was runnable at this step,
    else ``-1``; ``runnable`` records which threads were runnable.
    """

    seq: int
    thread: int
    name: str
    kind: str  # start | acquire | release | access | fs
    resource: str
    key: str
    write: bool
    held: Tuple[str, ...]
    branch: int
    runnable: Tuple[int, ...]

    def to_row(self) -> List:
        """Compact JSON trace row: seq, thread, kind, resource, r/w, held."""
        return [
            self.seq, self.name, self.kind, self.resource,
            "w" if self.write else "r", list(self.held),
        ]


@dataclasses.dataclass
class _Deadlock:
    """An all-blocked state: who waits for what, and who holds it."""

    waiters: List[Dict]  # [{thread, wants, owner, stack, owner_stack}]

    def cycle_key(self) -> frozenset:
        return frozenset(
            (w["thread"], w["wants"], w["owner"]) for w in self.waiters
        )

    def describe(self) -> str:
        hops = []
        for w in self.waiters:
            hops.append(
                f"thread {w['thread']!r} waits for {w['wants']!r} held by "
                f"{w['owner']!r} (blocked at [{w['stack']}]; owner "
                f"acquired it at [{w['owner_stack']}])"
            )
        return "; ".join(hops)


@dataclasses.dataclass
class RunResult:
    """Everything one controlled execution produced."""

    choices: List[int]
    trace: List[Event]
    deadlock: Optional[_Deadlock]
    fingerprint: Optional[str]
    preemptions: int
    bound_exceeded: bool
    witness_errors: List[Diagnostic]
    sanitizer_errors: List[Diagnostic]


# --- the cooperative scheduler -----------------------------------------


class _TState:
    """One controlled thread's scheduling state."""

    __slots__ = (
        "index", "name", "thread", "go", "parked", "done", "aborting",
        "pending", "error",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.name = f"T{index}"
        self.thread: Optional[threading.Thread] = None
        self.go = threading.Event()
        self.parked = False
        self.done = False
        self.aborting = False
        # (kind, resource, key, write, lock_obj, stack)
        self.pending: Optional[Tuple] = None
        self.error: Optional[BaseException] = None


class Controller:
    """Cooperative scheduler: one controlled thread runs at a time.

    Controlled threads park at every yield point; the scheduler (the
    spawning thread) picks which parked thread proceeds.  Lock
    ownership is modeled by the scheduler itself — a thread whose
    pending acquire targets a lock owned by another controlled thread
    is not runnable — so the real lock acquire that follows a dispatch
    can never block, and an all-blocked state is *detected and
    reported* (UCP037) instead of hanging the process.
    """

    def __init__(
        self,
        n_threads: int,
        forced: Sequence[int],
        preemption_bound: Optional[int],
        max_steps: int,
    ) -> None:
        self.order = [_TState(i) for i in range(n_threads)]
        self._by_ident: Dict[int, _TState] = {}
        self._forced = list(forced)
        self._pbound = preemption_bound
        self._max_steps = max_steps
        self._back = threading.Event()
        self._abort = False
        self._finished = False
        self.trace: List[Event] = []
        self.choices: List[int] = []
        self.preemptions = 0
        self.bound_exceeded = False
        self.deadlock: Optional[_Deadlock] = None
        # scheduler-side lock model (only the scheduler mutates these)
        self._owner: Dict[int, _TState] = {}  # id(lock) -> holder
        self._held: Dict[_TState, List[object]] = {}
        self._lock_uids: Dict[int, str] = {}
        self._acq_stacks: Dict[Tuple[int, int], str] = {}

    # --- controlled-thread side (hook entry points) ------------------

    def _state(self) -> Optional[_TState]:
        return self._by_ident.get(threading.get_ident())

    def _park(self, ts: _TState, pending: Tuple) -> None:
        ts.pending = pending
        ts.parked = True
        self._back.set()
        ts.go.wait()
        ts.go.clear()
        if self._abort:
            ts.aborting = True
            raise _Abort()

    def lock_enter(self, lock) -> None:
        """Hook from ``WitnessedLock.__enter__`` (pre real acquire)."""
        ts = self._state()
        if ts is None or ts.aborting or self._finished:
            return
        stack = _lockwitness._fmt_stack(_lockwitness._capture_stack(skip=3))
        self._park(ts, ("acquire", lock.name, "", False, lock, stack))

    def lock_exit(self, lock) -> None:
        """Hook from ``WitnessedLock.__exit__`` (pre real release)."""
        ts = self._state()
        if ts is None or ts.aborting or self._finished:
            return
        self._park(ts, ("release", lock.name, "", False, lock, ""))

    def on_access(self, resource: str, write: bool) -> None:
        """Hook for guarded-state accessors and :func:`access`."""
        ts = self._state()
        if ts is None or ts.aborting or self._finished:
            return
        self._park(ts, ("access", resource, resource, write, None, ""))

    def on_fs(self, kind: str, path: str) -> None:
        """Hook from the FS-op recorder: store file effects."""
        ts = self._state()
        if ts is None or ts.aborting or self._finished:
            return
        write = kind in ("write", "rename", "unlink")
        self._park(ts, ("fs", f"{kind}:{path}", path, write, None, ""))

    # --- scheduler side ----------------------------------------------

    def _uid(self, lock) -> str:
        uid = self._lock_uids.get(id(lock))
        if uid is None:
            uid = f"{lock.name}#{len(self._lock_uids)}"
            self._lock_uids[id(lock)] = uid
        return uid

    def _enabled(self, ts: _TState) -> bool:
        if not ts.parked or ts.pending is None:
            return False
        kind, _, _, _, lock, _ = ts.pending
        if kind != "acquire":
            return True
        owner = self._owner.get(id(lock))
        return owner is None or owner is ts

    def _held_names(self, ts: _TState) -> Tuple[str, ...]:
        return tuple(self._uid(lk) for lk in self._held.get(ts, ()))

    def _dispatch(self, ts: _TState) -> None:
        ts.parked = False
        ts.go.set()
        self._back.wait()
        self._back.clear()

    def _await_all_parked(self) -> None:
        while True:
            if all(ts.done or ts.parked for ts in self.order):
                return
            self._back.wait()
            self._back.clear()

    def _abort_all(self) -> None:
        self._abort = True
        live = [ts for ts in self.order if not ts.done]
        for ts in live:
            ts.go.set()
        for ts in live:
            if ts.thread is not None:
                ts.thread.join()

    def _wait_cycle(self) -> _Deadlock:
        waiters = []
        for ts in sorted(
            (t for t in self.order if not t.done), key=lambda t: t.index
        ):
            kind, resource, _, _, lock, stack = ts.pending
            owner = self._owner.get(id(lock))
            # keyed by the lock *name*, not the per-run uid: the same
            # wait cycle found via two schedules must dedupe to one
            # finding even though first-touch uid numbering differs
            waiters.append({
                "thread": ts.name,
                "wants": lock.name,
                "owner": owner.name if owner else "?",
                "stack": stack,
                "owner_stack": self._acq_stacks.get(
                    (owner.index if owner else -1, id(lock)), "<unknown>"
                ),
            })
        return _Deadlock(waiters=waiters)

    def run(self, thread_fns: Sequence[Callable[[], None]]) -> None:
        """Execute the scenario threads under the forced schedule."""
        for ts, fn in zip(self.order, thread_fns):
            ts.thread = threading.Thread(
                target=self._thread_main, args=(ts, fn),
                name=ts.name, daemon=True,
            )
        for ts in self.order:
            ts.thread.start()
        self._await_all_parked()
        prev: Optional[_TState] = None
        steps = 0
        try:
            while True:
                live = [ts for ts in self.order if not ts.done]
                if not live:
                    break
                runnable = [ts for ts in live if self._enabled(ts)]
                if not runnable:
                    self.deadlock = self._wait_cycle()
                    self._abort_all()
                    break
                if len(runnable) > 1:
                    branch = len(self.choices)
                    if branch < len(self._forced):
                        want = self._forced[branch]
                        chosen = next(
                            (t for t in runnable if t.index == want), None
                        )
                        if chosen is None:
                            raise ExploreError(
                                f"schedule chooses T{want} at branch "
                                f"{branch}, but only "
                                f"{[t.name for t in runnable]} are runnable"
                            )
                    elif prev is not None and prev in runnable:
                        chosen = prev
                    else:
                        chosen = runnable[0]
                    self.choices.append(chosen.index)
                else:
                    branch = -1
                    chosen = runnable[0]
                if (
                    prev is not None
                    and chosen is not prev
                    and prev in runnable
                ):
                    self.preemptions += 1
                    if (
                        self._pbound is not None
                        and self.preemptions > self._pbound
                    ):
                        self.bound_exceeded = True
                        self._abort_all()
                        break
                self._record(chosen, branch, runnable)
                steps += 1
                if steps > self._max_steps:
                    self._abort_all()
                    raise ExploreError(
                        f"schedule exceeded {self._max_steps} steps; the "
                        f"scenario does not terminate under this schedule"
                    )
                self._dispatch(chosen)
                self._await_all_parked()
                prev = chosen
        finally:
            self._finished = True
            for ts in self.order:
                if ts.thread is not None:
                    ts.thread.join()
        for ts in self.order:
            if ts.error is not None:
                raise ExploreError(
                    f"thread {ts.name} raised under schedule "
                    f"{self.choices}: {ts.error!r}"
                ) from ts.error

    def _record(self, ts: _TState, branch: int, runnable: List[_TState]) -> None:
        kind, resource, key, write, lock, stack = ts.pending
        held = self._held_names(ts)
        if kind == "acquire":
            key = self._uid(lock)
            resource = key
            self._owner[id(lock)] = ts
            self._held.setdefault(ts, []).append(lock)
            self._acq_stacks[(ts.index, id(lock))] = stack
        elif kind == "release":
            key = self._uid(lock)
            resource = key
            held_list = self._held.get(ts, [])
            for i in range(len(held_list) - 1, -1, -1):
                if held_list[i] is lock:
                    del held_list[i]
                    break
            if not any(lk is lock for lk in held_list):
                self._owner.pop(id(lock), None)
        self.trace.append(Event(
            seq=len(self.trace),
            thread=ts.index,
            name=ts.name,
            kind=kind,
            resource=resource,
            key=key,
            write=write,
            held=held,
            branch=branch,
            runnable=tuple(t.index for t in runnable),
        ))

    def _thread_main(self, ts: _TState, fn: Callable[[], None]) -> None:
        self._by_ident[threading.get_ident()] = ts
        try:
            self._park(ts, ("start", f"thread:{ts.name}", "", False, None, ""))
            fn()
        except _Abort:
            pass
        except BaseException as exc:  # reported as ExploreError by run()
            ts.error = exc
        finally:
            ts.done = True
            ts.parked = False
            ts.pending = None
            self._back.set()


def access(resource: str, write: bool = False) -> None:
    """Declare one access to scenario-shared state (a yield point).

    Scenario and test code wraps its shared-state touches in this so
    the explorer sees them; outside a controlled run it costs one
    global load.  Unsynchronized conflicting pairs across threads are
    reported as UCP038.
    """
    ctl = schedpoint._CONTROLLER
    if ctl is not None:
        ctl.on_access(resource, write)


# --- dependency relation and race reversal -----------------------------


class _Dependence:
    """The dependency relation over one executed trace, by event index.

    Two events are dependent when reordering them could change the
    execution:

    * access/fs events on a common key with at least one write and
      **no common held lock** — a pair serialized by a shared lock
      cannot be reordered at the access itself, only by reversing the
      enclosing acquires, which the next clause covers;
    * same-lock acquires whose critical-section *footprints* conflict
      (both touch some resource, at least one writing) — reversing
      which thread enters the critical section first is the only
      scheduler-visible way to reorder lock-protected effects;
    * same-lock acquires where one side holds a lock the other thread
      also uses — the cross-nesting shape that can reverse into a
      wait cycle (ABBA), even when the sections share no data.

    Everything else commutes.  In particular a nesting lock private to
    one thread (each ``RangeReader``'s own IO lock around the shared
    cache lock) triggers neither acquire clause, which is what keeps
    lock-heavy IO scenarios explorable.
    """

    def __init__(self, events: Sequence[Event]) -> None:
        self.events = events
        self.locks_used: Dict[int, Set[str]] = {}
        # acquire event index -> {resource key: wrote}
        self.footprints: Dict[int, Dict[str, bool]] = {}
        open_frames: Dict[int, List[Tuple[str, int]]] = {}
        for idx, ev in enumerate(events):
            if ev.kind == "acquire":
                self.locks_used.setdefault(ev.thread, set()).add(ev.key)
                open_frames.setdefault(ev.thread, []).append((ev.key, idx))
                self.footprints[idx] = {}
            elif ev.kind == "release":
                frames = open_frames.get(ev.thread, [])
                for i in range(len(frames) - 1, -1, -1):
                    if frames[i][0] == ev.key:
                        del frames[i]
                        break
            elif ev.kind in ("access", "fs"):
                for _, acq_idx in open_frames.get(ev.thread, ()):
                    fp = self.footprints[acq_idx]
                    fp[ev.key] = fp.get(ev.key, False) or ev.write

    def __call__(self, i: int, j: int) -> bool:
        a, b = self.events[i], self.events[j]
        if a.thread == b.thread:
            return False
        if a.kind in ("access", "fs") and b.kind in ("access", "fs"):
            return (
                a.key == b.key
                and (a.write or b.write)
                and not (set(a.held) & set(b.held))
            )
        if a.kind == "acquire" and b.kind == "acquire" and a.key == b.key:
            fa = self.footprints.get(i, {})
            fb = self.footprints.get(j, {})
            for res, wrote_a in fa.items():
                wrote_b = fb.get(res)
                if wrote_b is not None and (wrote_a or wrote_b):
                    return True
            a_cross = set(a.held) & self.locks_used.get(b.thread, set())
            b_cross = set(b.held) & self.locks_used.get(a.thread, set())
            return bool(a_cross - {a.key} or b_cross - {b.key})
        return False


def _reversal_candidates(result: RunResult) -> List[Tuple[int, ...]]:
    """Forced-prefix schedules that reverse each racing pair.

    For each event ``e_j`` the latest earlier dependent event ``e_i``
    of each other thread is considered; the pair races when no
    intermediate event is dependent with both (which would order
    them).  The candidate replays the branch choices up to ``e_i``'s
    branch point and schedules ``e_j``'s thread there instead —
    possible only when it was runnable at that point.
    """
    events = result.trace
    dep = _Dependence(events)
    out: Set[Tuple[int, ...]] = set()
    for j, ej in enumerate(events):
        paired: Set[int] = set()  # threads whose latest racer is found
        for i in range(j - 1, -1, -1):
            ei = events[i]
            if ei.thread in paired or not dep(i, j):
                continue
            paired.add(ei.thread)
            ordered = False
            for k in range(i + 1, j):
                if dep(i, k) and dep(k, j):
                    ordered = True
                    break
            if ordered:
                continue
            if ei.branch >= 0 and ej.thread in ei.runnable:
                out.add(
                    tuple(result.choices[:ei.branch]) + (ej.thread,)
                )
    return sorted(out)


def _fs_write(kind: str) -> bool:
    return kind.split(":", 1)[0] in ("write", "rename", "unlink")


def _hb_races(trace: List[Event]) -> List[Tuple]:
    """Unsynchronized conflicting access pairs in one executed schedule.

    Happens-before at yield-point granularity: program order plus
    lock release -> acquire hand-offs.  Two access/fs events on one
    key from different threads with at least one write, no common held
    lock, and vector-clock-concurrent are a UCP038 pair.
    """
    clocks: Dict[int, Dict[int, int]] = {}
    release_clock: Dict[str, Dict[int, int]] = {}
    last: Dict[str, Dict[int, Tuple[Dict[int, int], frozenset, Event]]] = {}
    races: List[Tuple] = []
    for ev in trace:
        clock = clocks.setdefault(ev.thread, {})
        clock[ev.thread] = clock.get(ev.thread, 0) + 1
        if ev.kind == "acquire":
            handoff = release_clock.get(ev.key)
            if handoff:
                for t, count in handoff.items():
                    if count > clock.get(t, 0):
                        clock[t] = count
        elif ev.kind == "release":
            release_clock[ev.key] = dict(clock)
        elif ev.kind in ("access", "fs"):
            write = ev.write
            held = frozenset(ev.held)
            for other, (oclock, oheld, oev) in last.get(ev.key, {}).items():
                if other == ev.thread:
                    continue
                if not (write or oev.write):
                    continue
                if held & oheld:
                    continue
                if clock_lte(oclock, clock) or clock_lte(clock, oclock):
                    continue
                races.append((ev.key, oev, ev))
            last.setdefault(ev.key, {})[ev.thread] = (
                dict(clock), held, ev
            )
    return races


# --- scenarios ---------------------------------------------------------


class RunCase:
    """One fresh execution of a scenario: thread bodies + fingerprint."""

    def __init__(
        self,
        threads: Sequence[Callable[[], None]],
        fingerprint: Optional[Callable[[], str]] = None,
        cleanup: Optional[Callable[[], None]] = None,
    ) -> None:
        if len(threads) < 2:
            raise ExploreError("a scenario needs at least two threads")
        self.threads = list(threads)
        self._fingerprint = fingerprint
        self._cleanup = cleanup

    def fingerprint(self) -> str:
        """Digest of the run's observable output (schedule-invariant)."""
        return self._fingerprint() if self._fingerprint else ""

    def cleanup(self) -> None:
        """Release per-run state after the schedule finishes."""
        if self._cleanup is not None:
            self._cleanup()


class Scenario:
    """A named, reproducible concurrency scenario.

    ``fresh()`` must return a :class:`RunCase` over *identical* initial
    state every time it is called — the explorer executes it once per
    schedule and compares fingerprints across runs.
    """

    name = "scenario"
    description = ""

    def fresh(self) -> RunCase:
        """Build one run over identical initial state (called per schedule)."""
        raise NotImplementedError


class _FnScenario(Scenario):
    def __init__(self, name: str, fresh: Callable[[], RunCase], description: str = "") -> None:
        self.name = name
        self.description = description
        self._fresh = fresh

    def fresh(self) -> RunCase:
        return self._fresh()


def scenario(
    name: str, fresh: Callable[[], RunCase], description: str = ""
) -> Scenario:
    """Build a scenario from a ``fresh()`` factory (test/CLI helper)."""
    return _FnScenario(name, fresh, description)


def _blob(seed: int, tag: str, nbytes: int) -> bytes:
    """Deterministic pseudo-random payload (no RNG state involved)."""
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        out += hashlib.sha256(f"{seed}:{tag}:{counter}".encode()).digest()
        counter += 1
    return bytes(out[:nbytes])


SCENARIOS: Dict[str, str] = {
    "blockcache": (
        "two readers share one BlockCache over overlapping ranges of "
        "two files; invariant: every byte read is schedule-independent"
    ),
    "convert-verify": (
        "the distilled hub shape: a convert thread streams planned "
        "ranges through a shared BlockCache and publishes an atom "
        "while a verify thread digests the same source file through "
        "the same cache; invariant: output and digest match the "
        "serial run byte-for-byte"
    ),
    "convert-w2": (
        "two convert tenants (w2) stream the same source through one "
        "shared BlockCache into separate output stores — the "
        "multi-tenant hub under eviction pressure"
    ),
    "inmemory": (
        "InMemoryCheckpoint commit racing recover on one engine; "
        "invariant: recovery sees a complete replica map, never a "
        "torn one"
    ),
}
"""Registry names -> one-line descriptions (``repro explore --list``)."""


def build_scenario(name: str, seed: int = 0, root: Optional[str] = None) -> Scenario:
    """Instantiate a registry scenario.

    ``root`` is a directory for the scenario's on-disk stores; the
    caller owns its lifetime (the CLI uses a temp dir).  Expensive
    shared state (source files, engines) is built once here —
    *outside* any controlled run — and ``fresh()`` only rebuilds the
    cheap per-run state (caches, readers, outputs).
    """
    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise ExploreError(f"unknown scenario {name!r} (known: {known})")
    if root is None:
        root = tempfile.mkdtemp(prefix=f"interleave-{name}-")
    builder = {
        "blockcache": _build_blockcache,
        "convert-verify": _build_convert_verify,
        "convert-w2": _build_convert_w2,
        "inmemory": _build_inmemory,
    }[name]
    return builder(seed, root)


def _build_blockcache(seed: int, root: str) -> Scenario:
    from repro.storage.rangeio import BlockCache, RangeReader
    from repro.storage.store import ObjectStore

    store = ObjectStore(os.path.join(root, "src"), durable=False)
    store.put_bytes("a.bin", _blob(seed, "a", 2048))
    store.put_bytes("b.bin", _blob(seed, "b", 1024))

    def fresh() -> RunCase:
        cache = BlockCache(4096)
        readers = [
            RangeReader(store, cache=cache, window_bytes=1024)
            for _ in range(2)
        ]
        out: Dict[str, str] = {}

        def t0() -> None:
            out["T0"] = hashlib.sha256(
                bytes(readers[0].read("a.bin", 0, 1500))
            ).hexdigest()

        def t1() -> None:
            out["T1"] = hashlib.sha256(
                bytes(readers[1].read("a.bin", 512, 1536))
            ).hexdigest()

        def fingerprint() -> str:
            return json.dumps(out, sort_keys=True)

        return RunCase([t0, t1], fingerprint)

    return scenario("blockcache", fresh, SCENARIOS["blockcache"])


def _convert_thread(reader, plan, dst, rel: str) -> Callable[[], None]:
    """The distilled streamed-convert IO kernel: read planned ranges
    through the shared cache, assemble, publish one output object."""

    def run() -> None:
        views = reader.read_multi(rel, plan)
        dst.put_bytes("atom.bin", b"".join(bytes(v) for v in views))

    return run


def _build_convert_verify(seed: int, root: str) -> Scenario:
    from repro.storage.rangeio import BlockCache, RangeReader
    from repro.storage.store import ObjectStore

    src = ObjectStore(os.path.join(root, "src"), durable=False)
    src.put_bytes("rank0.bin", _blob(seed, "rank0", 2048))
    dst = ObjectStore(os.path.join(root, "out"), durable=False)
    plan = [(0, 1024), (1536, 512)]

    def fresh() -> RunCase:
        cache = BlockCache(1 << 15)
        conv_reader = RangeReader(src, cache=cache, window_bytes=1024)
        verify_reader = RangeReader(src, cache=cache, window_bytes=1024)
        digests: Dict[str, str] = {}

        def verify() -> None:
            digests["verify"] = verify_reader.digest("rank0.bin")

        def fingerprint() -> str:
            atom = hashlib.sha256(dst.read_bytes("atom.bin")).hexdigest()
            return json.dumps(
                {"atom": atom, **digests}, sort_keys=True
            )

        return RunCase(
            [_convert_thread(conv_reader, plan, dst, "rank0.bin"), verify],
            fingerprint,
        )

    return scenario("convert-verify", fresh, SCENARIOS["convert-verify"])


def _build_convert_w2(seed: int, root: str) -> Scenario:
    from repro.storage.rangeio import BlockCache, RangeReader
    from repro.storage.store import ObjectStore

    src = ObjectStore(os.path.join(root, "src"), durable=False)
    src.put_bytes("rank0.bin", _blob(seed, "rank0", 4096))
    outs = [
        ObjectStore(os.path.join(root, f"out{i}"), durable=False)
        for i in range(2)
    ]
    plans = [
        [(0, 1024), (2048, 1024)],
        [(1024, 1024), (3072, 1024)],
    ]

    def fresh() -> RunCase:
        cache = BlockCache(2048)  # smaller than the file: eviction churn
        readers = [
            RangeReader(src, cache=cache, window_bytes=1024)
            for _ in range(2)
        ]

        def fingerprint() -> str:
            return json.dumps({
                f"out{i}": hashlib.sha256(
                    outs[i].read_bytes("atom.bin")
                ).hexdigest()
                for i in range(2)
            }, sort_keys=True)

        return RunCase(
            [
                _convert_thread(readers[0], plans[0], outs[0], "rank0.bin"),
                _convert_thread(readers[1], plans[1], outs[1], "rank0.bin"),
            ],
            fingerprint,
        )

    return scenario("convert-w2", fresh, SCENARIOS["convert-w2"])


def _build_inmemory(seed: int, root: str) -> Scenario:
    import dataclasses as _dc

    from repro.ckpt.inmemory import InMemoryCheckpoint
    from repro.dist.topology import ParallelConfig
    from repro.models import get_config
    from repro.parallel.engine import TrainingEngine

    cfg = _dc.replace(get_config("gpt3-mini"), num_layers=1)
    engine = TrainingEngine(
        cfg,
        ParallelConfig(tp=1, dp=2, zero_stage=1),
        seed=seed + 1,
        global_batch_size=2,
        seq_len=8,
    )
    engine.train(1)
    ckpt = InMemoryCheckpoint(engine, replication_factor=1)
    ckpt.commit()

    def fresh() -> RunCase:
        recovered: Dict[str, int] = {}

        def committer() -> None:
            ckpt.commit()

        def recoverer() -> None:
            recovered["iteration"] = ckpt.recover(set())

        def fingerprint() -> str:
            return json.dumps({
                "recovered": recovered.get("iteration"),
                "committed": ckpt.iteration,
                "engine": engine.iteration,
            }, sort_keys=True)

        return RunCase([committer, recoverer], fingerprint)

    return scenario("inmemory", fresh, SCENARIOS["inmemory"])


# --- one controlled execution ------------------------------------------


def run_schedule(
    case: RunCase,
    forced: Sequence[int] = (),
    preemption_bound: Optional[int] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> RunResult:
    """Execute one :class:`RunCase` under a forced branch schedule.

    The run is wrapped in its own non-strict lock witness, FS-op
    recorder, and memory sanitizer, so "witness and sanitizer clean"
    is checked per schedule and findings are *collected*, never raised
    mid-run.
    """
    from repro.analysis import fswitness as _fswitness
    from repro.analysis import sanitizer as _sanitizer

    ctl = Controller(
        len(case.threads), forced, preemption_bound, max_steps
    )
    try:
        with _sanitizer.sanitize(
            strict=False, subject="interleave"
        ) as san:
            with _lockwitness.lockcheck(
                strict=False, subject="interleave"
            ) as witness:
                with _fswitness.fstrace(capture_data=False):
                    schedpoint.install(ctl)
                    try:
                        ctl.run(case.threads)
                    finally:
                        schedpoint.uninstall(ctl)
        fingerprint = None
        if ctl.deadlock is None and not ctl.bound_exceeded:
            fingerprint = case.fingerprint()
        return RunResult(
            choices=list(ctl.choices),
            trace=list(ctl.trace),
            deadlock=ctl.deadlock,
            fingerprint=fingerprint,
            preemptions=ctl.preemptions,
            bound_exceeded=ctl.bound_exceeded,
            witness_errors=list(witness.report.errors),
            sanitizer_errors=list(san.report.errors),
        )
    finally:
        case.cleanup()


# --- the explorer ------------------------------------------------------


@dataclasses.dataclass
class ExploreReport:
    """The deterministic outcome of one exploration."""

    scenario: str
    seed: int
    schedule_cap: int
    preemption_bound: Optional[int]
    schedules_run: int = 0
    shrink_runs: int = 0
    preemption_skipped: int = 0
    pending_unexplored: int = 0
    max_trace_steps: int = 0
    replayed: Optional[List[int]] = None
    exhaustive: bool = False
    report: LintReport = dataclasses.field(
        default_factory=lambda: LintReport(subject="interleave")
    )
    counterexamples: List[Dict] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.report.ok

    def to_dict(self) -> Dict:
        """The full report as a JSON-ready dict (stable key order)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "schedule_cap": self.schedule_cap,
            "preemption_bound": self.preemption_bound,
            "schedules_run": self.schedules_run,
            "shrink_runs": self.shrink_runs,
            "preemption_skipped": self.preemption_skipped,
            "pending_unexplored": self.pending_unexplored,
            "max_trace_steps": self.max_trace_steps,
            "replayed": self.replayed,
            "exhaustive": self.exhaustive,
            "counterexamples": self.counterexamples,
            "report": self.report.to_dict(),
        }

    def to_json(self) -> str:
        """Byte-stable JSON (one seed + schedule -> identical bytes)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        """Human-readable summary: counts, exhaustiveness, findings."""
        lines = [
            f"explore {self.scenario}: "
            f"{self.schedules_run} schedules "
            f"({self.shrink_runs} shrink runs, "
            f"{self.preemption_skipped} over the preemption bound, "
            f"{self.pending_unexplored} unexplored), "
            f"{'exhaustive' if self.exhaustive else 'bounded'}",
        ]
        lines.append(self.report.render_text())
        for cx in self.counterexamples:
            lines.append(
                f"  minimal schedule [{cx['rule']}]: "
                f"{json.dumps(cx['schedule'])}"
            )
        return "\n".join(lines)


def _trace_rows(trace: List[Event]) -> List[List]:
    rows = [ev.to_row() for ev in trace[:_TRACE_LIMIT]]
    if len(trace) > _TRACE_LIMIT:
        rows.append([len(trace), "...", "truncated", "", "r", []])
    return rows


class _Explorer:
    def __init__(
        self,
        scen: Scenario,
        schedule_cap: int,
        preemption_bound: Optional[int],
        max_steps: int,
        shrink_budget: int,
        seed: int,
    ) -> None:
        self.scen = scen
        self.out = ExploreReport(
            scenario=scen.name,
            seed=seed,
            schedule_cap=schedule_cap,
            preemption_bound=preemption_bound,
        )
        self.max_steps = max_steps
        self.shrink_budget = shrink_budget
        self.ref_fp: Optional[str] = None
        self.ref_trace: List[Event] = []
        self._seen_races: Set[Tuple] = set()
        self._seen_cycles: Set[frozenset] = set()
        self._seen_fps: Set[str] = set()
        self._seen_diags: Set[Tuple[str, str]] = set()

    # --- execution plumbing ------------------------------------------

    def _run(self, forced: Sequence[int], shrink: bool = False) -> RunResult:
        result = run_schedule(
            self.scen.fresh(),
            forced,
            preemption_bound=self.out.preemption_bound,
            max_steps=self.max_steps,
        )
        if shrink:
            self.out.shrink_runs += 1
        elif result.bound_exceeded:
            self.out.preemption_skipped += 1
        else:
            self.out.schedules_run += 1
        self.out.max_trace_steps = max(
            self.out.max_trace_steps, len(result.trace)
        )
        return result

    def _add(self, diag: Diagnostic) -> None:
        key = (diag.rule_id, diag.location)
        if key in self._seen_diags:
            return
        self._seen_diags.add(key)
        self.out.report.add(diag)

    # --- per-run analysis --------------------------------------------

    def _analyze(self, result: RunResult) -> None:
        for diag in result.witness_errors + result.sanitizer_errors:
            self._add(dataclasses.replace(
                diag,
                location=f"{self.scen.name}/{diag.location}",
            ))
        for key, older, newer in _hb_races(result.trace):
            pair_key = (key, frozenset((older.name, newer.name)))
            if pair_key in self._seen_races:
                continue
            self._seen_races.add(pair_key)
            self._add(error(
                "UCP038",
                f"conflicting unsynchronized access pair on {key}: "
                f"thread {older.name!r} "
                f"({'write' if older.write else 'read'}, step "
                f"{older.seq}) and thread {newer.name!r} "
                f"({'write' if newer.write else 'read'}, step "
                f"{newer.seq}) touched it with no common lock held and "
                f"no happens-before edge between them at yield-point "
                f"granularity",
                location=f"{self.scen.name}/{key}",
            ))
        if result.deadlock is not None:
            self._report_deadlock(result)
        elif (
            self.ref_fp is not None
            and result.fingerprint is not None
            and result.fingerprint != self.ref_fp
        ):
            self._report_divergence(result)

    def _shrink(
        self,
        choices: Sequence[int],
        still_fails: Callable[[RunResult], bool],
    ) -> Tuple[List[int], RunResult]:
        """Delta-shrink a failing schedule to a minimal counterexample.

        Phase 1 binary-searches the shortest failing prefix (the
        continue-policy suffix fills in the rest); phase 2 drops
        individual choices back-to-front.  Every trial costs one run
        from the shrink budget; the returned schedule always re-fails.
        """
        budget = self.shrink_budget
        best = list(choices)
        best_result: Optional[RunResult] = None

        def fails(prefix: List[int]) -> Optional[RunResult]:
            nonlocal budget
            if budget <= 0:
                return None
            budget -= 1
            result = self._run(prefix, shrink=True)
            return result if still_fails(result) else None

        lo, hi = 0, len(best)
        while lo < hi:
            mid = (lo + hi) // 2
            result = fails(best[:mid])
            if result is not None:
                hi = mid
                best = list(result.choices[:mid])
                best_result = result
            else:
                lo = mid + 1
        best = best[:hi]
        i = len(best) - 1
        while i >= 0:
            trial = best[:i] + best[i + 1:]
            result = fails(trial)
            if result is not None:
                best = trial
                best_result = result
            i -= 1
        if best_result is None:
            best_result = self._run(best, shrink=True)
        return best, best_result

    def _report_deadlock(self, result: RunResult) -> None:
        minimal, shrunk = self._shrink(
            result.choices, lambda r: r.deadlock is not None
        )
        deadlock = shrunk.deadlock or result.deadlock
        cycle_key = deadlock.cycle_key()
        if cycle_key in self._seen_cycles:
            return
        self._seen_cycles.add(cycle_key)
        threads = "+".join(sorted(w["thread"] for w in deadlock.waiters))
        self.out.counterexamples.append({
            "rule": "UCP037",
            "schedule": list(minimal),
            "trace": _trace_rows(shrunk.trace),
            "reference_trace": _trace_rows(self.ref_trace),
        })
        self._add(error(
            "UCP037",
            f"deadlock schedule in scenario {self.scen.name!r}: all "
            f"threads blocked — {deadlock.describe()}; minimal schedule "
            f"{json.dumps(list(minimal))} (replay with `repro explore "
            f"{self.scen.name} --schedule FILE`)",
            location=f"{self.scen.name}/deadlock/{threads}",
        ))

    def _report_divergence(self, result: RunResult) -> None:
        fp = result.fingerprint
        if fp in self._seen_fps:
            return
        self._seen_fps.add(fp)

        def diverges(r: RunResult) -> bool:
            return (
                r.deadlock is None
                and r.fingerprint is not None
                and r.fingerprint != self.ref_fp
            )

        minimal, shrunk = self._shrink(result.choices, diverges)
        got = shrunk.fingerprint or fp
        self.out.counterexamples.append({
            "rule": "UCP036",
            "schedule": list(minimal),
            "fingerprint": got,
            "reference_fingerprint": self.ref_fp,
            "trace": _trace_rows(shrunk.trace),
            "reference_trace": _trace_rows(self.ref_trace),
        })
        self._add(error(
            "UCP036",
            f"schedule-dependent output divergence in scenario "
            f"{self.scen.name!r}: schedule {json.dumps(list(minimal))} "
            f"produced fingerprint {_short(got)} where the serial "
            f"reference produced {_short(self.ref_fp)}; both yield "
            f"traces are attached to the counterexample, and the "
            f"minimal schedule replays with `repro explore "
            f"{self.scen.name} --schedule FILE`",
            location=f"{self.scen.name}/divergence/{_short(got)}",
        ))

    # --- the DFS loop ------------------------------------------------

    def explore(self) -> ExploreReport:
        ref = self._run(())
        self.ref_fp = ref.fingerprint
        self.ref_trace = ref.trace
        self._analyze(ref)
        stack: List[Tuple[int, ...]] = []
        seen_prefix: Set[Tuple[int, ...]] = {tuple(ref.choices)}
        executed: Set[Tuple[int, ...]] = {tuple(ref.choices)}
        for cand in sorted(_reversal_candidates(ref), reverse=True):
            if cand not in seen_prefix:
                seen_prefix.add(cand)
                stack.append(cand)
        total = 1
        while stack:
            if total >= self.out.schedule_cap:
                break
            prefix = stack.pop()
            result = self._run(prefix)
            total += 1
            if result.bound_exceeded:
                continue
            full = tuple(result.choices)
            if full in executed:
                continue
            executed.add(full)
            self._analyze(result)
            for cand in sorted(_reversal_candidates(result), reverse=True):
                if cand not in seen_prefix:
                    seen_prefix.add(cand)
                    stack.append(cand)
        self.out.pending_unexplored = len(stack)
        capped = bool(stack)
        self.out.exhaustive = (
            not capped and self.out.preemption_skipped == 0
        )
        if capped or self.out.preemption_skipped:
            reasons = []
            if capped:
                reasons.append(
                    f"schedule cap {self.out.schedule_cap} hit with "
                    f"{len(stack)} candidate schedules unexplored"
                )
            if self.out.preemption_skipped:
                reasons.append(
                    f"{self.out.preemption_skipped} schedules exceeded "
                    f"the preemption bound {self.out.preemption_bound}"
                )
            self._add(warning(
                "UCP039",
                f"bounded exploration of scenario {self.scen.name!r}: "
                + "; ".join(reasons)
                + f" — {self.out.schedules_run} schedules were checked, "
                f"but absence of findings is not exhaustive proof",
                location=f"{self.scen.name}/bounded",
            ))
        return self.out

    def replay(self, forced: Sequence[int]) -> ExploreReport:
        ref = self._run(())
        self.ref_fp = ref.fingerprint
        self.ref_trace = ref.trace
        result = self._run(forced)
        self.out.replayed = list(forced)
        if result.bound_exceeded:
            raise ExploreError(
                f"replayed schedule exceeds the preemption bound "
                f"{self.out.preemption_bound}"
            )
        self._analyze(result)
        self.out.exhaustive = False
        return self.out


def _short(fp: Optional[str]) -> str:
    if not fp:
        return "<none>"
    digest = hashlib.sha256(fp.encode()).hexdigest()[:12]
    return f"sha256:{digest}"


def explore(
    scen,
    schedules: int = DEFAULT_SCHEDULE_CAP,
    preemptions: Optional[int] = None,
    schedule: Optional[Sequence[int]] = None,
    seed: int = 0,
    max_steps: int = DEFAULT_MAX_STEPS,
    shrink_budget: int = DEFAULT_SHRINK_BUDGET,
) -> ExploreReport:
    """Explore (or replay) a scenario's schedule space.

    Args:
        scen: a :class:`Scenario`, or a registry name from
            :data:`SCENARIOS` (built in a private temp directory).
        schedules: executed-schedule cap; hitting it reports UCP039.
        preemptions: preemption bound (``None`` = unbounded).  Runs
            that exceed it are cancelled and counted, and their count
            reports UCP039.
        schedule: exact branch-choice list to replay instead of
            exploring (the ``--schedule FILE`` path).  The serial
            reference still runs first so divergence is checkable.
        seed: forwarded to registry scenario construction.
        max_steps: per-run step budget (non-termination guard).
        shrink_budget: extra runs the delta-shrinker may spend per
            counterexample.
    """
    cleanup_dir: Optional[tempfile.TemporaryDirectory] = None
    if isinstance(scen, str):
        cleanup_dir = tempfile.TemporaryDirectory(
            prefix=f"interleave-{scen}-"
        )
        scen = build_scenario(scen, seed=seed, root=cleanup_dir.name)
    try:
        explorer = _Explorer(
            scen,
            schedule_cap=schedules,
            preemption_bound=preemptions,
            max_steps=max_steps,
            shrink_budget=shrink_budget,
            seed=seed,
        )
        if schedule is not None:
            return explorer.replay([int(c) for c in schedule])
        return explorer.explore()
    finally:
        if cleanup_dir is not None:
            cleanup_dir.cleanup()


def load_schedule(text: str) -> List[int]:
    """Parse a ``--schedule`` file: a bare JSON list, an object with a
    ``"schedule"`` key, or a full :class:`ExploreReport` JSON (the
    first counterexample's minimal schedule is taken)."""
    payload = json.loads(text)
    if isinstance(payload, list):
        return [int(c) for c in payload]
    if isinstance(payload, dict):
        if isinstance(payload.get("schedule"), list):
            return [int(c) for c in payload["schedule"]]
        counterexamples = payload.get("counterexamples")
        if counterexamples:
            return [int(c) for c in counterexamples[0]["schedule"]]
    raise ExploreError(
        "schedule file must be a JSON list, an object with a "
        "'schedule' key, or an ExploreReport with counterexamples"
    )
