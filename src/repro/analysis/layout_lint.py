"""Static checkpoint-layout linter.

From a ``(ModelConfig, ParallelConfig)`` pair the linter symbolically
derives every rank's expected checkpoint contents — atom names, shard
shapes, padded flat-partition extents, segment tables — via
:class:`repro.parallel.layout.ModelParallelLayout`, then diffs that
against what a tag actually recorded: its commit manifest and the
*headers* of its rank files.  Tensor payloads are never read (rank
files are decoded via :func:`ObjectStore.load_header`, so flat arrays
surface as :class:`~repro.storage.serializer.TensorStub` shapes), which
is what makes linting a multi-terabyte checkpoint cost kilobytes of IO.

Findings carry the stable rule IDs from
:data:`repro.analysis.diagnostics.RULES`; ``repro lint-ckpt`` renders
them as text or JSON and CI gates on error severity.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, LintReport, error, warning
from repro.ckpt import manifest as manifest_mod
from repro.ckpt import naming
from repro.ckpt.errors import CheckpointIntegrityError, CheckpointNotFoundError
from repro.ckpt.loader import resolve_tag
from repro.core.atom import ATOM_META_FILE, ATOMS_DIR, AtomStore
from repro.core.errors import UCPError
from repro.core.metadata import UCP_META_FILE, UCPMetadata
from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.parallel.layout import ModelParallelLayout, RankShardLayout
from repro.storage.serializer import SerializationError
from repro.storage.store import ObjectStore

_OPTIM_RE = re.compile(r"^zero_dp_rank_(\d+)_mp_rank_(\d+)_optim_states\.npt$")
_MODEL_RE = re.compile(r"^mp_rank_(\d+)_model_states\.npt$")
_ZERO3_RE = re.compile(r"^zero3_dp_rank_(\d+)_model_states\.npt$")

_FLAT_FIELDS = (
    "fp32_flat_partition",
    "exp_avg_flat_partition",
    "exp_avg_sq_flat_partition",
)


def expected_tag_basenames(
    parallel_cfg: ParallelConfig,
    layout: ModelParallelLayout,
    optimizer_layout: str = "flat",
) -> Set[str]:
    """Every data-file basename a complete save of this config writes.

    The symbolic twin of :func:`repro.ckpt.saver.
    save_distributed_checkpoint`: derived from the configs alone, never
    from the directory being linted.
    """
    names: Set[str] = {naming.JOB_CONFIG_FILE}
    for coord in layout.mp_coords():
        mp_rank = layout.mp_rank_index(*coord)
        if parallel_cfg.zero_stage < 3:
            names.add(naming.model_states_name(mp_rank))
        else:
            for d in range(parallel_cfg.dp):
                names.add(naming.zero3_model_states_name(d))
        if optimizer_layout == "per_param":
            names.add(naming.optim_states_name(0, mp_rank))
        else:
            dp_ranks = [0] if parallel_cfg.zero_stage == 0 else range(parallel_cfg.dp)
            for d in dp_ranks:
                names.add(naming.optim_states_name(d, mp_rank))
    return names


def crosscheck_manifest(
    store: ObjectStore, tag: str, manifest: Dict, deep: bool = False
) -> List[Diagnostic]:
    """Diff a tag's commit manifest against the files actually on disk.

    The single implementation of the manifest cross-check: the layout
    linter, ``repro verify --shallow``, and the converter's pre-flight
    all call this instead of re-deriving presence/size/digest logic.

    Args:
        store: checkpoint-root store.
        tag: the committed tag.
        manifest: its manifest payload (``read_manifest`` result).
        deep: also recompute each file's SHA-256 (shallow mode checks
            presence and size only — header-cost, not payload-cost).
    """
    out: List[Diagnostic] = []
    for basename in sorted(manifest["files"]):
        rel = f"{tag}/{basename}"
        entry = manifest["files"][basename]
        if not store.exists(rel):
            out.append(error(
                "UCP008",
                "recorded in the commit manifest but absent on disk",
                location=rel,
            ))
            continue
        nbytes = (store.base / rel).stat().st_size
        if nbytes != int(entry["nbytes"]):
            out.append(error(
                "UCP010",
                f"size mismatch: manifest records {entry['nbytes']} bytes, "
                f"found {nbytes}",
                location=rel,
            ))
        elif deep and store.digest(rel) != entry["sha256"]:
            out.append(error(
                "UCP010",
                "sha256 digest mismatch vs commit manifest",
                location=rel,
            ))
    for rel in store.list(tag):
        basename = rel.split("/")[-1]
        if basename in (naming.MANIFEST_FILE, naming.TRACE_FILE):
            # the collective-trace sidecar is a debug artifact written
            # after the commit point, deliberately outside the manifest
            continue
        if basename not in manifest["files"]:
            out.append(warning(
                "UCP009",
                "on disk but not recorded in the commit manifest",
                location=rel,
            ))
    return out


def _mp_coords_of(mp_rank: int, cfg: ParallelConfig) -> Tuple[int, int, int]:
    """Inverse of ``ModelParallelLayout.mp_rank_index``."""
    per_stage = cfg.sp * cfg.tp
    pp_stage = mp_rank // per_stage
    rem = mp_rank % per_stage
    return pp_stage, rem // cfg.tp, rem % cfg.tp


def _lint_optim_header(
    payload: Dict,
    rank_layout: RankShardLayout,
    parallel_cfg: ParallelConfig,
    dp_rank: int,
    rel: str,
) -> List[Diagnostic]:
    """Diff one optimizer-state file's header against the derived layout."""
    if "param_states" in payload:
        return _lint_per_param_header(payload, rank_layout, rel)
    out: List[Diagnostic] = []
    meta = payload.get("partition_meta")
    if meta is None:
        return [error("UCP013", "rank file header has no partition_meta", rel)]

    expected_partition = (
        rank_layout.flat_numel
        if parallel_cfg.zero_stage == 0
        else rank_layout.partition_numel
    )
    for key, derived in (
        ("partition_numel", expected_partition),
        ("flat_numel", rank_layout.flat_numel),
        ("alignment", rank_layout.alignment),
    ):
        recorded = int(meta.get(key, -1))
        if recorded != derived:
            out.append(error(
                "UCP011",
                f"{key} recorded as {recorded}; layout derives {derived}",
                location=rel,
            ))
    recorded_pad = int(meta.get("padding", -1))
    if recorded_pad != rank_layout.padding:
        out.append(error(
            "UCP003",
            f"alignment padding recorded as {recorded_pad}; layout derives "
            f"{rank_layout.padding} (payload {rank_layout.payload_numel}, "
            f"flat {rank_layout.flat_numel})",
            location=rel,
        ))

    recorded_segments = {
        seg["name"]: seg for seg in meta.get("segments", [])
    }
    derived_entries = {e.name: e for e in rank_layout.entries}
    for name in sorted(set(derived_entries) - set(recorded_segments)):
        out.append(error(
            "UCP001",
            f"parameter {name!r} is owned by this rank per the layout but "
            f"missing from the file's segment table",
            location=rel,
        ))
    for name in sorted(set(recorded_segments) - set(derived_entries)):
        out.append(warning(
            "UCP002",
            f"segment {name!r} recorded in the file but not derivable from "
            f"the job's (model, parallel) configs",
            location=rel,
        ))
    for name in sorted(set(recorded_segments) & set(derived_entries)):
        seg, entry = recorded_segments[name], derived_entries[name]
        recorded = (
            int(seg["offset"]), int(seg["numel"]), tuple(seg["shard_shape"])
        )
        derived = (entry.offset, entry.numel, tuple(entry.shard_shape))
        if recorded != derived:
            out.append(error(
                "UCP004",
                f"segment {name!r} recorded as offset={recorded[0]} "
                f"numel={recorded[1]} shape={recorded[2]}; layout derives "
                f"offset={derived[0]} numel={derived[1]} shape={derived[2]}",
                location=rel,
            ))

    # the flat arrays themselves, by header shape only (TensorStub)
    for field in _FLAT_FIELDS:
        stub = payload.get(field)
        if stub is None:
            out.append(error(
                "UCP001", f"flat array {field!r} missing from rank file", rel
            ))
            continue
        numel = 1
        for d in getattr(stub, "shape", ()):
            numel *= d
        if numel != expected_partition:
            out.append(error(
                "UCP011",
                f"{field} holds {numel} elements; layout derives "
                f"{expected_partition} for dp_rank {dp_rank}",
                location=rel,
            ))
    return out


def _lint_per_param_header(
    payload: Dict, rank_layout: RankShardLayout, rel: str
) -> List[Diagnostic]:
    """Megatron-classic per-parameter files: names and shard shapes."""
    out: List[Diagnostic] = []
    derived = {e.name: e for e in rank_layout.entries}
    for kind, states in payload["param_states"].items():
        for name in sorted(set(derived) - set(states)):
            out.append(error(
                "UCP001",
                f"parameter {name!r} ({kind}) owned by this rank per the "
                f"layout but absent from param_states",
                location=rel,
            ))
        for name in sorted(set(states) - set(derived)):
            out.append(warning(
                "UCP002",
                f"param_states entry {name!r} ({kind}) not derivable from "
                f"the job's configs",
                location=rel,
            ))
        for name in sorted(set(states) & set(derived)):
            shape = tuple(getattr(states[name], "shape", ()))
            if shape != tuple(derived[name].shard_shape):
                out.append(error(
                    "UCP004",
                    f"{name!r} ({kind}) stored with shape {shape}; layout "
                    f"derives shard shape {tuple(derived[name].shard_shape)}",
                    location=rel,
                ))
    return out


def lint_checkpoint(
    directory: str,
    tag: Optional[str] = None,
    store: Optional[ObjectStore] = None,
    deep: bool = False,
) -> LintReport:
    """Statically lint a checkpoint directory (distributed or UCP).

    Never materializes tensors: the manifest, job config, and rank-file
    *headers* are the only inputs.  A UCP directory (``ucp_meta.npt``
    present) is linted atom-by-atom against its own metadata and the
    layout derived from its model config.

    Args:
        directory: checkpoint root (distributed) or UCP directory.
        tag: distributed tag to lint; defaults to ``latest``.
        store: optional pre-built store (shares accounting).
        deep: recompute file digests during the manifest cross-check.

    Raises:
        CheckpointNotFoundError: the directory or tag does not exist.
    """
    if store is None:
        store = ObjectStore(directory)
    if store.exists(UCP_META_FILE):
        return _lint_ucp(store)

    src_tag = resolve_tag(store, tag)
    if not (store.base / src_tag).is_dir():
        raise CheckpointNotFoundError(f"no tag {src_tag!r} under {directory}")
    report = LintReport(subject=f"{directory}/{src_tag}")

    try:
        manifest = manifest_mod.read_manifest(store, src_tag)
    except CheckpointIntegrityError as exc:
        report.add(error("UCP016", f"commit manifest unreadable: {exc}",
                         location=manifest_mod.manifest_path(src_tag)))
        manifest = None
    if manifest is None:
        if not report.diagnostics:
            report.add(error(
                "UCP016",
                "tag has no commit manifest: the save that produced it "
                "never completed, or predates the commit protocol",
                location=src_tag,
            ))
        on_disk = {
            rel.split("/")[-1] for rel in store.list(src_tag)
            if rel.split("/")[-1] != naming.MANIFEST_FILE
        }
    else:
        report.extend(crosscheck_manifest(store, src_tag, manifest, deep=deep))
        on_disk = set(manifest["files"])

    job_rel = f"{src_tag}/{naming.JOB_CONFIG_FILE}"
    if not store.exists(job_rel):
        report.add(error(
            "UCP008", "job_config.npt missing; cannot derive the layout",
            location=job_rel,
        ))
        return report
    try:
        job = store.load(job_rel)
        model_cfg = ModelConfig.from_dict(job["model_config"])
        parallel_cfg = ParallelConfig.from_dict(job["parallel_config"])
    except (SerializationError, UCPError, KeyError, ValueError) as exc:
        report.add(error("UCP013", f"job config unreadable: {exc}", job_rel))
        return report
    optimizer_layout = job.get("optimizer_layout", "flat")

    try:
        layout = ModelParallelLayout(model_cfg, parallel_cfg)
    except ValueError as exc:
        report.add(error(
            "UCP007",
            f"layout underivable for {parallel_cfg.describe()}: {exc}",
            location=src_tag,
        ))
        return report
    report.extend(layout.tiling_diagnostics())

    expected = expected_tag_basenames(parallel_cfg, layout, optimizer_layout)
    for basename in sorted(expected - on_disk):
        report.add(error(
            "UCP008",
            f"layout derives rank file {basename!r} for "
            f"{parallel_cfg.describe()} but the tag does not record it",
            location=f"{src_tag}/{basename}",
        ))
    for basename in sorted(on_disk - expected):
        if _OPTIM_RE.match(basename) or _MODEL_RE.match(basename) \
                or _ZERO3_RE.match(basename):
            report.add(warning(
                "UCP009",
                f"rank file not derivable from the job's "
                f"{parallel_cfg.describe()} layout",
                location=f"{src_tag}/{basename}",
            ))

    mp_size = parallel_cfg.pp * parallel_cfg.sp * parallel_cfg.tp
    for basename in sorted(expected & on_disk):
        match = _OPTIM_RE.match(basename)
        if not match:
            continue
        dp_rank, mp_rank = int(match.group(1)), int(match.group(2))
        rel = f"{src_tag}/{basename}"
        if not store.exists(rel):
            continue  # already reported by the manifest cross-check
        if mp_rank >= mp_size:
            report.add(error(
                "UCP009",
                f"mp_rank {mp_rank} out of range for model-parallel size "
                f"{mp_size}",
                location=rel,
            ))
            continue
        try:
            payload = store.load_header(rel)
        except (SerializationError, OSError) as exc:
            report.add(error("UCP013", f"header unreadable: {exc}", rel))
            continue
        rank_layout = layout.rank_layout(*_mp_coords_of(mp_rank, parallel_cfg))
        report.extend(_lint_optim_header(
            payload, rank_layout, parallel_cfg, dp_rank, rel
        ))
    return report


def _lint_ucp(store: ObjectStore) -> LintReport:
    """Lint a UCP directory: metadata vs derived specs vs on-disk atoms."""
    report = LintReport(subject=str(store.base))
    try:
        metadata = UCPMetadata.load(store)
    except UCPError as exc:
        report.add(error("UCP013", f"ucp metadata unreadable: {exc}",
                         location=UCP_META_FILE))
        return report

    from repro.parallel.tp import build_shard_specs

    model_cfg = ModelConfig.from_dict(metadata.model_config)
    source_cfg = ParallelConfig.from_dict(metadata.source_parallel_config)
    derived = build_shard_specs(
        model_cfg, expert_parallel=source_cfg.expert_parallel
    )

    recorded = set(metadata.params)
    for name in sorted(set(derived) - recorded):
        report.add(error(
            "UCP001",
            f"model config derives parameter {name!r} but the metadata "
            f"records no atom for it",
            location=name,
        ))
    for name in sorted(recorded - set(derived)):
        report.add(warning(
            "UCP002",
            f"metadata records an atom not derivable from model "
            f"{model_cfg.name!r}",
            location=name,
        ))
    for name in sorted(recorded & set(derived)):
        meta_shape = tuple(metadata.params[name]["shape"])
        spec_shape = tuple(derived[name].unpadded_shape)
        if meta_shape != spec_shape:
            report.add(error(
                "UCP004",
                f"metadata records shape {meta_shape}; model config derives "
                f"unpadded shape {spec_shape}",
                location=name,
            ))

    atom_store = AtomStore(str(store.base), store)
    on_disk = set(atom_store.list_atoms())
    for name in sorted(recorded - on_disk):
        report.add(error(
            "UCP001", "atom recorded in metadata but absent on disk",
            location=f"{ATOMS_DIR}/{name}",
        ))
    for name in sorted(on_disk - recorded):
        report.add(warning(
            "UCP002", "atom on disk but not recorded in metadata",
            location=f"{ATOMS_DIR}/{name}",
        ))

    for name in sorted(recorded & on_disk):
        info = metadata.params[name]
        expected_shape = tuple(info["shape"])
        for kind in info.get("kinds", []):
            rel = f"{ATOMS_DIR}/{name}/{kind}.npt"
            if not store.exists(rel):
                report.add(error(
                    "UCP001", f"state file for kind {kind!r} missing",
                    location=rel,
                ))
                continue
            try:
                header = store.load_header(rel)
            except (SerializationError, OSError) as exc:
                report.add(error("UCP013", f"header unreadable: {exc}", rel))
                continue
            stub = header.get("values")
            shape = tuple(getattr(stub, "shape", ()))
            if shape != expected_shape:
                report.add(error(
                    "UCP004",
                    f"atom state stored with shape {shape}; metadata "
                    f"records {expected_shape}",
                    location=rel,
                ))
        meta_rel = f"{ATOMS_DIR}/{name}/{ATOM_META_FILE}"
        if store.exists(meta_rel):
            try:
                sidecar = store.load_header(meta_rel)
            except (SerializationError, OSError) as exc:
                report.add(error("UCP013", f"header unreadable: {exc}",
                                 location=meta_rel))
                continue
            if tuple(sidecar.get("shape", ())) != expected_shape:
                report.add(error(
                    "UCP004",
                    f"atom sidecar records shape "
                    f"{tuple(sidecar.get('shape', ()))}; metadata records "
                    f"{expected_shape}",
                    location=meta_rel,
                ))
    return report
