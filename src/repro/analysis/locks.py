"""Guarded-by / lock-discipline AST lint (SRC005-SRC008).

The static half of the concurrency checker (the runtime half is
:mod:`repro.analysis.lockwitness`).  A lightweight annotation convention
makes lock discipline checkable from the source text alone:

* ``self._blocks = {}  # guarded-by: self._lock`` — declares a class
  attribute as shared mutable state protected by a lock expression.
* ``def _put_locked(self, ...):  # holds: self._lock`` — declares that
  every caller of this function already holds the lock (the
  ``*_locked`` helper convention).  Multiple guards comma-separate.

========  ==========================  =======================================
rule      name                        pattern
========  ==========================  =======================================
SRC005    guarded-attr-outside-lock   a ``self.X`` read/write of a declared
                                      guarded attribute outside a
                                      ``with <guard>:`` block, in a function
                                      not marked ``# holds: <guard>``
SRC006    inconsistent-lock-order     lexically nested ``with``-lock
                                      acquisitions form a cycle across the
                                      file's functions (static ABBA)
SRC007    blocking-call-under-lock    a blocking call (disk read,
                                      ``Future.result``, a collective) while
                                      a lock is lexically held
SRC008    guarded-container-escape    ``return``/``yield`` of a guarded
                                      container (or an alias-returning
                                      method/subscript of one) without a
                                      copying wrapper — the reference
                                      outlives the critical section
========  ==========================  =======================================

Scope and limits (deliberate): guards are matched by *normalized
expression text* (``with self._lock:`` matches the declaration
``guarded-by: self._lock``), so aliasing a lock through another name
defeats the check; lock identities are scoped per enclosing class, so
cross-object call chains (reader lock -> cache lock through a method
call) are the runtime witness's job, not this lint's.  Nested functions
reset the held set — a closure may run after the ``with`` exits.

Suppression shares :mod:`repro.analysis.srclint`'s mechanism:
``# srclint: disable=SRC007`` on the offending physical line.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, error
from repro.analysis.srclint import COLLECTIVE_NAMES, _suppressions

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([^#\n]+)")
_HOLDS_RE = re.compile(r"#\s*holds:\s*([^#\n]+)")

BLOCKING_CALL_NAMES = frozenset({
    # concurrency waits
    "result", "wait", "sleep", "barrier", "acquire",
    # object-store / checkpoint IO
    "read_range", "read_ranges", "put_bytes", "write_bytes",
    "save", "save_with_digest", "save_distributed_checkpoint", "persist",
}) | frozenset(COLLECTIVE_NAMES)
"""Terminal call names treated as blocking for SRC007."""

_ALIAS_RETURNING_METHODS = frozenset({
    "get", "setdefault", "values", "keys", "items", "pop", "popitem",
})
"""Container methods whose result aliases the container's contents."""

_FN_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _norm(text: str) -> str:
    """Whitespace-free form of an expression for textual guard matching."""
    return "".join(text.split())


def _terminal_name(expr: ast.expr) -> str:
    """Rightmost identifier of an expression: ``_lock`` for ``self._lock``."""
    node = expr
    while True:
        if isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Attribute):
            return node.attr
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return ""


def _is_self_attr(node: ast.expr) -> Optional[str]:
    """The attribute name when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _LockChecker:
    def __init__(self, rel: str, source: str, tree: ast.AST) -> None:
        self.rel = rel
        self.tree = tree
        self.lines = source.splitlines()
        self.suppress = _suppressions(source)
        self.findings: List[Diagnostic] = []
        # every line carrying a guarded-by declaration is exempt from
        # SRC005 (it *is* the declaration)
        self.decl_lines: Set[int] = {
            i for i, line in enumerate(self.lines, start=1)
            if _GUARDED_BY_RE.search(line)
        }
        # all guard expressions declared anywhere in the file: these are
        # treated as locks for the ordering graph even when not named
        # like one (e.g. ``self._mu``)
        self.guard_exprs: Set[str] = set()
        # (lock_id_a, lock_id_b) -> (lineno, function name), first wins
        self.edges: Dict[Tuple[str, str], Tuple[int, str]] = {}
        # holds-annotated methods of the class currently being checked
        self._holds_methods: Dict[str, Set[str]] = {}

    # --- shared plumbing ---------------------------------------------

    def _emit(self, rule: str, lineno: int, message: str) -> None:
        rules = self.suppress.get(lineno, "absent")
        if rules is None or (rules != "absent" and rule in rules):
            return
        self.findings.append(
            error(rule, message, location=f"{self.rel}:{lineno}")
        )

    def _annotation(
        self, regex: re.Pattern, start: int, stop: int
    ) -> Optional[str]:
        """First annotation match in source lines ``[start, stop]``."""
        for lineno in range(start, stop + 1):
            if lineno - 1 >= len(self.lines):
                break
            m = regex.search(self.lines[lineno - 1])
            if m is not None:
                return m.group(1)
        return None

    def _holds(self, fn) -> Set[str]:
        """Guards a function's ``# holds:`` annotation declares held."""
        stop = fn.body[0].lineno - 1 if fn.body else fn.lineno
        text = self._annotation(_HOLDS_RE, fn.lineno, max(stop, fn.lineno))
        if text is None:
            return set()
        return {_norm(g) for g in text.split(",") if g.strip()}

    # --- guard collection --------------------------------------------

    def _class_guards(self, cls: ast.ClassDef) -> Dict[str, str]:
        """``attr -> guard expression`` from guarded-by declarations."""
        guards: Dict[str, str] = {}
        for node in ast.walk(cls):
            if isinstance(node, ast.ClassDef) and node is not cls:
                continue  # nested classes collect their own guards
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            text = self._annotation(
                _GUARDED_BY_RE, node.lineno,
                getattr(node, "end_lineno", node.lineno),
            )
            if text is None:
                continue
            guard = _norm(text)
            self.guard_exprs.add(guard)
            for target in targets:
                attr = _is_self_attr(target)
                if attr is not None:
                    guards[attr] = guard
        return guards

    def _class_holds_methods(self, cls: ast.ClassDef) -> Dict[str, Set[str]]:
        """``method name -> guards`` for the class's ``# holds:`` helpers.

        The ``*_locked`` convention cuts both ways: the annotation
        excuses the helper's body from SRC005, so calling the helper
        *without* the lock must itself be an SRC005 — otherwise the
        annotation would be a hole, not a contract.
        """
        return {
            stmt.name: holds
            for stmt in cls.body
            if isinstance(stmt, _FN_NODES) and (holds := self._holds(stmt))
        }

    # --- SRC005 / SRC008: guarded-attribute discipline ---------------

    def _check_class(self, cls: ast.ClassDef) -> None:
        guards = self._class_guards(cls)
        holds_methods = self._class_holds_methods(cls)
        if not guards and not holds_methods:
            return
        self._holds_methods = holds_methods
        for stmt in cls.body:
            if isinstance(stmt, _FN_NODES):
                self._visit_guarded(stmt, guards, self._holds(stmt))

    def _visit_guarded(
        self, fn, guards: Dict[str, str], held: Set[str]
    ) -> None:
        for stmt in fn.body:
            self._visit_node(stmt, guards, held)

    def _visit_node(
        self, node: ast.AST, guards: Dict[str, str], held: Set[str]
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = set(held)
            for item in node.items:
                self._visit_node(item.context_expr, guards, held)
                inner.add(_norm(ast.unparse(item.context_expr)))
            for stmt in node.body:
                self._visit_node(stmt, guards, inner)
            return
        if isinstance(node, _FN_NODES):
            # a nested function may run after the with-block exits, so
            # lexically held locks do not carry into its body
            self._visit_guarded(node, guards, self._holds(node))
            return
        if isinstance(node, ast.Lambda):
            self._visit_node(node.body, guards, set())
            return
        if isinstance(node, ast.ClassDef):
            return  # checked via its own _check_class pass
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            attr = self._escaping_attr(node.value, guards)
            if attr is not None:
                verb = "returned" if isinstance(node, ast.Return) else "yielded"
                self._emit(
                    "SRC008", node.lineno,
                    f"guarded container self.{attr} (guarded-by "
                    f"{guards[attr]}) {verb} without a copy: the "
                    f"reference outlives the critical section, so the "
                    f"caller reads it with no lock held",
                )
        if isinstance(node, ast.Call):
            method = _is_self_attr(node.func)
            if method is not None:
                for guard in sorted(
                    self._holds_methods.get(method, set()) - held
                ):
                    self._emit(
                        "SRC005", node.lineno,
                        f"call to self.{method}() requires holding "
                        f"{guard} (its `# holds:` contract) but the "
                        f"call site does not hold it",
                    )
        attr = _is_self_attr(node)
        if attr is not None:
            guard = guards.get(attr)
            if (
                guard is not None
                and guard not in held
                and node.lineno not in self.decl_lines
            ):
                self._emit(
                    "SRC005", node.lineno,
                    f"attribute self.{attr} is declared guarded-by "
                    f"{guard} but accessed without it; wrap the access "
                    f"in `with {guard}:` or mark the enclosing "
                    f"function `# holds: {guard}`",
                )
        for child in ast.iter_child_nodes(node):
            self._visit_node(child, guards, held)

    def _escaping_attr(
        self, expr: Optional[ast.expr], guards: Dict[str, str]
    ) -> Optional[str]:
        """Guarded attribute escaping through a returned/yielded expression."""
        if expr is None:
            return None
        attr = _is_self_attr(expr)
        if attr is not None and attr in guards:
            return attr
        if isinstance(expr, ast.Subscript):
            attr = _is_self_attr(expr.value)
            if attr is not None and attr in guards:
                return attr
        if isinstance(expr, ast.Call) and isinstance(
            expr.func, ast.Attribute
        ):
            attr = _is_self_attr(expr.func.value)
            if (
                attr is not None
                and attr in guards
                and expr.func.attr in _ALIAS_RETURNING_METHODS
            ):
                return attr
        if isinstance(expr, (ast.Tuple, ast.List)):
            for element in expr.elts:
                attr = self._escaping_attr(element, guards)
                if attr is not None:
                    return attr
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            return self._escaping_attr(expr.value, guards)
        return None

    # --- SRC006 / SRC007: lock ordering and blocking calls -----------

    def _is_lock_expr(self, expr: ast.expr, norm: str) -> bool:
        if norm in self.guard_exprs:
            return True
        return "lock" in _terminal_name(expr).lower()

    def _order_visit(
        self,
        node: ast.AST,
        clsname: str,
        fnname: str,
        held: List[Tuple[str, str]],
    ) -> None:
        """Track lexically held locks: ``held`` is ``[(lock_id, display)]``."""
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                self._order_visit(child, node.name, fnname, [])
            return
        if isinstance(node, _FN_NODES):
            inherited = [
                (f"{clsname}::{g}", g) for g in sorted(self._holds(node))
            ]
            for child in node.body:
                self._order_visit(child, clsname, node.name, inherited)
            return
        if isinstance(node, ast.Lambda):
            self._order_visit(node.body, clsname, fnname, [])
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = list(held)
            for item in node.items:
                norm = _norm(ast.unparse(item.context_expr))
                if not self._is_lock_expr(item.context_expr, norm):
                    continue
                lock_id = f"{clsname}::{norm}"
                for prev_id, _ in inner:
                    if prev_id != lock_id:
                        self.edges.setdefault(
                            (prev_id, lock_id), (item.context_expr.lineno, fnname)
                        )
                inner.append((lock_id, norm))
            for stmt in node.body:
                self._order_visit(stmt, clsname, fnname, inner)
            return
        if isinstance(node, ast.Call) and held:
            name = _terminal_name(node.func)
            if name in BLOCKING_CALL_NAMES:
                held_names = ", ".join(display for _, display in held)
                self._emit(
                    "SRC007", node.lineno,
                    f"blocking call {name}() while holding {held_names}: "
                    f"every thread contending for the lock stalls behind "
                    f"this IO/wait; move the call outside the critical "
                    f"section or mark the lock blocking_ok with a "
                    f"rationale",
                )
        for child in ast.iter_child_nodes(node):
            self._order_visit(child, clsname, fnname, held)

    def _report_cycles(self) -> None:
        from repro.analysis.collective_trace import find_cycle

        edges = dict(self.edges)
        reported: Set[frozenset] = set()
        for _ in range(16):  # bound independent-cycle extraction
            graph: Dict[str, List[str]] = {}
            for a, b in sorted(edges):
                graph.setdefault(a, []).append(b)
                graph.setdefault(b, [])
            cycle = find_cycle(graph)
            if cycle is None:
                return
            key = frozenset(cycle)
            hops = []
            first_lineno = None
            for i, a in enumerate(cycle):
                b = cycle[(i + 1) % len(cycle)]
                lineno, fn = edges.pop((a, b), (0, "?"))
                if first_lineno is None:
                    first_lineno = lineno
                hops.append(
                    f"{b.split('::', 1)[-1]} acquired under "
                    f"{a.split('::', 1)[-1]} in {fn}() "
                    f"({self.rel}:{lineno})"
                )
            if key in reported:
                continue
            reported.add(key)
            names = " -> ".join(
                c.split("::", 1)[-1] for c in cycle + [cycle[0]]
            )
            self._emit(
                "SRC006", first_lineno or 1,
                f"inconsistent lock order {names}: " + "; ".join(hops)
                + " — two threads taking these paths concurrently can "
                f"deadlock",
            )

    # --- entry -------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        # collect every class's guards first so _is_lock_expr knows all
        # declared guard expressions before the ordering pass
        classes = [
            node for node in ast.walk(self.tree)
            if isinstance(node, ast.ClassDef)
        ]
        for cls in classes:
            self._class_guards(cls)
        for cls in classes:
            self._check_class(cls)
        self._order_visit(self.tree, "", "<module>", [])
        self._report_cycles()
        return self.findings


def lint_locks(rel: str, source: str, tree: ast.AST) -> List[Diagnostic]:
    """Run the lock-discipline rules over one parsed file."""
    return _LockChecker(rel, source, tree).run()
