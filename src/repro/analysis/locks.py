"""Guarded-by / lock-discipline AST lint (SRC005-SRC008).

The static half of the concurrency checker (the runtime half is
:mod:`repro.analysis.lockwitness`).  A lightweight annotation convention
makes lock discipline checkable from the source text alone:

* ``self._blocks = {}  # guarded-by: self._lock`` — declares a class
  attribute as shared mutable state protected by a lock expression.
* ``def _put_locked(self, ...):  # holds: self._lock`` — declares that
  every caller of this function already holds the lock (the
  ``*_locked`` helper convention).  Multiple guards comma-separate.

========  ==========================  =======================================
rule      name                        pattern
========  ==========================  =======================================
SRC005    guarded-attr-outside-lock   a ``self.X`` read/write of a declared
                                      guarded attribute outside a
                                      ``with <guard>:`` block, in a function
                                      not marked ``# holds: <guard>``
SRC006    inconsistent-lock-order     lexically nested ``with``-lock
                                      acquisitions form a cycle across the
                                      file's functions (static ABBA)
SRC007    blocking-call-under-lock    a blocking call (disk read,
                                      ``Future.result``, a collective) while
                                      a lock is lexically held
SRC008    guarded-container-escape    ``return``/``yield`` of a guarded
                                      container (or an alias-returning
                                      method/subscript of one) without a
                                      copying wrapper — the reference
                                      outlives the critical section
SRC013    check-then-act-on-guarded-  an ``if``/``while`` decision reads a
          state                       guarded attribute (directly or through
                                      a local) outside its lock, then acts
                                      under ``with <guard>:`` in the body —
                                      the state can change between check and
                                      act (TOCTOU)
SRC014    compound-op-spans-critical- an ``in``-check on a guarded container
          sections                    taken under the lock, with the
                                      dependent access in a *different*
                                      ``with <guard>:`` block — the
                                      container can change between the two
                                      critical sections
========  ==========================  =======================================

Scope and limits (deliberate): guards are matched by *normalized
expression text* (``with self._lock:`` matches the declaration
``guarded-by: self._lock``), so aliasing a lock through another name
defeats the check; lock identities are scoped per enclosing class, so
cross-object call chains (reader lock -> cache lock through a method
call) are the runtime witness's job, not this lint's.  Nested functions
reset the held set — a closure may run after the ``with`` exits.

Suppression shares :mod:`repro.analysis.srclint`'s mechanism:
``# srclint: disable=SRC007`` on the offending physical line.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, error
from repro.analysis.srclint import COLLECTIVE_NAMES, _suppressions

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([^#\n]+)")
_HOLDS_RE = re.compile(r"#\s*holds:\s*([^#\n]+)")

BLOCKING_CALL_NAMES = frozenset({
    # concurrency waits
    "result", "wait", "sleep", "barrier", "acquire",
    # object-store / checkpoint IO
    "read_range", "read_ranges", "put_bytes", "write_bytes",
    "save", "save_with_digest", "save_distributed_checkpoint", "persist",
}) | frozenset(COLLECTIVE_NAMES)
"""Terminal call names treated as blocking for SRC007."""

_ALIAS_RETURNING_METHODS = frozenset({
    "get", "setdefault", "values", "keys", "items", "pop", "popitem",
})
"""Container methods whose result aliases the container's contents."""

_FN_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _norm(text: str) -> str:
    """Whitespace-free form of an expression for textual guard matching."""
    return "".join(text.split())


def _terminal_name(expr: ast.expr) -> str:
    """Rightmost identifier of an expression: ``_lock`` for ``self._lock``."""
    node = expr
    while True:
        if isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Attribute):
            return node.attr
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return ""


def _is_self_attr(node: ast.expr) -> Optional[str]:
    """The attribute name when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _LockChecker:
    def __init__(self, rel: str, source: str, tree: ast.AST) -> None:
        self.rel = rel
        self.tree = tree
        self.lines = source.splitlines()
        self.suppress = _suppressions(source)
        self.findings: List[Diagnostic] = []
        # every line carrying a guarded-by declaration is exempt from
        # SRC005 (it *is* the declaration)
        self.decl_lines: Set[int] = {
            i for i, line in enumerate(self.lines, start=1)
            if _GUARDED_BY_RE.search(line)
        }
        # all guard expressions declared anywhere in the file: these are
        # treated as locks for the ordering graph even when not named
        # like one (e.g. ``self._mu``)
        self.guard_exprs: Set[str] = set()
        # (lock_id_a, lock_id_b) -> (lineno, function name), first wins
        self.edges: Dict[Tuple[str, str], Tuple[int, str]] = {}
        # holds-annotated methods of the class currently being checked
        self._holds_methods: Dict[str, Set[str]] = {}

    # --- shared plumbing ---------------------------------------------

    def _emit(self, rule: str, lineno: int, message: str) -> None:
        rules = self.suppress.get(lineno, "absent")
        if rules is None or (rules != "absent" and rule in rules):
            return
        self.findings.append(
            error(rule, message, location=f"{self.rel}:{lineno}")
        )

    def _annotation(
        self, regex: re.Pattern, start: int, stop: int
    ) -> Optional[str]:
        """First annotation match in source lines ``[start, stop]``."""
        for lineno in range(start, stop + 1):
            if lineno - 1 >= len(self.lines):
                break
            m = regex.search(self.lines[lineno - 1])
            if m is not None:
                return m.group(1)
        return None

    def _holds(self, fn) -> Set[str]:
        """Guards a function's ``# holds:`` annotation declares held."""
        stop = fn.body[0].lineno - 1 if fn.body else fn.lineno
        text = self._annotation(_HOLDS_RE, fn.lineno, max(stop, fn.lineno))
        if text is None:
            return set()
        return {_norm(g) for g in text.split(",") if g.strip()}

    # --- guard collection --------------------------------------------

    def _class_guards(self, cls: ast.ClassDef) -> Dict[str, str]:
        """``attr -> guard expression`` from guarded-by declarations."""
        guards: Dict[str, str] = {}
        for node in ast.walk(cls):
            if isinstance(node, ast.ClassDef) and node is not cls:
                continue  # nested classes collect their own guards
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            text = self._annotation(
                _GUARDED_BY_RE, node.lineno,
                getattr(node, "end_lineno", node.lineno),
            )
            if text is None:
                continue
            guard = _norm(text)
            self.guard_exprs.add(guard)
            for target in targets:
                attr = _is_self_attr(target)
                if attr is not None:
                    guards[attr] = guard
        return guards

    def _class_holds_methods(self, cls: ast.ClassDef) -> Dict[str, Set[str]]:
        """``method name -> guards`` for the class's ``# holds:`` helpers.

        The ``*_locked`` convention cuts both ways: the annotation
        excuses the helper's body from SRC005, so calling the helper
        *without* the lock must itself be an SRC005 — otherwise the
        annotation would be a hole, not a contract.
        """
        return {
            stmt.name: holds
            for stmt in cls.body
            if isinstance(stmt, _FN_NODES) and (holds := self._holds(stmt))
        }

    # --- SRC005 / SRC008: guarded-attribute discipline ---------------

    def _check_class(self, cls: ast.ClassDef) -> None:
        guards = self._class_guards(cls)
        holds_methods = self._class_holds_methods(cls)
        if not guards and not holds_methods:
            return
        self._holds_methods = holds_methods
        for stmt in cls.body:
            if isinstance(stmt, _FN_NODES):
                self._visit_guarded(stmt, guards, self._holds(stmt))
                self._check_compound(stmt, guards, self._holds(stmt))

    def _visit_guarded(
        self, fn, guards: Dict[str, str], held: Set[str]
    ) -> None:
        for stmt in fn.body:
            self._visit_node(stmt, guards, held)

    def _visit_node(
        self, node: ast.AST, guards: Dict[str, str], held: Set[str]
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = set(held)
            for item in node.items:
                self._visit_node(item.context_expr, guards, held)
                inner.add(_norm(ast.unparse(item.context_expr)))
            for stmt in node.body:
                self._visit_node(stmt, guards, inner)
            return
        if isinstance(node, _FN_NODES):
            # a nested function may run after the with-block exits, so
            # lexically held locks do not carry into its body
            self._visit_guarded(node, guards, self._holds(node))
            return
        if isinstance(node, ast.Lambda):
            self._visit_node(node.body, guards, set())
            return
        if isinstance(node, ast.ClassDef):
            return  # checked via its own _check_class pass
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            attr = self._escaping_attr(node.value, guards)
            if attr is not None:
                verb = "returned" if isinstance(node, ast.Return) else "yielded"
                self._emit(
                    "SRC008", node.lineno,
                    f"guarded container self.{attr} (guarded-by "
                    f"{guards[attr]}) {verb} without a copy: the "
                    f"reference outlives the critical section, so the "
                    f"caller reads it with no lock held",
                )
        if isinstance(node, ast.Call):
            method = _is_self_attr(node.func)
            if method is not None:
                for guard in sorted(
                    self._holds_methods.get(method, set()) - held
                ):
                    self._emit(
                        "SRC005", node.lineno,
                        f"call to self.{method}() requires holding "
                        f"{guard} (its `# holds:` contract) but the "
                        f"call site does not hold it",
                    )
        attr = _is_self_attr(node)
        if attr is not None:
            guard = guards.get(attr)
            if (
                guard is not None
                and guard not in held
                and node.lineno not in self.decl_lines
            ):
                self._emit(
                    "SRC005", node.lineno,
                    f"attribute self.{attr} is declared guarded-by "
                    f"{guard} but accessed without it; wrap the access "
                    f"in `with {guard}:` or mark the enclosing "
                    f"function `# holds: {guard}`",
                )
        for child in ast.iter_child_nodes(node):
            self._visit_node(child, guards, held)

    def _escaping_attr(
        self, expr: Optional[ast.expr], guards: Dict[str, str]
    ) -> Optional[str]:
        """Guarded attribute escaping through a returned/yielded expression."""
        if expr is None:
            return None
        attr = _is_self_attr(expr)
        if attr is not None and attr in guards:
            return attr
        if isinstance(expr, ast.Subscript):
            attr = _is_self_attr(expr.value)
            if attr is not None and attr in guards:
                return attr
        if isinstance(expr, ast.Call) and isinstance(
            expr.func, ast.Attribute
        ):
            attr = _is_self_attr(expr.func.value)
            if (
                attr is not None
                and attr in guards
                and expr.func.attr in _ALIAS_RETURNING_METHODS
            ):
                return attr
        if isinstance(expr, (ast.Tuple, ast.List)):
            for element in expr.elts:
                attr = self._escaping_attr(element, guards)
                if attr is not None:
                    return attr
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            return self._escaping_attr(expr.value, guards)
        return None

    # --- SRC013 / SRC014: check-then-act across critical sections ----

    def _check_compound(
        self, fn, guards: Dict[str, str], held: Set[str]
    ) -> None:
        """Order-sensitive pass over one method for SRC013/SRC014.

        Tracks two kinds of tainted locals statement by statement:

        * ``tainted``: assigned from a read of a guarded attribute made
          *without* its lock — using one in an ``if``/``while`` test
          whose body then acts under the lock is check-then-act
          (SRC013; the direct ``if self.X:`` form is caught too);
        * ``flags``: assigned from an ``in``/``not in`` membership test
          on a guarded container *under* its lock — using one to guard
          an access to the same container in a *different* critical
          section is a non-atomic compound operation (SRC014).

        The ``# holds:`` annotation and reassignment both clear taint;
        nested functions start clean (they may run after the lock is
        gone, which SRC005 already models the same way).
        """
        state = {"tainted": {}, "flags": {}, "cs": 0}
        cs_active: Dict[str, int] = {}
        for stmt in fn.body:
            self._cta_visit(stmt, guards, set(held), cs_active, state)

    def _cta_visit(
        self,
        node: ast.AST,
        guards: Dict[str, str],
        held: Set[str],
        cs_active: Dict[str, int],
        state: Dict,
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner_held = set(held)
            inner_cs = dict(cs_active)
            for item in node.items:
                norm = _norm(ast.unparse(item.context_expr))
                inner_held.add(norm)
                state["cs"] += 1
                inner_cs[norm] = state["cs"]
            for stmt in node.body:
                self._cta_visit(stmt, guards, inner_held, inner_cs, state)
            return
        if isinstance(node, _FN_NODES):
            self._check_compound(node, guards, self._holds(node))
            return
        if isinstance(node, (ast.Lambda, ast.ClassDef)):
            return
        if isinstance(node, ast.Assign):
            self._cta_assign(node, guards, held, cs_active, state)
        elif isinstance(node, (ast.If, ast.While)):
            self._cta_decision(node, guards, held, cs_active, state)
        for child in ast.iter_child_nodes(node):
            self._cta_visit(child, guards, held, cs_active, state)

    def _cta_assign(
        self,
        node: ast.Assign,
        guards: Dict[str, str],
        held: Set[str],
        cs_active: Dict[str, int],
        state: Dict,
    ) -> None:
        names = [
            t.id for t in node.targets if isinstance(t, ast.Name)
        ]
        if not names:
            return
        for name in names:  # reassignment kills previous taint
            state["tainted"].pop(name, None)
            state["flags"].pop(name, None)
        membership = self._membership_attr(node.value, guards)
        if membership is not None:
            attr, guard = membership
            if guard in held:
                for name in names:
                    state["flags"][name] = (
                        attr, guard, cs_active.get(guard, -1), node.lineno
                    )
                return
        read = self._unguarded_read(node.value, guards, held)
        if read is not None:
            attr, guard = read
            for name in names:
                state["tainted"][name] = (attr, guard, node.lineno)

    def _membership_attr(
        self, expr: ast.expr, guards: Dict[str, str]
    ) -> Optional[Tuple[str, str]]:
        """``(attr, guard)`` when ``expr`` is ``key in self.X`` on a
        guarded container (negated forms included)."""
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            return self._membership_attr(expr.operand, guards)
        if not isinstance(expr, ast.Compare) or len(expr.ops) != 1:
            return None
        if not isinstance(expr.ops[0], (ast.In, ast.NotIn)):
            return None
        attr = _is_self_attr(expr.comparators[0])
        if attr is not None and attr in guards:
            return attr, guards[attr]
        return None

    def _unguarded_read(
        self, expr: ast.expr, guards: Dict[str, str], held: Set[str]
    ) -> Optional[Tuple[str, str]]:
        """``(attr, guard)`` for the first guarded-attribute read in
        ``expr`` whose guard is not held."""
        for sub in ast.walk(expr):
            attr = _is_self_attr(sub)
            if attr is None:
                continue
            guard = guards.get(attr)
            if guard is not None and guard not in held:
                return attr, guard
        return None

    def _cta_decision(
        self,
        node,
        guards: Dict[str, str],
        held: Set[str],
        cs_active: Dict[str, int],
        state: Dict,
    ) -> None:
        test_names = {
            sub.id for sub in ast.walk(node.test)
            if isinstance(sub, ast.Name)
        }
        # SRC013: decision on stale guarded state, action under the lock
        sources: List[Tuple[str, str, int]] = []
        direct = self._unguarded_read(node.test, guards, held)
        if direct is not None:
            sources.append((direct[0], direct[1], node.lineno))
        for name in sorted(test_names & set(state["tainted"])):
            sources.append(state["tainted"][name])
        emitted: Set[str] = set()
        for attr, guard, read_lineno in sources:
            if guard in emitted:
                continue
            act = self._acts_under_guard(node.body, guards, guard)
            if act is not None:
                emitted.add(guard)
                self._emit(
                    "SRC013", node.lineno,
                    f"check-then-act on guarded state: this decision "
                    f"reads self.{attr} (guarded-by {guard}) without "
                    f"the lock (line {read_lineno}), then acts on "
                    f"guarded state under `with {guard}:` (line {act}) "
                    f"— the state can change between the check and the "
                    f"act; take the lock around both",
                )
        # SRC014: membership flag from one critical section guarding an
        # access to the same container in another
        for name in sorted(test_names & set(state["flags"])):
            attr, guard, cs_id, check_lineno = state["flags"][name]
            if cs_active.get(guard, -1) == cs_id:
                continue  # still inside the checking critical section
            access = self._accesses_in_new_cs(node.body, attr, guard)
            if access is not None:
                self._emit(
                    "SRC014", access,
                    f"compound operation on guarded container "
                    f"self.{attr} spans critical sections: the "
                    f"membership check (line {check_lineno}) and this "
                    f"access run under different `with {guard}:` "
                    f"blocks, so another thread can mutate "
                    f"self.{attr} between them; do the check and the "
                    f"access in one critical section",
                )

    def _with_guard_blocks(
        self, body: Sequence[ast.stmt], guard: str
    ) -> List[ast.With]:
        """Every ``with <guard>:`` block anywhere under ``body``."""
        out = []
        for stmt in body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, (ast.With, ast.AsyncWith)):
                    continue
                for item in sub.items:
                    if _norm(ast.unparse(item.context_expr)) == guard:
                        out.append(sub)
                        break
        return out

    def _acts_under_guard(
        self, body: Sequence[ast.stmt], guards: Dict[str, str], guard: str
    ) -> Optional[int]:
        """Line of a write to ``guard``-protected state (or a call to a
        ``# holds:`` helper of that guard) inside a ``with <guard>:``
        block under ``body``."""
        for block in self._with_guard_blocks(body, guard):
            for sub in ast.walk(block):
                targets: List[ast.expr] = []
                if isinstance(sub, ast.Assign):
                    targets = sub.targets
                elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                    targets = [sub.target]
                elif isinstance(sub, ast.Delete):
                    targets = list(sub.targets)
                for target in targets:
                    base = target
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    attr = _is_self_attr(base)
                    if attr is not None and guards.get(attr) == guard:
                        return sub.lineno
                if isinstance(sub, ast.Call):
                    method = _is_self_attr(sub.func)
                    if method is not None and guard in (
                        self._holds_methods.get(method, set())
                    ):
                        return sub.lineno
        return None

    def _accesses_in_new_cs(
        self, body: Sequence[ast.stmt], attr: str, guard: str
    ) -> Optional[int]:
        """Line of any ``self.<attr>`` access inside a ``with <guard>:``
        block under ``body`` (a new critical section by construction)."""
        for block in self._with_guard_blocks(body, guard):
            for sub in ast.walk(block):
                if _is_self_attr(sub) == attr:
                    return sub.lineno
        return None

    # --- SRC006 / SRC007: lock ordering and blocking calls -----------

    def _is_lock_expr(self, expr: ast.expr, norm: str) -> bool:
        if norm in self.guard_exprs:
            return True
        return "lock" in _terminal_name(expr).lower()

    def _order_visit(
        self,
        node: ast.AST,
        clsname: str,
        fnname: str,
        held: List[Tuple[str, str]],
    ) -> None:
        """Track lexically held locks: ``held`` is ``[(lock_id, display)]``."""
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                self._order_visit(child, node.name, fnname, [])
            return
        if isinstance(node, _FN_NODES):
            inherited = [
                (f"{clsname}::{g}", g) for g in sorted(self._holds(node))
            ]
            for child in node.body:
                self._order_visit(child, clsname, node.name, inherited)
            return
        if isinstance(node, ast.Lambda):
            self._order_visit(node.body, clsname, fnname, [])
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = list(held)
            for item in node.items:
                norm = _norm(ast.unparse(item.context_expr))
                if not self._is_lock_expr(item.context_expr, norm):
                    continue
                lock_id = f"{clsname}::{norm}"
                for prev_id, _ in inner:
                    if prev_id != lock_id:
                        self.edges.setdefault(
                            (prev_id, lock_id), (item.context_expr.lineno, fnname)
                        )
                inner.append((lock_id, norm))
            for stmt in node.body:
                self._order_visit(stmt, clsname, fnname, inner)
            return
        if isinstance(node, ast.Call) and held:
            name = _terminal_name(node.func)
            if name in BLOCKING_CALL_NAMES:
                held_names = ", ".join(display for _, display in held)
                self._emit(
                    "SRC007", node.lineno,
                    f"blocking call {name}() while holding {held_names}: "
                    f"every thread contending for the lock stalls behind "
                    f"this IO/wait; move the call outside the critical "
                    f"section or mark the lock blocking_ok with a "
                    f"rationale",
                )
        for child in ast.iter_child_nodes(node):
            self._order_visit(child, clsname, fnname, held)

    def _report_cycles(self) -> None:
        from repro.analysis.collective_trace import find_cycle

        edges = dict(self.edges)
        reported: Set[frozenset] = set()
        for _ in range(16):  # bound independent-cycle extraction
            graph: Dict[str, List[str]] = {}
            for a, b in sorted(edges):
                graph.setdefault(a, []).append(b)
                graph.setdefault(b, [])
            cycle = find_cycle(graph)
            if cycle is None:
                return
            key = frozenset(cycle)
            hops = []
            first_lineno = None
            for i, a in enumerate(cycle):
                b = cycle[(i + 1) % len(cycle)]
                lineno, fn = edges.pop((a, b), (0, "?"))
                if first_lineno is None:
                    first_lineno = lineno
                hops.append(
                    f"{b.split('::', 1)[-1]} acquired under "
                    f"{a.split('::', 1)[-1]} in {fn}() "
                    f"({self.rel}:{lineno})"
                )
            if key in reported:
                continue
            reported.add(key)
            names = " -> ".join(
                c.split("::", 1)[-1] for c in cycle + [cycle[0]]
            )
            self._emit(
                "SRC006", first_lineno or 1,
                f"inconsistent lock order {names}: " + "; ".join(hops)
                + " — two threads taking these paths concurrently can "
                f"deadlock",
            )

    # --- entry -------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        # collect every class's guards first so _is_lock_expr knows all
        # declared guard expressions before the ordering pass
        classes = [
            node for node in ast.walk(self.tree)
            if isinstance(node, ast.ClassDef)
        ]
        for cls in classes:
            self._class_guards(cls)
        for cls in classes:
            self._check_class(cls)
        self._order_visit(self.tree, "", "<module>", [])
        self._report_cycles()
        return self.findings


def lint_locks(rel: str, source: str, tree: ast.AST) -> List[Diagnostic]:
    """Run the lock-discipline rules over one parsed file."""
    return _LockChecker(rel, source, tree).run()
