"""Runtime lock-order witness for the threaded IO layer.

The static half of the concurrency checker (:mod:`repro.analysis.locks`,
rules SRC005-SRC008) proves lock *discipline* from the source text; this
module witnesses lock *behavior* at runtime.  Instrumented locks
(:class:`WitnessedLock`, built via :func:`make_lock`) report every
acquisition to the active :class:`LockWitness`, which keeps per-thread
held-lock stacks plus a global lock-order graph with the acquisition
stack that first created each edge, and reports:

========  ============================  =====================================
rule      name                          witness
========  ============================  =====================================
UCP029    lock-order-cycle              two threads acquired the same locks
                                        in opposite orders — a potential
                                        ABBA deadlock, reported with *both*
                                        acquisition stacks
UCP030    unguarded-state-access        guarded state (``BlockCache`` blocks,
                                        replica tables) touched with the
                                        declared lock not held — via accessor
                                        hooks, no ``sys.settrace``
UCP031    lock-held-across-blocking-io  a lock not marked ``blocking_ok``
                                        held across a blocking IO call whose
                                        (simulated) cost exceeds the budget
========  ============================  =====================================

Activation mirrors :mod:`repro.analysis.sanitizer`: a context manager
(:func:`lockcheck`) or environment-driven — ``REPRO_LOCKCHECK=1`` (or
``REPRO_SANITIZE=1``, so the sanitizer CI job witnesses locks too) makes
the test session fixture wrap the whole run.  When no witness is active
every hook is one list-truthiness check, so instrumented locks cost
nothing in production mode.

The witness also records a bounded event log (acquire / release /
access / blocking, with a global sequence number).  Its
:meth:`LockWitness.to_payload` form replays offline through
:func:`check_lock_trace`, which extends the rank-level vector-clock
happens-before analyzer (:mod:`repro.analysis.collective_trace`) to
*thread*-level events: lock release -> acquire hand-offs join clocks,
and two accesses to one resource from different threads with no common
lock and unordered clocks are reported as a race (UCP030).
``repro lint-trace --locks payload.json`` runs this from the CLI.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import threading
import traceback
from typing import Dict, List, Optional, Tuple

from repro.analysis import schedpoint as _schedpoint
from repro.analysis.collective_trace import clock_lte, find_cycle
from repro.analysis.diagnostics import (
    Diagnostic,
    LayoutLintError,
    LintReport,
    error,
)

ENV_VAR = "REPRO_LOCKCHECK"
"""Set to ``1`` to run the test session under a strict lock witness."""

DEFAULT_IO_BUDGET_S = 0.05
"""Max (simulated) blocking-IO seconds tolerated under a held lock."""

DEFAULT_MAX_EVENTS = 100_000
"""Event-log bound; past it the log stops growing (``truncated``)."""

_STACK_FRAMES = 10
"""Frames kept per recorded acquisition stack."""


class LockWitnessError(LayoutLintError):
    """A lock-witness check found error-severity violations."""

    def __init__(self, report: LintReport) -> None:
        super().__init__(report, prefix="lock witness violation")


def _capture_stack(skip: int = 2) -> Tuple[str, ...]:
    """Compact acquisition stack: innermost-last ``file:line in fn``."""
    frames = traceback.extract_stack()[:-skip]
    return tuple(
        f"{f.filename.rsplit('/', 1)[-1]}:{f.lineno} in {f.name}"
        for f in frames[-_STACK_FRAMES:]
    )


def _fmt_stack(stack: Tuple[str, ...]) -> str:
    return " <- ".join(reversed(stack[-4:])) if stack else "<no stack>"


class WitnessedLock:
    """A named lock that reports acquisitions to the active witness.

    Drop-in for ``threading.Lock``/``RLock`` in ``with`` statements.
    ``blocking_ok=True`` declares the lock as *designed* to be held
    across blocking IO (e.g. ``RangeReader``'s IO-serialization lock)
    so UCP031 does not fire for it; any other lock held across a
    blocking call beyond the witness budget is flagged.
    """

    __slots__ = ("name", "blocking_ok", "_inner")

    def __init__(
        self, name: str, blocking_ok: bool = False, reentrant: bool = False
    ) -> None:
        self.name = name
        self.blocking_ok = blocking_ok
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def __repr__(self) -> str:
        return f"WitnessedLock({self.name!r})"

    def __enter__(self) -> "WitnessedLock":
        ctl = _schedpoint._CONTROLLER
        if ctl is not None:
            # under the interleaving explorer the thread parks here and
            # the scheduler dispatches it only once the lock is free in
            # its model, so the real acquire below can never block
            ctl.lock_enter(self)
        if _STACK:
            # edge recording happens BEFORE the real acquire: in strict
            # mode a would-be ABBA cycle reports/raises instead of
            # actually deadlocking the test run
            _STACK[-1].before_acquire(self)
            self._inner.acquire()
            _STACK[-1].after_acquire(self)
        else:
            self._inner.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        ctl = _schedpoint._CONTROLLER
        if ctl is not None:
            ctl.lock_exit(self)
        if _STACK:
            # the release event is logged while still holding the lock,
            # so a competing acquire always sequences after it
            _STACK[-1].on_release(self)
        self._inner.release()

    def acquire(self) -> bool:
        """Bare acquire (prefer ``with``); witnessed like ``__enter__``."""
        self.__enter__()
        return True

    def release(self) -> None:
        """Bare release counterpart of :meth:`acquire`."""
        self.__exit__(None, None, None)


def make_lock(
    name: str, blocking_ok: bool = False, reentrant: bool = False
) -> WitnessedLock:
    """A :class:`WitnessedLock`; the one lock factory instrumented code uses."""
    return WitnessedLock(name, blocking_ok=blocking_ok, reentrant=reentrant)


class LockWitness:
    """Per-thread acquisition stacks + a global lock-order graph.

    Args:
        strict: raise :class:`LockWitnessError` at the first
            error-severity violation (the CI mode).  ``False``
            accumulates findings in :attr:`report` (injection-test mode).
        subject: label for the report header.
        io_budget_s: UCP031 threshold — blocking seconds tolerated
            while holding a lock not marked ``blocking_ok``.
        max_events: replay-log bound; the order graph keeps growing
            regardless, only the event log truncates.
    """

    def __init__(
        self,
        strict: bool = True,
        subject: str = "lock-witness",
        io_budget_s: float = DEFAULT_IO_BUDGET_S,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.strict = strict
        self.report = LintReport(subject=subject)
        self.checks = 0
        self.io_budget_s = io_budget_s
        self.max_events = max_events
        self.truncated = False
        self._tls = threading.local()
        self._mu = threading.Lock()  # meta-lock; deliberately unwitnessed
        # (lock_a, lock_b) -> first-observation witness
        self._edges: Dict[Tuple[str, str], Dict] = {}  # guarded-by: self._mu
        # event log, sharded per thread so the hot hooks never contend
        # on the meta-lock: each thread appends to its own buffer and
        # next(self._seq) hands out a global order (atomic under the
        # GIL); to_payload merges and sorts.  Only buffer *registration*
        # needs the meta-lock.
        self._buffers: List[List[Tuple[int, str, str, str, Tuple[str, ...]]]] = []  # guarded-by: self._mu
        self._seq = itertools.count(1)
        self._reported_cycles: set = set()  # guarded-by: self._mu

    # --- held-stack plumbing -----------------------------------------

    def _held(self) -> List[WitnessedLock]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def held_names(self) -> List[str]:
        """Names of locks the *calling thread* currently holds."""
        return [lock.name for lock in self._held()]

    def _thread_state(self) -> Tuple[str, List]:
        """This thread's cached ``(name, event buffer)`` pair."""
        state = getattr(self._tls, "state", None)
        if state is None:
            buf: List = []
            with self._mu:
                self._buffers.append(buf)
            state = self._tls.state = (
                threading.current_thread().name, buf,
            )
        return state

    def _log(
        self, kind: str, name: str, held: Tuple[str, ...] = ()
    ) -> str:
        """Append one event to the calling thread's buffer; returns the
        thread name (hot path: no meta-lock, one counter tick)."""
        thread, buf = self._thread_state()
        seq = next(self._seq)
        if seq > self.max_events:
            self.truncated = True
        else:
            buf.append((seq, thread, kind, name, held))
        return thread

    def _violation(self, diag: Diagnostic) -> None:
        with self._mu:
            self.report.add(diag)
        if self.strict and diag.severity == "error":
            raise LockWitnessError(LintReport(self.report.subject, [diag]))

    # --- lock hooks (UCP029) -----------------------------------------

    def before_acquire(self, lock: WitnessedLock) -> None:
        """Record order edges held-lock -> ``lock`` and check for cycles.

        Runs *before* the real acquire so a strict witness reports the
        ABBA cycle instead of deadlocking on it.
        """
        held = self._held()
        if not held:
            return  # no ordering context
        # lock-free fast path (dict membership is atomic under the
        # GIL): in steady state every held->lock edge is already known,
        # so the hot path never touches the meta-lock.  A benign race
        # only sends two threads into the slow path, which re-checks
        # under the guard before mutating.
        edges = self._edges  # srclint: disable=SRC005
        for h in held:
            if h is lock:
                return  # reentrant re-acquire
        fresh = [
            (h.name, lock.name) for h in held
            if h.name != lock.name
            and (h.name, lock.name) not in edges
        ]
        if not fresh:
            return
        thread = threading.current_thread().name
        stack = _capture_stack(skip=3)
        pending: List[Diagnostic] = []
        with self._mu:
            for edge in fresh:
                if edge in self._edges:
                    continue  # another thread recorded it meanwhile
                self._edges[edge] = {"thread": thread, "stack": stack}
                diag = self._cycle_diag_locked(edge)
                if diag is not None:
                    pending.append(diag)
        self.checks += 1
        for diag in pending:
            self._violation(diag)

    def _cycle_diag_locked(
        self, edge: Tuple[str, str]
    ) -> Optional[Diagnostic]:  # holds: self._mu
        src, dst = edge
        graph: Dict[str, List[str]] = {}
        for a, b in self._edges:
            graph.setdefault(a, []).append(b)
            graph.setdefault(b, [])
        path = self._path_locked(graph, dst, src)
        if path is None:
            return None
        cycle_key = frozenset(path)
        if cycle_key in self._reported_cycles:
            return None
        self._reported_cycles.add(cycle_key)
        this = self._edges[edge]
        # the first edge on the return path is the opposing acquisition
        back = self._edges.get((path[0], path[1]), {})
        ring = " -> ".join(path + [path[0]])
        return error(
            "UCP029",
            f"lock-order cycle {ring}: thread {this['thread']!r} acquired "
            f"{dst!r} while holding {src!r} at "
            f"[{_fmt_stack(this['stack'])}]; thread "
            f"{back.get('thread', '?')!r} previously acquired "
            f"{path[1]!r} while holding {path[0]!r} at "
            f"[{_fmt_stack(back.get('stack', ()))}] — a potential "
            f"deadlock if both threads run concurrently",
            location=f"{src}->{dst}",
        )

    @staticmethod
    def _path_locked(
        graph: Dict[str, List[str]], src: str, dst: str
    ) -> Optional[List[str]]:  # holds: self._mu
        """Deterministic DFS path ``src -> .. -> dst`` in the order graph."""
        stack = [(src, [src])]
        seen = {src}
        while stack:
            node, path = stack.pop()
            if node == dst:
                return path
            for nxt in sorted(graph.get(node, ()), reverse=True):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def after_acquire(self, lock: WitnessedLock) -> None:
        """Push onto the held stack and log, post-acquisition."""
        self._held().append(lock)
        self._log("acquire", lock.name)

    def on_release(self, lock: WitnessedLock) -> None:
        """Pop the held stack and log, pre-release."""
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] is lock:
                del held[i]
                break
        self._log("release", lock.name)

    # --- accessor hook (UCP030) --------------------------------------

    def check_guarded(
        self, lock: Optional[WitnessedLock], resource: str
    ) -> Optional[Diagnostic]:
        """Assert the calling thread holds ``lock`` while touching ``resource``.

        Instrumented containers call this from inside their mutators
        (no ``sys.settrace``): the locked public API always passes, a
        bypass — or a future refactor that grows an unlocked path —
        fires UCP030 with the offending access stack.
        """
        self.checks += 1
        held = self._held()
        thread = self._log(
            "access", resource, tuple(h.name for h in held)
        )
        if lock is None or any(h is lock for h in held):
            return None
        stack = _capture_stack(skip=3)
        diag = error(
            "UCP030",
            f"guarded state {resource} touched by thread {thread!r} "
            f"without holding {lock.name!r} "
            f"(held: {[h.name for h in held] or 'none'}) at "
            f"[{_fmt_stack(stack)}]",
            location=resource,
        )
        self._violation(diag)
        return diag

    # --- blocking-IO hook (UCP031) -----------------------------------

    def note_blocking(
        self, desc: str, seconds: float, kind: str = "io"
    ) -> Optional[Diagnostic]:
        """Report one blocking call (disk read, fsync, future wait).

        ``seconds`` should be the *simulated* IO cost where one exists
        (the store's NVMe clock) so the check is deterministic; flags
        UCP031 when any held lock not marked ``blocking_ok`` rode
        across the call.  ``kind`` decides the severity model:

        - ``"io"`` / ``"cache-miss"``: budgeted — a cold-cache miss
          legitimately holds its lock for one brief windowed read, so
          only costs beyond ``io_budget_s`` fire;
        - ``"fsync"``: unconditional — durable-write latency is
          device-dependent and unbounded (a busy disk can take
          hundreds of ms to flush), so *any* fsync/flush under a
          non-``blocking_ok`` lock fires regardless of the budget.
        """
        self.checks += 1
        held = self._held()
        thread = self._log(
            "blocking", desc, tuple(h.name for h in held)
        )
        offenders = [h for h in held if not h.blocking_ok]
        if not offenders:
            return None
        if kind != "fsync" and seconds <= self.io_budget_s:
            return None
        stack = _capture_stack(skip=3)
        if kind == "fsync":
            why = (
                f"lock {offenders[0].name!r} held across {desc}: "
                f"fsync/flush latency is unbounded (device-dependent), "
                f"so no budget excuses it — move the durable write "
                f"outside the critical section"
            )
        else:
            why = (
                f"lock {offenders[0].name!r} held across blocking call "
                f"{desc} costing {seconds * 1e3:.1f}ms "
                f"(budget {self.io_budget_s * 1e3:.1f}ms)"
            )
        diag = error(
            "UCP031",
            f"{why} at [{_fmt_stack(stack)}]: every thread contending "
            f"for the lock stalls behind this IO",
            location=offenders[0].name,
        )
        self._violation(diag)
        return diag

    # --- replay payload ----------------------------------------------

    def to_payload(self) -> Dict:
        """JSON-able form of the order graph + event log for offline replay."""
        with self._mu:
            return {
                "version": 1,
                "truncated": self.truncated,
                "edges": [
                    {
                        "src": a,
                        "dst": b,
                        "thread": w["thread"],
                        "stack": list(w["stack"]),
                    }
                    for (a, b), w in sorted(self._edges.items())
                ],
                "events": [
                    [seq, thread, kind, name, list(held)]
                    for seq, thread, kind, name, held in sorted(
                        event
                        for buf in self._buffers
                        for event in buf
                    )
                ],
            }


# --- offline thread-level happens-before replay ------------------------


def check_lock_trace(payload: Dict) -> LintReport:
    """Replay a witness payload: order cycles + thread-level races.

    The thread-level extension of the rank-level vector-clock analyzer:
    each thread carries a clock keyed by thread name; a lock release
    joins into the next acquire of the same lock (the hand-off edge).
    Two ``access`` events on one resource from different threads with no
    common held lock and *unordered* clocks are a data race — reported
    as UCP030, since nothing guarded the state.  Lock-order cycles in
    the recorded graph are re-checked as UCP029 with the recorded
    witness stacks, so a saved payload carries the full diagnosis.
    """
    report = LintReport(subject="lock trace")

    # 1) order-graph cycles (UCP029) with the recorded witnesses
    edges = {
        (e["src"], e["dst"]): e for e in payload.get("edges", ())
    }
    graph: Dict[str, List[str]] = {}
    for a, b in sorted(edges):
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    cycle = find_cycle(graph)
    if cycle is not None:
        hops = []
        for i, name in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            w = edges.get((name, nxt), {})
            hops.append(
                f"thread {w.get('thread', '?')!r} acquired {nxt!r} while "
                f"holding {name!r} at "
                f"[{_fmt_stack(tuple(w.get('stack', ())))}]"
            )
        ring = " -> ".join(cycle + [cycle[0]])
        report.add(error(
            "UCP029",
            f"lock-order cycle {ring}: " + "; ".join(hops),
            location="->".join(cycle),
        ))

    # 2) thread-level vector-clock race replay (UCP030)
    clocks: Dict[str, Dict[str, int]] = {}
    last_release: Dict[str, Dict[str, int]] = {}
    last_access: Dict[str, Dict[str, Tuple[Dict[str, int], frozenset, int]]] = {}
    reported_pairs: set = set()
    for seq, thread, kind, name, held in sorted(payload.get("events", ())):
        clock = clocks.setdefault(thread, {})
        clock[thread] = clock.get(thread, 0) + 1
        if kind == "acquire":
            handoff = last_release.get(name)
            if handoff:
                for t, count in handoff.items():
                    if count > clock.get(t, 0):
                        clock[t] = count
        elif kind == "release":
            last_release[name] = dict(clock)
        elif kind == "access":
            held_set = frozenset(held)
            for other, (oclock, oheld, oseq) in last_access.get(
                name, {}
            ).items():
                if other == thread or (held_set & oheld):
                    continue
                if clock_lte(oclock, clock) or clock_lte(clock, oclock):
                    continue
                pair = (name, frozenset((thread, other)))
                if pair in reported_pairs:
                    continue
                reported_pairs.add(pair)
                report.add(error(
                    "UCP030",
                    f"data race on {name}: threads {other!r} (event "
                    f"{oseq}) and {thread!r} (event {seq}) both touched "
                    f"it with no common lock held and neither access "
                    f"ordered before the other",
                    location=name,
                ))
            last_access.setdefault(name, {})[thread] = (
                dict(clock), held_set, seq
            )
    return report


# --- activation --------------------------------------------------------

_STACK: List[LockWitness] = []


def current() -> Optional[LockWitness]:
    """The innermost active witness, or ``None``.

    Instrumented containers check this before their accessor hooks;
    inactive cost is one list check.
    """
    return _STACK[-1] if _STACK else None


def enabled_from_env() -> bool:
    """Whether ``REPRO_LOCKCHECK`` (or ``REPRO_SANITIZE``) requests a
    witnessed run — the witness rides along with the sanitizer."""
    if os.environ.get(ENV_VAR, "") not in ("", "0"):
        return True
    from repro.analysis.sanitizer import enabled_from_env as _san_env

    return _san_env()


@contextlib.contextmanager
def lockcheck(
    strict: bool = True,
    subject: str = "lock-witness",
    io_budget_s: float = DEFAULT_IO_BUDGET_S,
):
    """Activate a :class:`LockWitness` for the enclosed block.

    Nested activations stack; hooks report to the innermost one, so an
    injection test may run its own permissive witness inside a strict
    session-wide one (locks must not straddle an activation boundary —
    acquire and release under the same innermost witness).

    A strict witness raises at the point of the offense *and* re-checks
    at context exit: a violation raised inside a bare worker thread dies
    with that thread (``threading`` swallows it), so the exit check is
    what surfaces it to the spawning test or the session fixture.
    """
    witness = LockWitness(
        strict=strict, subject=subject, io_budget_s=io_budget_s
    )
    _STACK.append(witness)
    try:
        yield witness
    finally:
        _STACK.remove(witness)
    # only reached when the body exited cleanly: violations that raised
    # on this thread already propagated through the ``finally`` above
    if strict and witness.report.errors:
        raise LockWitnessError(witness.report)
