"""Byte-provenance dataflow checker for UCP conversions.

The paper's correctness claim is that a UCP transformation is a pure
re-tiling: every byte of every target rank's flat fp32 partition comes
from exactly one real (non-padding) source byte, for any source ->
target parallelism interchange.  The rank-level linter
(:mod:`repro.analysis.layout_lint`) proves file presence and shape
facts, but cannot see *dataflow* bugs — double-writes, coverage gaps,
or padding leaking into data — the class ByteCheckpoint and TorchTitan
report as the hardest to debug in production resharding.

This module closes that gap with a symbolic shadow interpreter that
executes the conversion plan over **intervals, not tensors**:

1. Every source rank file's *header* (``ObjectStore.load_header``; the
   payload is never read) contributes ``(file, byte-offset, dtype)``
   fragments located inside its flattened TP shard.
2. Fragments compose — mirroring ``Extract``/``Union`` selection
   semantics exactly — into an interval map over each parameter's
   consolidated (padded logical) flat element space, every interval
   carrying its source-byte provenance.
3. The map is re-sliced under the target :class:`ParallelConfig`
   exactly as ``GenUcpMetadata``/``Load`` would, and three theorems
   are proven per target tensor:

   * **coverage** — every target data byte has a source byte (UCP017);
   * **exclusivity** — no byte is written twice (UCP018);
   * **padding hygiene** — no source padding byte flows into target
     data (UCP019).

The only tensor-shaped computation is one ``int64`` index map per
``fragment_params`` parameter, executed through the *real* fragmenter
(:meth:`Fragmenter.shard` over ``arange``) and immediately collapsed to
maximal contiguous runs — so the provenance model cannot drift from the
executable sharding semantics, and disk IO stays header-only
(kilobytes for a multi-terabyte checkpoint).

Violations carry the stable rule IDs UCP017-UCP022 and exact
``(tensor, rank, byte-range)`` provenance chains; see
``docs/ANALYSIS.md`` for the catalogue and a worked chain example.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import LintReport, error
from repro.ckpt import naming
from repro.ckpt.loader import resolve_tag
from repro.core.intervals import (
    MapRun,
    data_intervals,
    merge_intervals as _merge_intervals,
    shard_to_full_runs,
    subtract_intervals as _subtract_intervals,
)
from repro.core.metadata import UCP_META_FILE, UCPMetadata
from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.parallel.layout import ModelParallelLayout
from repro.parallel.tp import PATTERN_FRAGMENT, PATTERN_UNIQUE, ShardSpec
from repro.storage.serializer import SerializationError
from repro.storage.store import ObjectStore

FP32_BYTES = 4
"""Flat partitions are fp32; provenance byte ranges are elements * 4."""

_KIND_FIELDS = (
    ("fp32", "fp32_flat_partition"),
    ("exp_avg", "exp_avg_flat_partition"),
    ("exp_avg_sq", "exp_avg_sq_flat_partition"),
)


def _is_float32(dtype: object) -> bool:
    """dtype-string equality modulo spelling (``float32`` vs ``<f4``)."""
    try:
        return np.dtype(dtype) == np.float32
    except TypeError:
        return False


def _numel(shape: Sequence[int]) -> int:
    n = 1
    for d in shape:
        n *= int(d)
    return n


def _byte_range(start: int, end: int) -> str:
    """Render an element interval as the byte range diagnostics report."""
    return f"bytes [{start * FP32_BYTES}, {end * FP32_BYTES})"


@dataclasses.dataclass(frozen=True)
class SourceExtent:
    """One contiguous run of consolidated elements traced to source bytes.

    Consolidated elements ``[full_start, full_end)`` of one parameter
    are supplied by elements ``[file_start, ...)`` of the named flat
    array ``field`` inside source rank file ``file`` — the provenance
    leaf every diagnostic chain bottoms out in.
    """

    full_start: int
    full_end: int
    file: str
    field: str
    file_start: int
    coord: Tuple[int, int, int]
    dp_rank: int

    def chain(self, full_start: int, full_end: int) -> str:
        """Render the source half of a provenance chain for a sub-range."""
        delta = full_start - self.full_start
        file_lo = (self.file_start + delta) * FP32_BYTES
        file_hi = file_lo + (full_end - full_start) * FP32_BYTES
        pp, sp, tp = self.coord
        return (
            f"source pp={pp}.sp={sp}.tp={tp}.dp={self.dp_rank} "
            f"{self.file}::{self.field} bytes [{file_lo}, {file_hi})"
        )


@dataclasses.dataclass
class ParamProvenance:
    """Interval map over one parameter's consolidated flat element space.

    ``extents`` trace the *selected* copies — the ones ``union``
    actually consumes.  ``replicas`` trace the non-selected copies
    (other ``(pp, sp)`` holders of a replicated / averaged parameter),
    keyed by their mp coordinate: the streaming converter reads them
    only when the pattern demands it (``params_to_average`` averages
    every copy; ``replicated_params`` under ``verify_replicas`` must
    compare them), so a plan knows the *full* byte cost of each policy.
    """

    name: str
    spec: ShardSpec
    extents: List[SourceExtent]
    data: List[Tuple[int, int]]
    replicas: Dict[Tuple[int, int, int], List[SourceExtent]] = dataclasses.field(
        default_factory=dict
    )

    def covered(self) -> List[Tuple[int, int]]:
        """Merged consolidated intervals any source byte supplies."""
        return _merge_intervals(
            [(e.full_start, e.full_end) for e in self.extents]
        )

    def lookup(self, start: int, end: int) -> List[SourceExtent]:
        """Extents intersecting a consolidated element interval."""
        return [
            e
            for e in self.extents
            if e.full_start < end and e.full_end > start
        ]


@dataclasses.dataclass(frozen=True)
class _ShardPiece:
    """One dp-split piece of one (parameter, mp-coord) shard."""

    shard_start: int
    shard_end: int
    file: str
    field: str
    file_start: int
    dp_rank: int


class ProvenanceAnalysis:
    """Result of a provenance run: per-parameter maps plus the report.

    ``params`` maps parameter name -> :class:`ParamProvenance`;
    :meth:`explain` renders a full target-byte -> source-byte chain,
    the artifact the diagnostics embed and ``docs/ANALYSIS.md``
    documents.
    """

    def __init__(
        self,
        model_cfg: ModelConfig,
        source_cfg: ParallelConfig,
        params: Dict[str, ParamProvenance],
        report: LintReport,
    ) -> None:
        self.model_cfg = model_cfg
        self.source_cfg = source_cfg
        self.params = params
        self.report = report
        self._runs_cache: Dict[Tuple[str, int, int], List[MapRun]] = {}

    def runs(self, name: str, degree: int, rank: int) -> List[MapRun]:
        """Cached shard -> consolidated runs for one parameter."""
        key = (name, degree, rank)
        if key not in self._runs_cache:
            self._runs_cache[key] = shard_to_full_runs(
                self.params[name].spec, degree, rank
            )
        return self._runs_cache[key]

    def explain(
        self,
        name: str,
        target_cfg: ParallelConfig,
        pp_stage: int,
        sp_rank: int,
        tp_rank: int,
        dp_rank: int,
        local_element: int,
    ) -> str:
        """Provenance chain for one element of one target flat partition.

        Walks target partition byte -> target shard element ->
        consolidated element -> source file byte, rendering each hop.
        """
        layout = ModelParallelLayout(self.model_cfg, target_cfg)
        rank_layout = layout.rank_layout(pp_stage, sp_rank, tp_rank)
        for piece in rank_layout.slices_in_partition(dp_rank):
            if piece.name != name:
                continue
            if not piece.local_start <= local_element < piece.local_end:
                continue
            shard_element = piece.shard_start + (
                local_element - piece.local_start
            )
            head = (
                f"target pp={pp_stage}.sp={sp_rank}.tp={tp_rank}"
                f".dp={dp_rank} partition "
                f"{_byte_range(local_element, local_element + 1)} of "
                f"{name!r}"
            )
            for run in self.runs(name, target_cfg.tp, tp_rank):
                if run.shard_start <= shard_element < run.shard_end:
                    full = run.full_start + (shard_element - run.shard_start)
                    mid = f"consolidated {_byte_range(full, full + 1)}"
                    prov = self.params.get(name)
                    if prov is not None:
                        for extent in prov.lookup(full, full + 1):
                            return (
                                f"{head} <- {mid} <- "
                                f"{extent.chain(full, full + 1)}"
                            )
                    for d_start, d_end in (
                        prov.data if prov is not None
                        else data_intervals(layout.shard_specs[name])
                    ):
                        if d_start <= full < d_end:
                            return f"{head} <- {mid} <- <no source byte>"
                    return f"{head} <- {mid} <- structural padding (zero)"
            return f"{head} <- <element outside the shard map>"
        raise KeyError(
            f"element {local_element} of {name!r} is not in partition "
            f"dp={dp_rank} of pp={pp_stage}.sp={sp_rank}.tp={tp_rank}"
        )


def _read_source_pieces(
    store: ObjectStore,
    tag: str,
    layout: ModelParallelLayout,
    source_cfg: ParallelConfig,
    optimizer_layout: str,
    report: LintReport,
) -> Dict[Tuple[str, Tuple[int, int, int]], List[_ShardPiece]]:
    """Header-only pass over every source optimizer-state file.

    Returns shard-space pieces keyed by ``(param name, mp coord)``,
    reporting dtype violations (UCP020), out-of-extent references
    (UCP021), alignment-padding reads (UCP019), padding-as-data
    metadata (UCP019), and unreadable headers (UCP022) along the way.
    """
    pieces: Dict[Tuple[str, Tuple[int, int, int]], List[_ShardPiece]] = {}
    checked_sharding: set = set()
    for coord in layout.mp_coords():
        mp_rank = layout.mp_rank_index(*coord)
        rank_layout = layout.rank_layout(*coord)
        derived_payload = rank_layout.payload_numel
        if optimizer_layout == "per_param":
            dp_ranks = [0]
        elif source_cfg.zero_stage == 0:
            dp_ranks = [0]
        else:
            dp_ranks = list(range(source_cfg.dp))
        for dp_rank in dp_ranks:
            basename = naming.optim_states_name(dp_rank, mp_rank)
            rel = f"{tag}/{basename}"
            if not store.exists(rel):
                report.add(error(
                    "UCP022",
                    f"rank file absent; the provenance of dp_rank "
                    f"{dp_rank}'s bytes cannot be established",
                    location=rel,
                ))
                continue
            try:
                header = store.load_header(rel)
            except (SerializationError, OSError) as exc:
                report.add(error(
                    "UCP022", f"header unreadable: {exc}", location=rel
                ))
                continue

            _check_sharding_metadata(
                header, layout, checked_sharding, rel, report
            )
            if "param_states" in header:
                _collect_per_param_pieces(
                    header, coord, rel, pieces, report
                )
                continue
            meta = header.get("partition_meta")
            if meta is None:
                report.add(error(
                    "UCP022",
                    "header has no partition_meta; flat-partition bytes "
                    "cannot be traced",
                    location=rel,
                ))
                continue
            _collect_flat_pieces(
                header, meta, coord, rel, derived_payload, report, pieces
            )
    return pieces


def _check_sharding_metadata(
    header: Dict,
    layout: ModelParallelLayout,
    checked: set,
    rel: str,
    report: LintReport,
) -> None:
    """Padding-as-data detection on the recorded sharding metadata.

    A recorded ``unpadded_shape`` wider than the derived one claims
    structural padding rows as real data — StripPadding would then
    carry padding bytes into atoms and every target rank (UCP019).
    """
    for name, saved in sorted(header.get("sharding", {}).items()):
        if name in checked or name not in layout.shard_specs:
            continue
        checked.add(name)
        spec = layout.shard_specs[name]
        recorded = tuple(int(d) for d in saved.get("unpadded_shape", ()))
        derived = tuple(spec.unpadded_shape)
        if recorded and _numel(recorded) > _numel(derived):
            report.add(error(
                "UCP019",
                f"{name!r} records unpadded_shape {recorded} but the "
                f"model derives {derived}: "
                f"{_numel(recorded) - _numel(derived)} structural-padding "
                f"elements would flow into target data as if real",
                location=rel,
            ))


def _collect_per_param_pieces(
    header: Dict,
    coord: Tuple[int, int, int],
    rel: str,
    pieces: Dict[Tuple[str, Tuple[int, int, int]], List[_ShardPiece]],
    report: LintReport,
) -> None:
    """Megatron-classic per-parameter files: each state is a whole shard."""
    states = header["param_states"]
    for kind, _field in _KIND_FIELDS:
        shard_map = states.get(kind)
        if shard_map is None:
            report.add(error(
                "UCP022",
                f"param_states has no {kind!r} states; their provenance "
                f"cannot be established",
                location=rel,
            ))
            continue
        for name in sorted(shard_map):
            stub = shard_map[name]
            dtype = getattr(stub, "dtype", "float32")
            if kind == "fp32" and not _is_float32(dtype):
                report.add(error(
                    "UCP020",
                    f"{name!r} stored as {dtype}; target flat partitions "
                    f"are float32 — a widening copy is not byte "
                    f"provenance",
                    location=rel,
                ))
            if kind != "fp32":
                continue
            numel = _numel(getattr(stub, "shape", ()))
            pieces.setdefault((name, coord), []).append(_ShardPiece(
                shard_start=0,
                shard_end=numel,
                file=rel,
                field=f"param_states.fp32.{name}",
                file_start=0,
                dp_rank=0,
            ))


def _collect_flat_pieces(
    header: Dict,
    meta: Dict,
    coord: Tuple[int, int, int],
    rel: str,
    derived_payload: int,
    report: LintReport,
    pieces: Dict[Tuple[str, Tuple[int, int, int]], List[_ShardPiece]],
) -> None:
    """DeepSpeed-style flat files: segments intersected with the partition."""
    try:
        dp_rank = int(meta["dp_rank"])
        partition_numel = int(meta["partition_numel"])
        flat_numel = int(meta["flat_numel"])
        segments = meta["segments"]
    except (KeyError, TypeError, ValueError) as exc:
        report.add(error(
            "UCP022", f"partition_meta incomplete: {exc}", location=rel
        ))
        return

    # the flat arrays themselves: dtype and extent, per state kind
    stored_numel = partition_numel
    for kind, field in _KIND_FIELDS:
        stub = header.get(field)
        if stub is None:
            report.add(error(
                "UCP022",
                f"flat array {field!r} missing; its bytes cannot be "
                f"traced",
                location=rel,
            ))
            continue
        dtype = getattr(stub, "dtype", "float32")
        if not _is_float32(dtype):
            report.add(error(
                "UCP020",
                f"{field} stored as {dtype}; flat fp32 partitions must "
                f"be float32 for byte-exact provenance",
                location=rel,
            ))
        if kind == "fp32":
            stored_numel = _numel(getattr(stub, "shape", ()))

    part_start = dp_rank * partition_numel
    part_end = part_start + partition_numel
    payload_end = min(derived_payload, flat_numel)

    for segment in segments:
        try:
            name = segment["name"]
            seg_start = int(segment["offset"])
            seg_end = seg_start + int(segment["numel"])
        except (KeyError, TypeError, ValueError) as exc:
            report.add(error(
                "UCP022", f"segment table entry unreadable: {exc}",
                location=rel,
            ))
            continue
        if seg_end > payload_end:
            leak_lo = max(seg_start, payload_end)
            report.add(error(
                "UCP019",
                f"segment {name!r} claims flat {_byte_range(leak_lo, seg_end)} "
                f"inside the alignment-padding tail (payload ends at byte "
                f"{payload_end * FP32_BYTES}): padding bytes would flow "
                f"into target data",
                location=rel,
            ))
        start = max(seg_start, part_start)
        end = min(seg_end, part_end)
        if start >= end:
            continue
        file_start = start - part_start
        file_end = end - part_start
        if file_end > stored_numel:
            report.add(error(
                "UCP021",
                f"segment {name!r} needs partition "
                f"{_byte_range(file_start, file_end)} but the stored flat "
                f"array ends at byte {stored_numel * FP32_BYTES}",
                location=rel,
            ))
            end = min(end, part_start + stored_numel)
            if start >= end:
                continue
            file_end = end - part_start
        pieces.setdefault((name, coord), []).append(_ShardPiece(
            shard_start=start - seg_start,
            shard_end=end - seg_start,
            file=rel,
            field="fp32_flat_partition",
            file_start=file_start,
            dp_rank=dp_rank,
        ))


def _assemble_shard_intervals(
    name: str,
    coord: Tuple[int, int, int],
    shard_numel: int,
    shard_pieces: List[_ShardPiece],
    report: LintReport,
) -> List[_ShardPiece]:
    """Prove one coord's dp pieces tile its shard exactly once.

    The static twin of ``ops._assemble_shard``: gaps are UCP017
    (a target byte would stay uninitialized), overlaps are UCP018
    (a byte written twice — last-writer-wins corruption at runtime),
    pieces past the shard extent are UCP021.
    """
    pp, sp, tp = coord
    where = f"{name}@pp={pp}.sp={sp}.tp={tp}"
    ordered = sorted(
        shard_pieces, key=lambda p: (p.shard_start, p.shard_end, p.file)
    )
    kept: List[_ShardPiece] = []
    cursor = 0
    for piece in ordered:
        if piece.shard_end > shard_numel:
            report.add(error(
                "UCP021",
                f"fragment from {piece.file} covers shard "
                f"{_byte_range(piece.shard_start, piece.shard_end)} but the "
                f"shard ends at byte {shard_numel * FP32_BYTES}",
                location=where,
            ))
        if piece.shard_start > cursor:
            report.add(error(
                "UCP017",
                f"shard {_byte_range(cursor, piece.shard_start)} is covered "
                f"by no source fragment (next fragment from {piece.file})",
                location=where,
            ))
        elif piece.shard_start < cursor:
            prev = kept[-1] if kept else None
            other = f" and {prev.file}" if prev is not None else ""
            report.add(error(
                "UCP018",
                f"shard {_byte_range(piece.shard_start, min(cursor, piece.shard_end))} "
                f"is written twice (fragments from {piece.file}{other})",
                location=where,
            ))
        kept.append(piece)
        cursor = max(cursor, piece.shard_end)
    if cursor < shard_numel:
        report.add(error(
            "UCP017",
            f"shard {_byte_range(cursor, shard_numel)} is covered by no "
            f"source fragment",
            location=where,
        ))
    return kept


def _compose_param(
    name: str,
    spec: ShardSpec,
    tp_degree: int,
    by_coord: Dict[Tuple[int, int, int], List[_ShardPiece]],
    report: LintReport,
) -> ParamProvenance:
    """Union selection + shard -> consolidated mapping for one parameter."""
    shard_numel: Dict[Tuple[int, int, int], int] = {}
    for coord in by_coord:
        if spec.pattern == PATTERN_FRAGMENT:
            try:
                shard_numel[coord] = _numel(spec.shard_shape(tp_degree))
            except ValueError:
                shard_numel[coord] = _numel(spec.logical_shape)
        else:
            shard_numel[coord] = _numel(spec.logical_shape)

    assembled = {
        coord: _assemble_shard_intervals(
            name, coord, shard_numel[coord], by_coord[coord], report
        )
        for coord in sorted(by_coord)
    }

    # Union selection, mirroring ops.union exactly: fragment takes the
    # lowest (pp, sp) copy per tp rank; everything else takes the
    # lowest coordinate (params_to_average reads all copies, but each
    # copy must individually satisfy the theorems, which the per-shard
    # assembly above already proved).
    selected: List[Tuple[int, Tuple[int, int, int]]] = []
    if spec.pattern == PATTERN_FRAGMENT and tp_degree > 1:
        per_tp: Dict[int, Tuple[int, int, int]] = {}
        for coord in sorted(by_coord):
            per_tp.setdefault(coord[2], coord)
        for tp_rank in range(tp_degree):
            if tp_rank not in per_tp:
                try:
                    missing = _numel(spec.shard_shape(tp_degree))
                except ValueError:
                    missing = 0
                report.add(error(
                    "UCP017",
                    f"no source rank holds TP shard {tp_rank} of "
                    f"{tp_degree}; {_byte_range(0, missing)} of the shard "
                    f"have no provenance",
                    location=name,
                ))
                continue
            selected.append((tp_rank, per_tp[tp_rank]))
    else:
        if by_coord:
            coords = sorted(by_coord)
            if spec.pattern == PATTERN_UNIQUE and len(coords) > 1:
                report.add(error(
                    "UCP018",
                    f"unique parameter held by {len(coords)} ranks "
                    f"{coords}: consolidated bytes would be written "
                    f"{len(coords)} times",
                    location=name,
                ))
            selected.append((0, coords[0]))

    # the shard -> consolidated map depends only on the tp rank, and a
    # dp-replicated layout maps several coords through the same rank —
    # memoize so the fragmenter (which executes over a full-size arange
    # index tensor) runs once per distinct rank, not once per coord
    runs_by_rank: Dict[int, List[MapRun]] = {}

    def _runs(tp_rank: int) -> List[MapRun]:
        runs = runs_by_rank.get(tp_rank)
        if runs is None:
            runs = shard_to_full_runs(spec, tp_degree, tp_rank)
            runs_by_rank[tp_rank] = runs
        return runs

    def _map_through_runs(
        coord: Tuple[int, int, int], tp_rank: int
    ) -> List[SourceExtent]:
        runs = _runs(tp_rank)
        mapped: List[SourceExtent] = []
        for piece in assembled[coord]:
            for run in runs:
                lo = max(piece.shard_start, run.shard_start)
                hi = min(piece.shard_end, run.shard_end)
                if lo >= hi:
                    continue
                mapped.append(SourceExtent(
                    full_start=run.full_start + (lo - run.shard_start),
                    full_end=run.full_start + (hi - run.shard_start),
                    file=piece.file,
                    field=piece.field,
                    file_start=piece.file_start + (lo - piece.shard_start),
                    coord=coord,
                    dp_rank=piece.dp_rank,
                ))
        mapped.sort(key=lambda e: (e.full_start, e.full_end, e.file))
        return mapped

    extents: List[SourceExtent] = []
    for tp_rank, coord in selected:
        extents.extend(_map_through_runs(coord, tp_rank))
    extents.sort(key=lambda e: (e.full_start, e.full_end, e.file))

    # non-selected copies, mapped through the same runs as their tp
    # rank: union discards them (or averages / verifies them, pattern
    # permitting), but a read plan must know where their bytes live
    selected_coords = {coord for _, coord in selected}
    replicas: Dict[Tuple[int, int, int], List[SourceExtent]] = {}
    for coord in sorted(by_coord):
        if coord in selected_coords:
            continue
        replicas[coord] = _map_through_runs(coord, coord[2])

    # consolidated-space exclusivity across selected shards: a sound
    # fragmenter partitions the space, so any overlap here means the
    # recorded metadata stitched two sources onto the same bytes
    cursor = 0
    for extent in extents:
        if extent.full_start < cursor:
            report.add(error(
                "UCP018",
                f"consolidated "
                f"{_byte_range(extent.full_start, min(cursor, extent.full_end))} "
                f"written twice (second writer: {extent.chain(extent.full_start, min(cursor, extent.full_end))})",
                location=name,
            ))
        cursor = max(cursor, extent.full_end)

    prov = ParamProvenance(
        name=name,
        spec=spec,
        extents=extents,
        data=data_intervals(spec),
        replicas=replicas,
    )
    return prov


def analyze_source(
    store: ObjectStore,
    tag: str,
    model_cfg: ModelConfig,
    source_cfg: ParallelConfig,
    optimizer_layout: str = "flat",
) -> ProvenanceAnalysis:
    """Build the source-side provenance map from rank-file headers.

    Proves, per parameter, that the source fragments tile every shard
    and the consolidated data region exactly once with no padding
    reads; the returned analysis carries the interval maps a target
    check (or :meth:`ProvenanceAnalysis.explain`) composes further.
    """
    report = LintReport(subject=f"provenance {store.base}/{tag}")
    layout = ModelParallelLayout(model_cfg, source_cfg)
    pieces = _read_source_pieces(
        store, tag, layout, source_cfg, optimizer_layout, report
    )

    by_param: Dict[str, Dict[Tuple[int, int, int], List[_ShardPiece]]] = {}
    for (name, coord), shard_pieces in pieces.items():
        by_param.setdefault(name, {})[coord] = shard_pieces

    params: Dict[str, ParamProvenance] = {}
    for name in sorted(layout.shard_specs):
        spec = layout.shard_specs[name]
        coords = by_param.get(name)
        if not coords:
            total = _numel(spec.unpadded_shape)
            report.add(error(
                "UCP017",
                f"no source fragment of any rank supplies {name!r}; all "
                f"{_byte_range(0, total)} of its data lack provenance",
                location=name,
            ))
            params[name] = ParamProvenance(
                name=name, spec=spec, extents=[],
                data=data_intervals(spec),
            )
            continue
        params[name] = _compose_param(
            name, spec, source_cfg.tp, coords, report
        )
        # coverage of the consolidated data region (padding excluded —
        # it is *allowed* to be uncovered, and must be stripped)
        missing = _subtract_intervals(
            params[name].data, params[name].covered()
        )
        for lo, hi in missing:
            report.add(error(
                "UCP017",
                f"consolidated data {_byte_range(lo, hi)} covered by no "
                f"source fragment",
                location=name,
            ))
    for name in sorted(set(by_param) - set(layout.shard_specs)):
        report.add(error(
            "UCP022",
            f"source fragments reference parameter {name!r} that the "
            f"model config does not derive; their destination is "
            f"unverifiable",
            location=name,
        ))
    return ProvenanceAnalysis(model_cfg, source_cfg, params, report)


def analyze_ucp_source(
    store: ObjectStore, metadata: Optional[UCPMetadata] = None
) -> ProvenanceAnalysis:
    """Provenance map of an already-converted UCP directory.

    Atoms are consolidated by construction, so each present atom
    supplies its full data region; missing atoms, short extents
    (UCP021), and non-fp32 states (UCP020) are the remaining dataflow
    hazards before target re-slicing.
    """
    report = LintReport(subject=f"provenance {store.base}")
    if metadata is None:
        metadata = UCPMetadata.load(store)
    model_cfg = ModelConfig.from_dict(metadata.model_config)
    source_cfg = ParallelConfig.from_dict(metadata.source_parallel_config)
    layout = ModelParallelLayout(model_cfg, source_cfg)

    params: Dict[str, ParamProvenance] = {}
    for name in sorted(layout.shard_specs):
        spec = layout.shard_specs[name]
        data = data_intervals(spec)
        rel = f"atoms/{name}/fp32.npt"
        total_data = sum(hi - lo for lo, hi in data)
        if name not in metadata.params or not store.exists(rel):
            report.add(error(
                "UCP017",
                f"no atom supplies {name!r}; all "
                f"{_byte_range(0, total_data)} of its data lack "
                f"provenance",
                location=name,
            ))
            params[name] = ParamProvenance(name, spec, [], data)
            continue
        try:
            header = store.load_header(rel)
        except (SerializationError, OSError) as exc:
            report.add(error("UCP022", f"header unreadable: {exc}", rel))
            params[name] = ParamProvenance(name, spec, [], data)
            continue
        stub = header.get("values")
        dtype = getattr(stub, "dtype", "float32")
        if not _is_float32(dtype):
            report.add(error(
                "UCP020",
                f"atom state stored as {dtype}; targets load float32",
                location=rel,
            ))
        numel = _numel(getattr(stub, "shape", ()))
        if numel < total_data:
            report.add(error(
                "UCP021",
                f"atom holds {numel * FP32_BYTES} bytes but the data "
                f"region needs {total_data * FP32_BYTES}",
                location=rel,
            ))
        # atoms store the unpadded tensor: its elements map onto the
        # padded consolidated data region in order
        extents: List[SourceExtent] = []
        consumed = 0
        for lo, hi in data:
            take = min(hi - lo, max(0, numel - consumed))
            if take <= 0:
                break
            extents.append(SourceExtent(
                full_start=lo,
                full_end=lo + take,
                file=rel,
                field="values",
                file_start=consumed,
                coord=(0, 0, 0),
                dp_rank=0,
            ))
            consumed += take
        params[name] = ParamProvenance(name, spec, extents, data)
        missing = _subtract_intervals(data, _merge_intervals(
            [(e.full_start, e.full_end) for e in extents]
        ))
        for lo, hi in missing:
            report.add(error(
                "UCP017",
                f"consolidated data {_byte_range(lo, hi)} covered by no "
                f"atom bytes",
                location=name,
            ))
    return ProvenanceAnalysis(model_cfg, source_cfg, params, report)


def check_target_provenance(
    analysis: ProvenanceAnalysis,
    target_cfg: ParallelConfig,
) -> LintReport:
    """Prove the three theorems for every target tensor of a plan.

    Re-slices the source interval maps under the target config exactly
    as ``Load`` would — target partition slice -> target shard elements
    -> consolidated elements — and checks each target data byte is
    supplied by exactly one source byte.  Diagnostics carry full
    provenance chains naming the target rank, tensor, and byte range.
    """
    report = LintReport(
        subject=f"provenance {analysis.source_cfg.describe()} -> "
                f"{target_cfg.describe()}"
    )
    layout = ModelParallelLayout(analysis.model_cfg, target_cfg)
    report.extend(layout.tiling_diagnostics())

    reported_gaps: set = set()
    for coord in layout.mp_coords():
        pp, sp, tp = coord
        rank_layout = layout.rank_layout(*coord)
        for dp_rank in range(target_cfg.dp):
            where = f"target:pp={pp}.sp={sp}.tp={tp}.dp={dp_rank}"
            for piece in rank_layout.slices_in_partition(dp_rank):
                prov = analysis.params.get(piece.name)
                if prov is None:
                    key = (piece.name, "missing")
                    if key not in reported_gaps:
                        reported_gaps.add(key)
                        report.add(error(
                            "UCP017",
                            f"target needs {piece.name!r} but the source "
                            f"provides no fragments for it",
                            location=f"{where}/{piece.name}",
                        ))
                    continue
                runs = analysis.runs(piece.name, target_cfg.tp, tp)
                for run in runs:
                    lo = max(piece.shard_start, run.shard_start)
                    hi = min(piece.shard_end, run.shard_end)
                    if lo >= hi:
                        continue
                    full_lo = run.full_start + (lo - run.shard_start)
                    full_hi = run.full_start + (hi - run.shard_start)
                    needed = [
                        iv for iv in (
                            (max(full_lo, d_lo), min(full_hi, d_hi))
                            for d_lo, d_hi in prov.data
                        )
                        if iv[0] < iv[1]
                    ]
                    missing = _subtract_intervals(needed, prov.covered())
                    for m_lo, m_hi in missing:
                        key = (piece.name, m_lo, m_hi)
                        if key in reported_gaps:
                            continue
                        reported_gaps.add(key)
                        part_lo = piece.local_start + (
                            (m_lo - full_lo) if m_lo >= full_lo else 0
                        )
                        report.add(error(
                            "UCP017",
                            f"target partition "
                            f"{_byte_range(part_lo, part_lo + (m_hi - m_lo))} "
                            f"of {piece.name!r} <- consolidated "
                            f"{_byte_range(m_lo, m_hi)} <- <no source "
                            f"byte>: the interchange would leave these "
                            f"bytes uninitialized",
                            location=f"{where}/{piece.name}",
                        ))
    return report


def check_source_provenance(
    store: ObjectStore,
    tag: str,
    model_cfg: ModelConfig,
    source_cfg: ParallelConfig,
    optimizer_layout: str = "flat",
) -> LintReport:
    """Source-side provenance theorems only (the converter's pre-pass).

    Exactly what ``ucp_convert`` needs proven before any payload IO:
    the Extract/Union dataflow will touch every consolidated data byte
    exactly once and never read padding as data.
    """
    return analyze_source(
        store, tag, model_cfg, source_cfg, optimizer_layout
    ).report


def check_plan_provenance(
    source_dir: str,
    target_cfg: ParallelConfig,
    tag: Optional[str] = None,
    store: Optional[ObjectStore] = None,
) -> LintReport:
    """Full byte-provenance proof for a source -> target interchange.

    Accepts either a distributed checkpoint directory (rank-file
    headers drive the map) or a UCP directory (atom headers drive it);
    composes source and target theorems into one report.  Tensor
    payloads are never read.
    """
    if store is None:
        store = ObjectStore(source_dir)
    if store.exists(UCP_META_FILE):
        analysis = analyze_ucp_source(store)
    else:
        src_tag = resolve_tag(store, tag)
        job = store.load(f"{src_tag}/{naming.JOB_CONFIG_FILE}")
        model_cfg = ModelConfig.from_dict(job["model_config"])
        source_cfg = ParallelConfig.from_dict(job["parallel_config"])
        analysis = analyze_source(
            store,
            src_tag,
            model_cfg,
            source_cfg,
            job.get("optimizer_layout", "flat"),
        )
    report = LintReport(
        subject=f"provenance {analysis.source_cfg.describe()} -> "
                f"{target_cfg.describe()}"
    )
    report.extend(analysis.report.diagnostics)
    report.extend(
        check_target_provenance(analysis, target_cfg).diagnostics
    )
    return report


def analyze_interchange(
    source_dir: str,
    target_cfg: ParallelConfig,
    tag: Optional[str] = None,
    store: Optional[ObjectStore] = None,
) -> ProvenanceAnalysis:
    """Like :func:`check_plan_provenance` but returns the full analysis.

    The analysis object keeps the interval maps, so callers can render
    provenance chains (:meth:`ProvenanceAnalysis.explain`) after the
    report — the CLI's ``lint-plan --provenance`` uses the report, the
    docs' worked example uses the chains.
    """
    if store is None:
        store = ObjectStore(source_dir)
    if store.exists(UCP_META_FILE):
        analysis = analyze_ucp_source(store)
    else:
        src_tag = resolve_tag(store, tag)
        job = store.load(f"{src_tag}/{naming.JOB_CONFIG_FILE}")
        analysis = analyze_source(
            store,
            src_tag,
            ModelConfig.from_dict(job["model_config"]),
            ParallelConfig.from_dict(job["parallel_config"]),
            job.get("optimizer_layout", "flat"),
        )
    analysis.report.extend(
        check_target_provenance(analysis, target_cfg).diagnostics
    )
    return analysis
