"""MemorySanitizer: buffer-ownership checks for the simulated cluster.

`repro.dist` simulates NCCL in a single Python process, so the address-
space isolation real DeepSpeed ranks get for free does not exist here: a
single missing ``.copy()`` lets rank 3 silently mutate rank 0's fp32
partition, or lets a CheckFreq-style background persist write state the
engine has already advanced past.  The resulting files are internally
*consistent* — manifests, digests, and the byte-provenance checker all
pass — which is exactly what makes this bug class invisible to every
analyzer below this one.

This module is the runtime half of the defense (the static half is
:mod:`repro.analysis.srclint`).  It tracks ndarray *base-buffer*
ownership per simulated rank, write-protects buffers that cross an
isolation boundary, and reports violations through the standard
:class:`~repro.analysis.diagnostics.LintReport` machinery:

========  =============================  =====================================
rule      name                           boundary
========  =============================  =====================================
UCP025    cross-rank-writable-aliasing   collectives / engine rank partitions
UCP026    snapshot-aliases-live-state    CheckFreq snapshots, Gemini replicas
UCP027    cache-return-mutation          BlockCache / whole-atom LRU returns
UCP028    loaded-param-aliases-cache     sliced/whole-atom ``Load`` targets
========  =============================  =====================================

Activation
----------

The sanitizer is a context manager::

    from repro.analysis.sanitizer import sanitize

    with sanitize(strict=True) as san:
        engine.train(5)
        engine.save_checkpoint(ckpt)

or environment-driven — ``REPRO_SANITIZE=1`` makes the test suite's
session fixture (``tests/conftest.py``) wrap the whole tier-1 run, which
is how CI runs fully sanitized.  When no sanitizer is active every hook
is a cheap ``None`` check, so instrumented production paths pay nothing.

Escape hatches: :meth:`MemorySanitizer.claim` returns a writable private
copy of a protected array (ownership transfer by copy — always safe);
:meth:`MemorySanitizer.thaw` re-enables writes *in place* and records
the buffer as deliberately unprotected so later scans do not flag it.
"""

from __future__ import annotations

import contextlib
import os
import threading
import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import (
    Diagnostic,
    LayoutLintError,
    LintReport,
    error,
)

ENV_VAR = "REPRO_SANITIZE"
"""Set to ``1`` to run the test session under a strict sanitizer."""


class SanitizerError(LayoutLintError):
    """A memory-sanitizer check found error-severity violations."""

    def __init__(self, report: LintReport) -> None:
        super().__init__(report, prefix="memory sanitizer violation")


def _root(arr: np.ndarray):
    """The object ultimately owning an ndarray's memory.

    Follows the ``.base`` chain through views; the terminal object may
    be an ndarray (owns its data) or an exporting buffer (``bytes``,
    ``memoryview`` — the ``np.frombuffer`` case).  Two arrays alias iff
    they reach the same root object.
    """
    node = arr
    while isinstance(node, np.ndarray) and node.base is not None:
        node = node.base
    return node


def _writable(arr: np.ndarray) -> bool:
    return bool(arr.flags.writeable)


def zero_state_arrays(zero) -> Iterable[Tuple[str, np.ndarray]]:
    """``(rank-label:kind, array)`` pairs over a ZeroOptimizer's state.

    Duck-typed (``partitions``/``fp32``/``state``) so this module never
    imports :mod:`repro.parallel` — the sanitizer sits above the
    runtime in the layering, not beside it.
    """
    for coord in sorted(zero.partitions):
        pp, sp, tp = coord
        for d, part in enumerate(zero.partitions[coord]):
            label = f"pp{pp}.sp{sp}.tp{tp}/dp{d}"
            yield f"{label}:fp32", part.fp32
            yield f"{label}:exp_avg", part.state.exp_avg
            yield f"{label}:exp_avg_sq", part.state.exp_avg_sq


def model_param_arrays(engine) -> Iterable[Tuple[str, np.ndarray]]:
    """``(param-label, array)`` pairs over an engine's model parameters.

    Labels embed the model-parallel coordinates whose shard layout
    covers the parameter (the engine's per-rank shard enumeration), so
    a finding names the simulated ranks whose training steps would
    write through the alias.  Duck-typed like :func:`zero_state_arrays`
    (``model.named_parameters``/``layout.rank_layout``).
    """
    shard_owners: Dict[str, List[str]] = {}
    for pp, sp, tp in engine.layout.mp_coords():
        for entry in engine.layout.rank_layout(pp, sp, tp).entries:
            shard_owners.setdefault(entry.name, []).append(
                f"pp{pp}.sp{sp}.tp{tp}"
            )
    for name, param in engine.model.named_parameters():
        owners = ",".join(shard_owners.get(name, ())) or "unsharded"
        yield f"model/{name}[{owners}]", param.data


class MemorySanitizer:
    """Tracks buffer ownership across the simulation's isolation boundaries.

    Args:
        strict: raise :class:`SanitizerError` at the first error-severity
            violation (the CI mode).  ``False`` accumulates findings in
            :attr:`report` for inspection (the injection-test mode).
        subject: label for the report header.
    """

    def __init__(self, strict: bool = True, subject: str = "memory-sanitizer") -> None:
        self.strict = strict
        self.report = LintReport(subject=subject)
        self.checks = 0
        self._lock = threading.Lock()
        # root-buffer id -> (weakref to the registered array, cache key)
        self._cache_owned: Dict[int, Tuple[weakref.ref, str]] = {}  # guarded-by: self._lock
        # snapshot label -> [(weakref, state key, root id at capture)]
        self._snapshots: Dict[str, List[Tuple[weakref.ref, str, int]]] = {}  # guarded-by: self._lock
        # root ids deliberately un-protected via thaw()
        self._thawed: set = set()  # guarded-by: self._lock

    # --- violation plumbing ------------------------------------------

    def _violation(self, diag: Diagnostic) -> None:
        with self._lock:
            self.report.add(diag)
        if self.strict and diag.severity == "error":
            raise SanitizerError(LintReport(self.report.subject, [diag]))

    # --- collective boundary (UCP025) --------------------------------

    def on_collective(
        self,
        op: str,
        group_name: str,
        ranks: Sequence[int],
        inputs: Sequence[np.ndarray],
        outputs: Sequence[np.ndarray],
    ) -> List[Diagnostic]:
        """Check one collective's per-rank results for writable aliasing.

        NCCL semantics: every member receives a *private* buffer (the
        in-place case — a rank's own output aliasing its own input — is
        allowed).  Two ranks sharing one writable buffer, or a rank's
        output aliasing another rank's input, is the missing-``.copy()``
        bug (UCP025).  Read-only sharing is permitted: frozen broadcast
        fan-out is safe by construction.
        """
        self.checks += 1
        found: List[Diagnostic] = []
        outs = [np.asarray(o) for o in outputs]
        roots = [id(_root(o)) for o in outs]
        first_for_root: Dict[int, int] = {}
        for i, (out, rid) in enumerate(zip(outs, roots)):
            if not _writable(out):
                continue
            j = first_for_root.setdefault(rid, i)
            if j != i:
                found.append(error(
                    "UCP025",
                    f"{op} on group {group_name!r}: ranks {ranks[j]} and "
                    f"{ranks[i]} received writable views of one buffer "
                    f"(missing per-rank copy); a write by either corrupts "
                    f"the other",
                    location=f"{group_name}:{op}",
                ))
        in_roots: Dict[int, int] = {}
        for j, arr in enumerate(inputs):
            in_roots.setdefault(id(_root(np.asarray(arr))), j)
        for i, (out, rid) in enumerate(zip(outs, roots)):
            j = in_roots.get(rid)
            if j is not None and j != i and _writable(out):
                found.append(error(
                    "UCP025",
                    f"{op} on group {group_name!r}: rank {ranks[i]}'s result "
                    f"is a writable alias of rank "
                    f"{ranks[j] if j < len(ranks) else j}'s input buffer",
                    location=f"{group_name}:{op}",
                ))
        for diag in found:
            self._violation(diag)
        return found

    # --- snapshot boundary (UCP026) ----------------------------------

    def guard_snapshot(
        self,
        label: str,
        captured: Iterable[Tuple[str, np.ndarray]],
        live: Iterable[Tuple[str, np.ndarray]],
    ) -> List[Diagnostic]:
        """Register a point-in-time capture and check it against live state.

        Every captured array must be backed by memory disjoint from the
        live engine state (else a later training step leaks into the
        persisted files — UCP026).  Clean captures are write-protected
        so the background persist writes exactly the captured bytes.
        """
        self.checks += 1
        live_roots: Dict[int, str] = {}
        for key, arr in live:
            live_roots.setdefault(id(_root(arr)), key)
        found: List[Diagnostic] = []
        entries: List[Tuple[weakref.ref, str, int]] = []
        for key, arr in captured:
            rid = id(_root(arr))
            live_key = live_roots.get(rid)
            if live_key is not None:
                found.append(error(
                    "UCP026",
                    f"snapshot {label!r}: captured state {key} aliases live "
                    f"engine state {live_key}; training past the snapshot "
                    f"instant would leak into the persisted files",
                    location=f"{label}:{key}",
                ))
            else:
                arr.setflags(write=False)
                entries.append((weakref.ref(arr), key, rid))
        with self._lock:
            # prune snapshots whose arrays are all gone (superseded
            # commits), keeping the registry bounded over long runs
            for old in [
                lbl for lbl, ents in self._snapshots.items()
                if all(ref() is None for ref, _, _ in ents)
            ]:
                del self._snapshots[old]
            self._snapshots[label] = entries
        for diag in found:
            self._violation(diag)
        return found

    def verify_snapshot(
        self, label: str, live: Iterable[Tuple[str, np.ndarray]]
    ) -> List[Diagnostic]:
        """Re-check a registered capture at persist time (UCP026).

        Training may have advanced arbitrarily since the capture; the
        snapshot buffers must still be disjoint from the live state and
        still write-protected (unless explicitly :meth:`thaw`-ed).
        """
        self.checks += 1
        live_roots: Dict[int, str] = {}
        for key, arr in live:
            live_roots.setdefault(id(_root(arr)), key)
        found: List[Diagnostic] = []
        with self._lock:
            entries = list(self._snapshots.get(label, ()))
            thawed = set(self._thawed)
        for ref, key, rid in entries:
            arr = ref()
            if arr is None:
                continue
            live_key = live_roots.get(id(_root(arr)))
            if live_key is not None:
                found.append(error(
                    "UCP026",
                    f"snapshot {label!r}: state {key} aliases live engine "
                    f"state {live_key} at persist time; the files would "
                    f"record post-snapshot training",
                    location=f"{label}:{key}",
                ))
            elif _writable(arr) and rid not in thawed:
                found.append(error(
                    "UCP026",
                    f"snapshot {label!r}: write protection of {key} was "
                    f"removed before the background persist completed",
                    location=f"{label}:{key}",
                ))
        for diag in found:
            self._violation(diag)
        return found

    # --- cache boundary (UCP027 / UCP028) ----------------------------

    def register_cache(self, key: str, arr: np.ndarray) -> None:
        """Record one cached array (atom LRU / shard cache) as cache-owned.

        The array is write-protected; :meth:`check_cache_integrity`
        later flags any cache-owned buffer that became writable again
        without :meth:`thaw` (UCP027), and :meth:`check_engine` flags
        engine state backed by cache memory (UCP028).

        Integrity is tracked on the buffer's *root owner*: a cache may
        register both an atom and a shard view of it, but un-protecting
        the owner is what makes poisoning possible, so that is the
        object the scan watches.  The first registration for a buffer
        keeps its key (the owner's name, not a view's).
        """
        arr.setflags(write=False)
        root = _root(arr)
        if isinstance(root, np.ndarray):
            root.setflags(write=False)
            target = root
        else:
            target = arr
        with self._lock:
            self._cache_owned.setdefault(
                id(root), (weakref.ref(target), key)
            )

    def _cache_key_for(self, rid: int) -> Optional[str]:
        with self._lock:
            entry = self._cache_owned.get(rid)
            if entry is None:
                return None
            ref, key = entry
            if ref() is None:
                self._cache_owned.pop(rid, None)
                return None
        return key

    def check_cache_integrity(self, context: str = "") -> List[Diagnostic]:
        """Scan cache-owned buffers for lost write protection (UCP027)."""
        self.checks += 1
        found: List[Diagnostic] = []
        with self._lock:
            items = list(self._cache_owned.items())
            thawed = set(self._thawed)
        for rid, (ref, key) in items:
            arr = ref()
            if arr is None:
                with self._lock:
                    self._cache_owned.pop(rid, None)
                continue
            if _writable(arr) and rid not in thawed:
                where = f"{context}: " if context else ""
                found.append(error(
                    "UCP027",
                    f"{where}cached state {key} became writable again "
                    f"(cache poisoning): every later reader of this block "
                    f"would see the mutation as verified data",
                    location=key,
                ))
        for diag in found:
            self._violation(diag)
        return found

    # --- engine sweep (UCP025 + UCP028) ------------------------------

    def check_engine(self, engine, context: str = "") -> List[Diagnostic]:
        """Sweep an engine's per-rank state for isolation violations.

        Two simulated ranks sharing one writable base buffer is UCP025;
        rank state backed by a cache-owned buffer (a loaded parameter
        that stayed a view of an atom/block cache entry) is UCP028.
        Model-parameter buffers are swept too: a parameter whose memory
        aliases a rank's optimizer partition writes through every
        ``sync_model_from_masters`` — the cross-rank alias the shard
        enumeration labels with its owning mp coordinates.
        """
        self.checks += 1
        where = f"{context}: " if context else ""
        found: List[Diagnostic] = []
        owners: Dict[int, Tuple[str, str]] = {}
        for key, arr in zero_state_arrays(engine.zero):
            rank_label = key.split(":", 1)[0]
            rid = id(_root(arr))
            cache_key = self._cache_key_for(rid)
            if cache_key is not None:
                found.append(error(
                    "UCP028",
                    f"{where}rank state {key} aliases cached atom "
                    f"{cache_key}; a training step on this rank would "
                    f"poison the shared cache (and every rank loading "
                    f"from it)",
                    location=key,
                ))
            if not _writable(arr):
                continue
            prev = owners.get(rid)
            if prev is not None and prev[0] != rank_label:
                found.append(error(
                    "UCP025",
                    f"{where}simulated ranks {prev[0]} and {rank_label} "
                    f"share one writable base buffer ({prev[1]} aliases "
                    f"{key})",
                    location=key,
                ))
            else:
                owners.setdefault(rid, (rank_label, key))
        for key, arr in model_param_arrays(engine):
            rid = id(_root(arr))
            cache_key = self._cache_key_for(rid)
            if cache_key is not None:
                found.append(error(
                    "UCP028",
                    f"{where}model parameter {key} aliases cached atom "
                    f"{cache_key}; the next optimizer sync would poison "
                    f"the shared cache",
                    location=key,
                ))
            if not _writable(arr):
                continue
            prev = owners.get(rid)
            if prev is not None:
                found.append(error(
                    "UCP025",
                    f"{where}model parameter {key} is a writable alias of "
                    f"rank state {prev[1]}: a parameter write on the "
                    f"sharing ranks silently rewrites another rank's "
                    f"optimizer partition",
                    location=key,
                ))
        for diag in found:
            self._violation(diag)
        return found

    # --- escape hatches ----------------------------------------------

    def claim(self, arr: np.ndarray) -> np.ndarray:
        """Ownership transfer by copy: a writable private copy of ``arr``."""
        return np.array(arr)

    def thaw(self, arr: np.ndarray) -> np.ndarray:
        """Deliberately re-enable writes on a protected array, in place.

        The buffer is recorded so integrity scans do not flag it; the
        caller takes responsibility for every alias of it.
        """
        with self._lock:
            self._thawed.add(id(_root(arr)))
        arr.setflags(write=True)
        return arr


# --- activation --------------------------------------------------------

_STACK: List[MemorySanitizer] = []


def current() -> Optional[MemorySanitizer]:
    """The innermost active sanitizer, or ``None``.

    Instrumented modules (collectives, snapshot capture, atom caches,
    the UCP loader) call this on their hot paths; inactive cost is one
    list check.
    """
    return _STACK[-1] if _STACK else None


def enabled_from_env() -> bool:
    """Whether ``REPRO_SANITIZE`` requests a sanitized run."""
    return os.environ.get(ENV_VAR, "") not in ("", "0")


@contextlib.contextmanager
def sanitize(strict: bool = True, subject: str = "memory-sanitizer"):
    """Activate a :class:`MemorySanitizer` for the enclosed block.

    Nested activations stack; hooks always report to the innermost one,
    so an injection test may run its own permissive sanitizer inside a
    strict session-wide one.  On exit a final cache-integrity scan runs
    (catching poisoning that happened after the last instrumented call).
    """
    san = MemorySanitizer(strict=strict, subject=subject)
    _STACK.append(san)
    try:
        yield san
        san.check_cache_integrity(context="exit scan")
    finally:
        _STACK.remove(san)


def check_engine_isolation(engine, sanitizer: Optional[MemorySanitizer] = None) -> LintReport:
    """Standalone rank-isolation sweep of one engine (UCP025/UCP028).

    Uses the given sanitizer's cache-ownership knowledge when provided
    (or the active one), else a fresh permissive instance — callable
    from tests without any activation ceremony.
    """
    san = sanitizer if sanitizer is not None else current()
    if san is None:
        san = MemorySanitizer(strict=False, subject="engine-isolation")
        san.check_engine(engine)
        return san.report
    report = LintReport(subject="engine-isolation")
    report.extend(san.check_engine(engine))
    return report
