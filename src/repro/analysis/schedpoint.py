"""Scheduler hook registry for the interleaving explorer.

The cooperative scheduler (:mod:`repro.analysis.interleave`) does not
instrument code itself — it reuses the yield points the runtime
checkers already own: :class:`~repro.analysis.lockwitness.WitnessedLock`
acquire/release, the ``BlockCache`` accessor hooks behind UCP030, and
the :class:`~repro.analysis.fswitness.FSOpRecorder` store-op hooks.
Those modules cannot import :mod:`repro.analysis.interleave` (it
imports them), so the one shared global lives here, in a module with
no dependencies that everyone can import at module scope.

Cost model: when no controller is installed every hook site is a
single module-global load plus a ``None`` check — the same
zero-when-off contract as the sanitizer and the lock witness, and the
property ``benchmarks/test_interleave_overhead.py`` gates.
"""

from __future__ import annotations

from typing import Optional

_CONTROLLER: Optional[object] = None
"""The active cooperative scheduler, or None (the common case)."""


def controller() -> Optional[object]:
    """The installed controller, or None when no exploration is live."""
    return _CONTROLLER


def install(ctl: object) -> None:
    """Install ``ctl`` as the active controller (one at a time).

    Nested explorations are a programming error — a controlled thread
    reaching a second scheduler could deadlock both — so installation
    over a live controller raises instead of stacking.
    """
    global _CONTROLLER
    if _CONTROLLER is not None and _CONTROLLER is not ctl:
        raise RuntimeError(
            "an interleaving controller is already installed; "
            "nested explorations are not supported"
        )
    _CONTROLLER = ctl


def uninstall(ctl: object) -> None:
    """Remove ``ctl``; a no-op if something else is installed."""
    global _CONTROLLER
    if _CONTROLLER is ctl:
        _CONTROLLER = None
