"""AST source lint over ``src/repro`` itself (``repro lint-src``).

The runtime sanitizer (:mod:`repro.analysis.sanitizer`) catches
isolation violations when they *happen*; this module flags the code
patterns that *cause* them, statically, before any test runs:

========  ===========================  =======================================
rule      name                         pattern
========  ===========================  =======================================
SRC001    collective-result-no-copy    a collective's result stored into a
                                       long-lived structure (attribute, keyed
                                       container, ``append``) without ``.copy()``
SRC002    frombuffer-escape            an ``np.frombuffer`` view escaping its
                                       scope (returned, stored on an object,
                                       put in a container) still aliasing the
                                       source buffer
SRC003    unordered-set-iteration      iterating a ``set`` expression where the
                                       order reaches output (manifests,
                                       conversion plans) — nondeterministic
                                       under hash randomization
SRC004    mutable-default-argument     a mutable default (list/dict/set/
                                       ndarray) shared across calls
========  ===========================  =======================================

The lock-discipline rules SRC005-SRC008 (guarded-by annotations, static
lock-order cycles, blocking calls under a lock, guarded-container
escapes) live in :mod:`repro.analysis.locks`, and the crash-consistency
rules SRC009-SRC012 (publish-without-durable-temp, missing directory
fsync after a publish, temp-file leak on an exception path,
manifest-before-``latest`` commit-order violations) live in
:mod:`repro.analysis.fseffects`; both run as part of
:func:`lint_source_file` and can be filtered via ``repro lint-src
--locks`` / ``--fs``.

Both statically-safe sinks and the analysis' own limits are deliberate:
plain ``name = collective(...)`` assignments and slice-stores
``buf[a:b] = np.frombuffer(...)`` copy or stay local and are never
flagged.  SRC003 additionally follows set-typed *variables* within one
scope: a name whose every binding is a set expression
(``s = set(xs); ... for k in s:``) fires like the expression would,
while a name that is ever rebound to anything else — or shadowed by a
loop target, parameter, or import — is left alone.  No other rule has
dataflow.

Suppression: append ``# srclint: disable`` (all rules) or
``# srclint: disable=SRC002,SRC003`` to the offending physical line.

A committed baseline (``srclint-baseline.json``, ``{"RULE:file": count}``)
lets a gate adopt the lint on a codebase with known findings;
:func:`apply_baseline` subtracts up to the recorded count per key.  This
repo's baseline is empty — the tree lints clean.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, LintReport, error

COLLECTIVE_NAMES = {
    "all_reduce", "all_gather", "reduce_scatter", "all_to_all", "broadcast",
}
"""Call names treated as collectives (module functions or group methods)."""

_SAFE_METHODS = {"copy", "astype", "tolist", "item", "hex", "decode"}
"""Methods whose result no longer aliases the receiver's buffer."""

_ALIAS_METHODS = {"reshape", "view", "ravel", "squeeze", "transpose"}
"""Methods whose result still aliases the receiver's buffer (climb on)."""

_SAFE_CALLS = {
    "array", "copy", "ascontiguousarray", "asfortranarray", "concatenate",
    "sorted", "bytes", "bytearray", "float", "int", "str", "sum", "len",
}
"""Free functions that copy (or scalarize) their argument."""

_CONTAINER_ADD = {"append", "add", "insert", "setdefault", "extendleft"}
"""Receiver methods that store their argument into a container."""

_SORTED_FAMILY = {
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
}
"""Order-insensitive (or re-ordering) consumers of an iterable."""

_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference",
}

_MUTABLE_FACTORIES = {
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
    "zeros", "ones", "empty", "full", "arange", "array", "zeros_like",
    "ones_like",
}

_SUPPRESS_RE = re.compile(
    r"#\s*srclint:\s*disable(?:=([A-Za-z0-9_,\s]+))?"
)


def _call_name(func: ast.expr) -> Optional[str]:
    """Terminal name of a call target: ``f`` for ``f(..)``/``m.f(..)``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppression map: line -> rule set (``None`` = all rules)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        if m.group(1) is None:
            out[lineno] = None
        else:
            out[lineno] = {r.strip() for r in m.group(1).split(",") if r.strip()}
    return out


def _escape_context(
    call: ast.Call,
    parents: Dict[ast.AST, ast.AST],
    flag_return: bool,
) -> Optional[str]:
    """How (if at all) a call's aliasing result escapes its expression.

    Climbs the AST from the call through alias-preserving shapes
    (indexing, ``reshape``-family methods) until it hits either a safe
    sink (plain name assignment, ``.copy()``, slice-store into an
    existing buffer, arithmetic) or an escaping one.  Returns a short
    context label for escapes, ``None`` when provably local/copied.
    ``flag_return`` controls whether ``return``/``yield`` escapes — it
    does for ``frombuffer`` views, but returning a collective's result
    list is the collective API itself.
    """
    cur: ast.AST = call
    parent = parents.get(cur)
    while parent is not None:
        if isinstance(parent, ast.Subscript) and parent.value is cur:
            # indexing into the result: result[0] / result[a:b] still alias
            cur, parent = parent, parents.get(parent)
            continue
        if isinstance(parent, ast.Attribute) and parent.value is cur:
            grand = parents.get(parent)
            if isinstance(grand, ast.Call) and grand.func is parent:
                if parent.attr in _ALIAS_METHODS:
                    cur, parent = grand, parents.get(grand)
                    continue
                # .copy()/.astype() break aliasing; unknown methods are
                # given the benefit of the doubt (no dataflow here)
                return None
            return None
        if isinstance(parent, ast.Call):
            if parent.func is cur:
                return None
            name = _call_name(parent.func)
            if (
                isinstance(parent.func, ast.Attribute)
                and name in _CONTAINER_ADD
            ):
                return f"passed to .{name}()"
            if name in _SAFE_CALLS or name in _SORTED_FAMILY:
                return None
            # argument to an arbitrary function: out of scope
            return None
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute):
                    return "assigned to an attribute"
                if isinstance(target, ast.Subscript):
                    if isinstance(target.slice, ast.Slice):
                        continue  # buf[a:b] = ... copies into buf
                    return "stored under a container key"
                if isinstance(target, (ast.Tuple, ast.List)):
                    return "unpacked into multiple targets"
            return None  # plain local name(s)
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return "returned" if flag_return else None
        if isinstance(parent, (ast.List, ast.Tuple, ast.Set)):
            return "placed in a container literal"
        if isinstance(parent, ast.Dict):
            return "placed in a dict literal"
        if isinstance(parent, ast.Starred):
            cur, parent = parent, parents.get(parent)
            continue
        # BinOp/Compare/UnaryOp/condition/for-iter/etc.: produces a new
        # value or only reads — not an escape of the aliasing buffer
        return None
    return None


def _is_set_expr(node: ast.expr) -> bool:
    """Whether an expression is *shaped* like a set (no dataflow)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        if isinstance(node.func, ast.Name) and name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and name in _SET_METHODS:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
"""Nodes that open a new local namespace (plus the module itself)."""

_SET_AUG_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
"""Augmented ops that keep a set a set (``s |= ...`` etc.)."""


def _target_names(target: ast.expr) -> List[str]:
    """Every plain name bound by an assignment/loop target."""
    return [
        n.id for n in ast.walk(target) if isinstance(n, ast.Name)
    ]


def _scope_children(scope: ast.AST):
    """Walk a scope's nodes without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES + (ast.ClassDef,)):
            stack.extend(ast.iter_child_nodes(node))


def _set_typed_names(scope: ast.AST) -> Set[str]:
    """Names in ``scope`` whose *every* binding is a set expression.

    The one-scope dataflow behind SRC003's variable tracking: a name
    qualifies when it has at least one ``name = <set expr>`` binding
    and no binding of any other kind — a rebind to a non-set value, a
    loop/with/except target, a parameter, an import, or a
    ``global``/``nonlocal`` declaration all disqualify it, as does a
    non-set augmented assignment.
    """
    set_bound: Set[str] = set()
    disqualified: Set[str] = set()
    if isinstance(scope, _SCOPE_NODES):
        args = scope.args
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            disqualified.add(arg.arg)
    for node in _scope_children(scope):
        if isinstance(node, ast.Assign):
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                bucket = (
                    set_bound if _is_set_expr(node.value) else disqualified
                )
                bucket.add(node.targets[0].id)
            else:
                for target in node.targets:
                    disqualified.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign):
            if node.value is None:
                continue
            if isinstance(node.target, ast.Name):
                bucket = (
                    set_bound if _is_set_expr(node.value) else disqualified
                )
                bucket.add(node.target.id)
        elif isinstance(node, ast.NamedExpr):
            bucket = set_bound if _is_set_expr(node.value) else disqualified
            bucket.add(node.target.id)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) and not isinstance(
                node.op, _SET_AUG_OPS
            ):
                disqualified.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            disqualified.update(_target_names(node.target))
        elif isinstance(node, ast.comprehension):
            disqualified.update(_target_names(node.target))
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                disqualified.update(_target_names(node.optional_vars))
        elif isinstance(node, ast.ExceptHandler):
            if node.name is not None:
                disqualified.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            disqualified.update(node.names)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                disqualified.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, _SCOPE_NODES + (ast.ClassDef,)):
            name = getattr(node, "name", None)
            if name is not None:
                disqualified.add(name)
    return set_bound - disqualified


def _order_safe(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    """Whether the iteration order is laundered by an enclosing consumer.

    ``sorted(x for x in set(..))`` and friends are fine: the comprehension
    (or the iteration call) sits directly under an order-insensitive
    consumer.
    """
    parent = parents.get(node)
    # a generator/comprehension used as a bare call argument:
    # sorted(<comp>), len(<comp>), ...
    while isinstance(parent, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        node, parent = parent, parents.get(parent)
    if isinstance(parent, ast.Call) and node in parent.args:
        return _call_name(parent.func) in _SORTED_FAMILY
    return False


class _Checker:
    def __init__(self, rel: str, source: str, tree: ast.AST) -> None:
        self.rel = rel
        self.parents = _parent_map(tree)
        self.suppress = _suppressions(source)
        self.findings: List[Diagnostic] = []
        self.tree = tree
        self._set_vars_cache: Dict[ast.AST, Set[str]] = {}

    def _scope_of(self, node: ast.AST) -> ast.AST:
        """Nearest enclosing function/lambda scope, else the module."""
        cur = self.parents.get(node)
        while cur is not None and not isinstance(cur, _SCOPE_NODES):
            cur = self.parents.get(cur)
        return cur if cur is not None else self.tree

    def _is_set_typed_var(self, expr: ast.expr, node: ast.AST) -> bool:
        """Whether ``expr`` names a tracked set-typed local variable."""
        if not isinstance(expr, ast.Name):
            return False
        scope = self._scope_of(node)
        if scope not in self._set_vars_cache:
            self._set_vars_cache[scope] = _set_typed_names(scope)
        return expr.id in self._set_vars_cache[scope]

    def _emit(self, diag_factory, rule: str, lineno: int, message: str) -> None:
        rules = self.suppress.get(lineno, "absent")
        if rules is None or (rules != "absent" and rule in rules):
            return
        self.findings.append(
            diag_factory(rule, message, location=f"{self.rel}:{lineno}")
        )

    def run(self) -> List[Diagnostic]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._check_call(node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                self._check_iteration(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_defaults(node)
        return self.findings

    # SRC001 / SRC002 -------------------------------------------------

    def _check_call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        if name in COLLECTIVE_NAMES:
            ctx = _escape_context(node, self.parents, flag_return=False)
            if ctx is not None:
                self._emit(
                    error, "SRC001", node.lineno,
                    f"result of {name}() {ctx} without .copy(): in the "
                    f"single-process simulation every rank now holds the "
                    f"same mutable buffer",
                )
        elif name == "frombuffer":
            ctx = _escape_context(node, self.parents, flag_return=True)
            if ctx is not None:
                self._emit(
                    error, "SRC002", node.lineno,
                    f"np.frombuffer view {ctx} without a defensive copy: "
                    f"it still aliases the source buffer (a cache block "
                    f"or file mapping) and writes through it poison every "
                    f"other reader",
                )
        # iteration-shaped consumers of sets: list(set(..)), "".join(set(..))
        if (
            name in ("list", "tuple", "enumerate", "iter", "join")
            and node.args
            and _is_set_expr(node.args[0])
            and not _order_safe(node, self.parents)
        ):
            self._emit(
                error, "SRC003", node.lineno,
                f"{name}() over a set expression: element order depends "
                f"on the hash seed; sort first if the order can reach "
                f"manifests, plans, or files",
            )

    # SRC003 ----------------------------------------------------------

    def _check_iteration(self, node) -> None:
        iter_expr = node.iter
        if _is_set_expr(iter_expr):
            what = "a set expression"
        elif self._is_set_typed_var(iter_expr, node):
            what = f"set-typed variable {iter_expr.id!r}"
        else:
            return
        if _order_safe(node if isinstance(node, ast.For) else self.parents.get(node, node), self.parents):
            return
        lineno = getattr(node, "lineno", None) or iter_expr.lineno
        self._emit(
            error, "SRC003", lineno,
            f"iterating {what}: element order depends on the "
            f"hash seed; wrap in sorted() if the order can reach "
            f"manifests, plans, or files",
        )

    # SRC004 ----------------------------------------------------------

    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and _call_name(default.func) in _MUTABLE_FACTORIES
            )
            if mutable:
                self._emit(
                    error, "SRC004", default.lineno,
                    f"mutable default argument in {node.name}(): the one "
                    f"instance is shared across every call; default to "
                    f"None and allocate inside",
                )


def lint_source_file(path: Path, rel: str) -> List[Diagnostic]:
    """Lint one Python file; ``rel`` is the location prefix."""
    # imported lazily: both modules use this module's helpers at import
    # time
    from repro.analysis import fseffects, locks

    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    findings = _Checker(rel, source, tree).run()
    findings.extend(locks.lint_locks(rel, source, tree))
    findings.extend(fseffects.lint_fs_effects(rel, source, tree))
    return findings


def lint_source_tree(root: Path) -> LintReport:
    """Lint every ``*.py`` under ``root`` (deterministic order)."""
    root = Path(root)
    report = LintReport(subject=f"src:{root.name}")
    if root.is_file():
        report.extend(lint_source_file(root, root.name))
        return report
    for path in sorted(root.rglob("*.py")):
        rel = f"{root.name}/{path.relative_to(root).as_posix()}"
        report.extend(lint_source_file(path, rel))
    return report


def baseline_counts(report: LintReport) -> Dict[str, int]:
    """Baseline form of a report: ``{"RULE:file": count}`` (sorted keys)."""
    counts: Dict[str, int] = {}
    for diag in report.sorted_diagnostics():
        file_part = diag.location.rsplit(":", 1)[0]
        key = f"{diag.rule_id}:{file_part}"
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def stale_baseline_entries(
    report: LintReport, baseline: Dict[str, int]
) -> List[str]:
    """Baseline keys no longer backed by any current finding.

    The baseline is shrink-only: once the code a ``"RULE:file"`` entry
    excused is fixed, the entry must be deleted, or the gate fails —
    otherwise a stale allowance would silently excuse the next
    regression in that file.  Returns the offending keys, sorted.
    """
    current = baseline_counts(report)
    return sorted(
        key for key, allowed in baseline.items()
        if current.get(key, 0) < allowed
    )


def apply_baseline(report: LintReport, baseline: Dict[str, int]) -> LintReport:
    """Subtract known findings: up to ``baseline[key]`` per rule+file.

    Lets a gate adopt the lint incrementally — existing findings stay
    recorded in the committed baseline, *new* ones fail the build.
    """
    remaining = dict(baseline)
    kept = []
    for diag in report.sorted_diagnostics():
        key = f"{diag.rule_id}:{diag.location.rsplit(':', 1)[0]}"
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            kept.append(diag)
    return LintReport(subject=report.subject, diagnostics=kept)
