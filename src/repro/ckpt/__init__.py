"""Distributed checkpointing substrate (the pre-UCP world).

Implements DeepSpeed-style distributed checkpoints — per-rank files
tightly coupled to the parallelism strategy that wrote them — plus the
classic consolidated single-file baseline.  The strict loader raises on
any topology change, reproducing the paper's Fig 1 failure mode; UCP
(:mod:`repro.core`) is the system that lifts that restriction.
"""

from repro.ckpt.errors import (
    CheckpointError,
    CheckpointIncompatibleError,
    CheckpointIntegrityError,
    CheckpointNotFoundError,
)
from repro.ckpt.manifest import (
    read_manifest,
    require_manifest,
    verify_tag,
    write_manifest,
)
from repro.ckpt.naming import (
    LATEST_FILE,
    JOB_CONFIG_FILE,
    MANIFEST_FILE,
    model_states_name,
    optim_states_name,
    tag_for_step,
    zero3_model_states_name,
)
from repro.ckpt.saver import CheckpointInfo, save_distributed_checkpoint
from repro.ckpt.loader import (
    latest_committed_tag,
    load_distributed_checkpoint,
    read_job_config,
)
from repro.ckpt.consolidated import (
    load_consolidated_checkpoint,
    save_consolidated_checkpoint,
)
from repro.ckpt.snapshot import (
    SnapshotManager,
    tune_checkpoint_interval,
)
from repro.ckpt.inmemory import InMemoryCheckpoint
from repro.ckpt.planner import plan_resilience, young_daly_interval_hours
from repro.ckpt.retention import RetentionPolicy, prune_checkpoints

__all__ = [
    "CheckpointError",
    "CheckpointIncompatibleError",
    "CheckpointIntegrityError",
    "CheckpointNotFoundError",
    "read_manifest",
    "require_manifest",
    "verify_tag",
    "write_manifest",
    "LATEST_FILE",
    "JOB_CONFIG_FILE",
    "MANIFEST_FILE",
    "model_states_name",
    "optim_states_name",
    "tag_for_step",
    "zero3_model_states_name",
    "CheckpointInfo",
    "save_distributed_checkpoint",
    "latest_committed_tag",
    "load_distributed_checkpoint",
    "read_job_config",
    "save_consolidated_checkpoint",
    "load_consolidated_checkpoint",
    "SnapshotManager",
    "tune_checkpoint_interval",
    "InMemoryCheckpoint",
    "plan_resilience",
    "young_daly_interval_hours",
    "RetentionPolicy",
    "prune_checkpoints",
]
