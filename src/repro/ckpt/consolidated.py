"""Consolidated single-file checkpointing (the classic baseline).

The pre-distributed-checkpoint idiom: rank 0 gathers every parameter and
optimizer state into one consolidated file.  Portable across topologies
— but the paper's point is that producing it "unacceptably slows down
training and is impractical at extreme scales": the gather serializes
the full model through one rank and one file.  The benchmarks use this
as the upper-cost baseline against which both distributed checkpoints
and UCP are compared.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ckpt.errors import CheckpointIncompatibleError, CheckpointNotFoundError
from repro.models.configs import ModelConfig
from repro.storage.store import ObjectStore

CONSOLIDATED_FILE = "consolidated_checkpoint.npt"


def save_consolidated_checkpoint(
    engine, directory: str, store: Optional[ObjectStore] = None
) -> int:
    """Gather all state to a single file; returns bytes written.

    The gather is accounted as all-gather traffic on the cluster's
    tracker, modelling the consolidation cost the paper criticizes.
    """
    if store is None:
        store = ObjectStore(directory)
    fp32 = engine.zero.consolidated_tensors("fp32")
    exp_avg = engine.zero.consolidated_tensors("exp_avg")
    exp_avg_sq = engine.zero.consolidated_tensors("exp_avg_sq")

    world = engine.parallel_cfg.world_size
    if world > 1:
        gathered_bytes = sum(int(v.nbytes) for v in fp32.values()) * 3
        engine.cluster.tracker.record("all_gather", world, gathered_bytes)

    payload = {
        "model_config": engine.model_cfg.to_dict(),
        "iteration": engine.iteration,
        "optimizer_step": engine.zero.global_step,
        "fp32": fp32,
        "exp_avg": exp_avg,
        "exp_avg_sq": exp_avg_sq,
        "adam": engine.adam.hyperparameters(),
    }
    return store.save(CONSOLIDATED_FILE, payload)


def load_consolidated_checkpoint(
    engine, directory: str, store: Optional[ObjectStore] = None
) -> None:
    """Initialize any-topology engine state from a consolidated file."""
    if store is None:
        store = ObjectStore(directory)
    if not store.exists(CONSOLIDATED_FILE):
        raise CheckpointNotFoundError(
            f"no {CONSOLIDATED_FILE} in {directory}"
        )
    payload = store.load(CONSOLIDATED_FILE)
    saved = ModelConfig.from_dict(payload["model_config"])
    if saved != engine.model_cfg:
        raise CheckpointIncompatibleError(
            f"consolidated checkpoint is for model {saved.name!r}, engine "
            f"runs {engine.model_cfg.name!r}"
        )

    step = int(payload["optimizer_step"])
    _scatter_kind(engine, payload["fp32"], "fp32")
    _scatter_kind(engine, payload["exp_avg"], "exp_avg")
    _scatter_kind(engine, payload["exp_avg_sq"], "exp_avg_sq")
    for coord in engine.layout.mp_coords():
        for part in engine.zero.partitions[coord]:
            part.state.step = step
    engine.iteration = int(payload["iteration"])
    engine.sync_model_from_masters()


def _scatter_kind(engine, tensors, kind: str) -> None:
    """Shard consolidated tensors of one state kind into partitions."""
    dp = engine.parallel_cfg.dp
    for coord in engine.layout.mp_coords():
        rank_layout = engine.layout.rank_layout(*coord)
        flat = np.zeros(rank_layout.flat_numel, dtype=np.float32)
        for entry in rank_layout.entries:
            shard = engine.zero._shard_full_tensor(
                entry.name, tensors[entry.name], rank_layout.tp_rank
            )
            flat[entry.offset : entry.end] = shard.reshape(-1)
        size = rank_layout.partition_numel
        for d in range(dp):
            target = engine.zero._partition_array(
                engine.zero.partitions[coord][d], kind
            )
            target[...] = flat[d * size : (d + 1) * size]
