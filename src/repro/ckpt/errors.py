"""Checkpoint error hierarchy."""

from __future__ import annotations


class CheckpointError(RuntimeError):
    """Base class for checkpoint failures."""


class CheckpointNotFoundError(CheckpointError):
    """No checkpoint (or requested tag) exists at the given path."""


class CheckpointIncompatibleError(CheckpointError):
    """A distributed checkpoint cannot load under the current topology.

    This is the paper's Fig 1 failure: per-rank checkpoint files are
    tightly coupled to the parallelism strategy and hardware
    configuration that wrote them, so loading under a different
    strategy hits missing files or name/shape mismatches.
    """
