"""Checkpoint error hierarchy."""

from __future__ import annotations

from repro.storage.serializer import SerializationError


class CheckpointError(RuntimeError):
    """Base class for checkpoint failures."""


class CheckpointNotFoundError(CheckpointError):
    """No checkpoint (or requested tag) exists at the given path."""


class CheckpointIncompatibleError(CheckpointError):
    """A distributed checkpoint cannot load under the current topology.

    This is the paper's Fig 1 failure: per-rank checkpoint files are
    tightly coupled to the parallelism strategy and hardware
    configuration that wrote them, so loading under a different
    strategy hits missing files or name/shape mismatches.
    """


class CheckpointIntegrityError(CheckpointError, SerializationError):
    """A checkpoint's on-disk state does not match its commit record.

    Raised when a tag has no manifest (the save never committed), when
    a manifest-listed file is missing or hashes differently than it did
    at commit time, or when an object fails structural validation.
    Subclasses :class:`SerializationError` too, because every byte-level
    corruption the serializer detects surfaces through this type on the
    checkpoint read path — callers can catch either level.
    """
