"""Gemini-style in-memory checkpointing with peer replication.

Gemini (SOSP'23, the paper's Related Work) checkpoints GPU state into
the *CPU memory of peer machines* every iteration, so failure recovery
reads from RAM instead of remote storage.  We reproduce the mechanism
over the simulated cluster: each (mp, dp) partition is replicated into
the memory of ``replication_factor`` peer ranks chosen to avoid
co-locating replicas with their owner, and recovery reconstructs state
from the surviving replicas.

The comparison the UCP paper draws: Gemini recovers *fast* but only
onto the **same** topology; UCP recovers onto **any** topology at the
cost of a conversion.  The checkpoint-strategies benchmark quantifies
both sides.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis import lockwitness as _lockwitness
from repro.analysis import schedpoint as _schedpoint
from repro.ckpt.errors import CheckpointError

PartitionKey = Tuple[Tuple[int, int, int], int]
"""((pp, sp, tp), dp_rank)."""


@dataclasses.dataclass
class _Replica:
    """One partition copy held in a peer rank's memory."""

    host_rank: int
    iteration: int
    fp32: np.ndarray
    exp_avg: np.ndarray
    exp_avg_sq: np.ndarray
    step: int


class InMemoryCheckpointError(CheckpointError):
    """Recovery is impossible: every replica of some partition is lost."""


class InMemoryCheckpoint:
    """Replicated in-RAM checkpoint for one engine's topology."""

    def __init__(self, engine, replication_factor: int = 2) -> None:
        world = engine.parallel_cfg.world_size
        if not 1 <= replication_factor <= world:
            raise ValueError(
                f"replication factor {replication_factor} out of range for "
                f"world size {world}"
            )
        self.engine = engine
        self.replication_factor = replication_factor
        self.iteration: Optional[int] = None
        # a supervisor thread may call recover()/surviving_replicas()
        # while a training thread is mid-commit; the replica map swap is
        # atomic under the lock and readers snapshot it
        self._lock = _lockwitness.make_lock("InMemoryCheckpoint._lock")
        self._replicas: Dict[PartitionKey, List[_Replica]] = {}  # guarded-by: self._lock
        self.commit_bytes = 0

    def _check_guarded(self, write: bool = False) -> None:
        """UCP030/interleave hook: every replica-map access under the
        lock reports itself (readers snapshot, commit swaps)."""
        ctl = _schedpoint._CONTROLLER
        if ctl is not None:
            ctl.on_access("InMemoryCheckpoint._replicas", write)
        witness = _lockwitness.current()
        if witness is not None:
            witness.check_guarded(self._lock, "InMemoryCheckpoint._replicas")

    def _owner_rank(self, coord, dp_rank: int) -> int:
        """The global rank that owns a partition."""
        from repro.dist.topology import RankCoord

        pp, sp, tp = coord
        return self.engine.cluster.topology.rank(
            RankCoord(tp=tp, pp=pp, dp=dp_rank, sp=sp)
        )

    def _replica_hosts(self, owner: int) -> List[int]:
        """Peer ranks hosting copies: the next ranks round-robin,
        never the owner itself (unless the world is size 1)."""
        world = self.engine.parallel_cfg.world_size
        if world == 1:
            return [0] * self.replication_factor
        hosts = []
        offset = 1
        while len(hosts) < self.replication_factor:
            hosts.append((owner + offset) % world)
            offset += 1
        return hosts

    def commit(self) -> int:
        """Replicate the current state into peer memory.

        Returns the bytes copied (accounted as broadcast traffic).
        """
        copied = 0
        iteration = self.engine.iteration
        staged: Dict[PartitionKey, List[_Replica]] = {}
        for coord, parts in self.engine.zero.partitions.items():
            for dp_rank, part in enumerate(parts):
                owner = self._owner_rank(coord, dp_rank)
                replicas = []
                for host in self._replica_hosts(owner):
                    replicas.append(
                        _Replica(
                            host_rank=host,
                            iteration=iteration,
                            fp32=part.fp32.copy(),
                            exp_avg=part.state.exp_avg.copy(),
                            exp_avg_sq=part.state.exp_avg_sq.copy(),
                            step=part.state.step,
                        )
                    )
                    copied += int(part.fp32.nbytes) * 3
                staged[(coord, dp_rank)] = replicas
        self._sanitize_commit(staged)
        # the expensive copy/sanitize work happened outside the lock;
        # a reader sees either the old complete map or the new one
        with self._lock:
            self._check_guarded(write=True)
            self._replicas = staged
            self.iteration = iteration
        self.commit_bytes = copied
        if self.engine.parallel_cfg.world_size > 1:
            self.engine.cluster.tracker.record(
                "broadcast", self.replication_factor, copied
            )
        return copied

    def _sanitize_commit(
        self, staged: Dict[PartitionKey, List[_Replica]]
    ) -> None:
        """Register the staged replicas with the active sanitizer.

        A replica aliasing the owner's live partition defeats the whole
        scheme — the "checkpoint" would track training instead of
        pinning an iteration (UCP026).  Clean replicas are frozen so a
        recovering rank cannot scribble on peer memory.  Runs on the
        commit-local ``staged`` map *before* it is published, so no lock
        is needed.  Lazy import: ``repro.ckpt`` stays free of analysis
        imports at module scope.
        """
        from repro.analysis import sanitizer as _sanitizer

        san = _sanitizer.current()
        if san is None:
            return

        def replica_arrays():
            for (coord, dp_rank), replicas in staged.items():
                pp, sp, tp = coord
                base = f"pp{pp}.sp{sp}.tp{tp}/dp{dp_rank}"
                for r in replicas:
                    yield f"{base}@host{r.host_rank}:fp32", r.fp32
                    yield f"{base}@host{r.host_rank}:exp_avg", r.exp_avg
                    yield f"{base}@host{r.host_rank}:exp_avg_sq", r.exp_avg_sq

        san.guard_snapshot(
            f"inmemory@it{self.engine.iteration}",
            replica_arrays(),
            _sanitizer.zero_state_arrays(self.engine.zero),
        )

    def surviving_replicas(self, failed_ranks: Set[int]) -> Dict[PartitionKey, int]:
        """How many replicas of each partition survive a failure set."""
        with self._lock:
            self._check_guarded()
            replicas_map = dict(self._replicas)
        return {
            key: sum(1 for r in replicas if r.host_rank not in failed_ranks)
            for key, replicas in replicas_map.items()
        }

    def recover(self, failed_ranks: Set[int]) -> int:
        """Restore the engine's state from surviving peer replicas.

        Gemini's constraint applies: the engine keeps its original
        topology (the failed ranks are assumed re-provisioned).  For a
        *changed* topology, persist to disk and go through UCP instead.

        Returns:
            The iteration recovered to.

        Raises:
            InMemoryCheckpointError: some partition lost all replicas.
        """
        with self._lock:
            self._check_guarded()
            iteration = self.iteration
            replicas_map = dict(self._replicas)
        if iteration is None:
            raise InMemoryCheckpointError("no committed in-memory checkpoint")
        dead = []
        for key, replicas in replicas_map.items():
            alive = [r for r in replicas if r.host_rank not in failed_ranks]
            if not alive:
                dead.append(key)
        if dead:
            raise InMemoryCheckpointError(
                f"{len(dead)} partitions lost every replica (e.g. {dead[0]}); "
                f"increase the replication factor or fall back to disk"
            )
        for (coord, dp_rank), replicas in replicas_map.items():
            source = next(
                r for r in replicas if r.host_rank not in failed_ranks
            )
            part = self.engine.zero.partitions[coord][dp_rank]
            part.fp32[...] = source.fp32
            part.state.exp_avg[...] = source.exp_avg
            part.state.exp_avg_sq[...] = source.exp_avg_sq
            part.state.step = source.step
        self.engine.iteration = iteration
        self.engine.sync_model_from_masters()
        return iteration

    @property
    def memory_bytes(self) -> int:
        """Total peer RAM consumed by the replicas."""
        with self._lock:
            self._check_guarded()
            return sum(
                int(r.fp32.nbytes) * 3
                for replicas in self._replicas.values()
                for r in replicas
            )
