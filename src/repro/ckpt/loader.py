"""Strict distributed checkpoint loading.

The loader demands that the checkpoint's per-rank files line up exactly
with the engine's layout: same files present, same flat-segment names,
offsets, and shard shapes, same partition sizes.  Any topology change
— different TP/PP/DP/SP degrees, different ZeRO stage, different world
size — surfaces as a :class:`CheckpointIncompatibleError`, reproducing
the name/shape mismatch failures the paper describes for existing
frameworks (Fig 1).  UCP is the escape hatch: convert to universal
format, then ``engine.load_universal``.

The loader also enforces the commit protocol: only tags with a commit
manifest are loadable, and every file read is verified against its
manifest digest — torn or tampered state raises
:class:`CheckpointIntegrityError` instead of loading garbage.
:func:`latest_committed_tag` is the recovery entry point the
crash-state enumerator (:mod:`repro.analysis.fswitness`) drives
against every enumerated post-crash disk state — a state from which it
fails, or selects an older tag than one durably committed, is a
UCP033 finding.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.ckpt import manifest as manifest_mod
from repro.ckpt import naming
from repro.ckpt.errors import (
    CheckpointIncompatibleError,
    CheckpointIntegrityError,
    CheckpointNotFoundError,
)
from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.storage.store import ObjectStore


def resolve_tag(store: ObjectStore, tag: Optional[str]) -> str:
    """The requested tag, or the one named by the ``latest`` file."""
    if tag is not None:
        return tag
    try:
        return store.read_text(naming.LATEST_FILE).strip()
    except FileNotFoundError:
        raise CheckpointNotFoundError(
            f"no 'latest' file in {store.base}; is this a checkpoint dir?"
        ) from None


def latest_committed_tag(directory: str) -> str:
    """The newest tag whose commit manifest is intact.

    The ``latest`` pointer is written *after* the manifest, so a crash
    between the two leaves a fully committed tag the pointer does not
    name yet; conversely a crash before the manifest leaves a newer
    directory that never committed.  Elastic recovery must trust
    neither the pointer nor directory mtimes: it scans every tag and
    picks the highest step whose manifest parses — torn or partial
    saves are skipped, committed-but-unpointed saves are found.

    Raises:
        CheckpointNotFoundError: no committed tag exists at all.
    """
    from repro.ckpt.retention import list_tags

    store = ObjectStore(directory)
    for tag in reversed(list_tags(directory)):
        if manifest_mod.read_manifest(store, tag) is not None:
            return tag
    raise CheckpointNotFoundError(
        f"no committed checkpoint tag under {directory}: every tag is "
        f"missing its commit manifest"
    )


def read_job_config(directory: str, tag: Optional[str] = None) -> Dict:
    """Read a checkpoint's job config (model/parallel configs, seeds).

    Verified against the tag's commit manifest when one exists; lenient
    about missing manifests so inspection of foreign or pre-protocol
    directories keeps working.
    """
    store = ObjectStore(directory)
    tag = resolve_tag(store, tag)
    rel = f"{tag}/{naming.JOB_CONFIG_FILE}"
    if not store.exists(rel):
        raise CheckpointNotFoundError(f"missing {rel} in {directory}")
    manifest = manifest_mod.read_manifest(store, tag)
    entry = manifest_mod.manifest_entry(manifest, naming.JOB_CONFIG_FILE)
    return manifest_mod.load_verified(store, rel, entry)


def _verified_rank_payload(
    store: ObjectStore, tag: str, basename: str, manifest: Dict
) -> Dict:
    """Load one rank file under the commit protocol.

    A file the manifest records but the disk lacks is integrity loss
    (the tag *was* committed with it); a file neither side has is a
    topology mismatch — the paper's Fig 1 failure.
    """
    rel = f"{tag}/{basename}"
    entry = manifest_mod.manifest_entry(manifest, basename)
    if not store.exists(rel):
        if entry is not None:
            raise CheckpointIntegrityError(
                f"missing rank file {rel}: it is recorded in the commit "
                f"manifest but absent on disk (deleted or lost after commit)"
            )
        raise CheckpointIncompatibleError(
            f"missing rank file {rel}: the checkpoint was saved under "
            f"a different topology or world size"
        )
    return manifest_mod.load_verified(store, rel, entry)


def _check_model_config(engine, job_config: Dict) -> None:
    saved = ModelConfig.from_dict(job_config["model_config"])
    if saved != engine.model_cfg:
        raise CheckpointIncompatibleError(
            f"checkpoint was written for model {saved.name!r}, engine runs "
            f"{engine.model_cfg.name!r}"
        )


def _check_segments(expected_meta: Dict, payload_meta: Dict, path: str) -> None:
    """Compare the engine's expected flat layout with the file's."""
    exp_segments = expected_meta["segments"]
    got_segments = payload_meta["segments"]
    exp_names = [s["name"] for s in exp_segments]
    got_names = [s["name"] for s in got_segments]
    if exp_names != got_names:
        missing = sorted(set(exp_names) - set(got_names))
        unexpected = sorted(set(got_names) - set(exp_names))
        raise CheckpointIncompatibleError(
            f"{path}: parameter name mismatch (missing={missing[:3]}..., "
            f"unexpected={unexpected[:3]}...); the checkpoint was saved "
            f"under a different parallelism strategy"
        )
    for exp, got in zip(exp_segments, got_segments):
        if (
            exp["shard_shape"] != got["shard_shape"]
            or exp["offset"] != got["offset"]
        ):
            raise CheckpointIncompatibleError(
                f"{path}: shape/offset mismatch for {exp['name']!r}: engine "
                f"expects shape {exp['shard_shape']} at offset "
                f"{exp['offset']}, file has {got['shard_shape']} at "
                f"{got['offset']}"
            )
    if expected_meta["partition_numel"] != payload_meta["partition_numel"]:
        raise CheckpointIncompatibleError(
            f"{path}: partition size mismatch: engine expects "
            f"{expected_meta['partition_numel']}, file has "
            f"{payload_meta['partition_numel']} (different DP width?)"
        )


def _load_per_param(
    engine, store: ObjectStore, tag: str, job_config: Dict, manifest: Dict
) -> None:
    """Strict load of a Megatron-classic per-parameter checkpoint.

    Requires zero_stage=0 on the engine (the layout implies replicated
    optimizer state) and the same model-parallel shape as the source.
    """
    cfg = engine.parallel_cfg
    if cfg.zero_stage != 0:
        raise CheckpointIncompatibleError(
            "per_param checkpoints carry unpartitioned optimizer state; "
            "the engine must run zero_stage=0 to load them strictly "
            "(or convert to UCP for any other stage)"
        )
    for coord in engine.layout.mp_coords():
        mp_rank = engine.layout.mp_rank_index(*coord)
        rank_layout = engine.layout.rank_layout(*coord)
        rel = f"{tag}/{naming.optim_states_name(0, mp_rank)}"
        payload = _verified_rank_payload(
            store, tag, naming.optim_states_name(0, mp_rank), manifest
        )
        states = payload["param_states"]
        expected = [e.name for e in rank_layout.entries]
        got = sorted(states["fp32"])
        if sorted(expected) != got:
            raise CheckpointIncompatibleError(
                f"{rel}: parameter name mismatch; the checkpoint was "
                f"saved under a different parallelism strategy"
            )
        step = int(payload["optimizer_step"])
        for kind in ("fp32", "exp_avg", "exp_avg_sq"):
            flat = np.zeros(rank_layout.flat_numel, dtype=np.float32)
            for entry in rank_layout.entries:
                shard = np.asarray(states[kind][entry.name], dtype=np.float32)
                if tuple(shard.shape) != entry.shard_shape:
                    raise CheckpointIncompatibleError(
                        f"{rel}: shape mismatch for {entry.name!r}: engine "
                        f"expects {entry.shard_shape}, file has {shard.shape}"
                    )
                flat[entry.offset : entry.end] = shard.reshape(-1)
            size = rank_layout.partition_numel
            for d in range(cfg.dp):
                part = engine.zero.partitions[coord][d]
                target = engine.zero._partition_array(part, kind)
                target[...] = flat[d * size : (d + 1) * size]
        for d in range(cfg.dp):
            engine.zero.partitions[coord][d].state.step = step
        scaler_state = payload.get("loss_scaler")
        if scaler_state is not None and engine.loss_scaler is not None:
            engine.loss_scaler.load_state_dict(scaler_state)

    engine.iteration = int(job_config["iteration"])
    engine.sync_model_from_masters()


def load_distributed_checkpoint(
    engine, directory: str, tag: Optional[str] = None
) -> str:
    """Load a distributed checkpoint into an engine with the same topology.

    Returns:
        The tag that was loaded.

    Raises:
        CheckpointNotFoundError: missing directory, tag, or rank file.
        CheckpointIncompatibleError: any topology/layout mismatch.
        CheckpointIntegrityError: the tag never committed (no manifest)
            or a file fails its digest / structural verification.
    """
    store = ObjectStore(directory)
    tag = resolve_tag(store, tag)
    job_config = read_job_config(directory, tag)
    _check_model_config(engine, job_config)
    manifest = manifest_mod.require_manifest(store, tag)

    cfg: ParallelConfig = engine.parallel_cfg
    saved_cfg = ParallelConfig.from_dict(job_config["parallel_config"])
    if saved_cfg.zero_stage != cfg.zero_stage:
        raise CheckpointIncompatibleError(
            f"checkpoint used ZeRO stage {saved_cfg.zero_stage}, engine is "
            f"configured for stage {cfg.zero_stage}"
        )

    if job_config.get("optimizer_layout", "flat") == "per_param":
        _load_per_param(engine, store, tag, job_config, manifest)
        return tag

    from repro.ckpt.saver import _partition_meta  # layout comparison helper

    for coord in engine.layout.mp_coords():
        mp_rank = engine.layout.mp_rank_index(*coord)
        rank_layout = engine.layout.rank_layout(*coord)
        dp_ranks = [0] if cfg.zero_stage == 0 else list(range(cfg.dp))
        for d in dp_ranks:
            rel = f"{tag}/{naming.optim_states_name(d, mp_rank)}"
            payload = _verified_rank_payload(
                store, tag, naming.optim_states_name(d, mp_rank), manifest
            )
            expected = _partition_meta(rank_layout, d)
            if cfg.zero_stage == 0:
                expected["partition_numel"] = rank_layout.flat_numel
            _check_segments(expected, payload["partition_meta"], rel)

            fp32 = np.asarray(payload["fp32_flat_partition"], dtype=np.float32)
            exp_avg = np.asarray(payload["exp_avg_flat_partition"], dtype=np.float32)
            exp_avg_sq = np.asarray(
                payload["exp_avg_sq_flat_partition"], dtype=np.float32
            )
            step = int(payload["optimizer_step"])
            if cfg.zero_stage == 0:
                size = rank_layout.partition_numel
                for dd in range(cfg.dp):
                    part = engine.zero.partitions[coord][dd]
                    part.fp32[...] = fp32[dd * size : (dd + 1) * size]
                    part.state.exp_avg[...] = exp_avg[dd * size : (dd + 1) * size]
                    part.state.exp_avg_sq[...] = exp_avg_sq[dd * size : (dd + 1) * size]
                    part.state.step = step
            else:
                part = engine.zero.partitions[coord][d]
                if fp32.size != part.numel:
                    raise CheckpointIncompatibleError(
                        f"{rel}: partition has {fp32.size} elements, engine "
                        f"expects {part.numel}"
                    )
                part.fp32[...] = fp32
                part.state.exp_avg[...] = exp_avg
                part.state.exp_avg_sq[...] = exp_avg_sq
                part.state.step = step

            scaler_state = payload.get("loss_scaler")
            if scaler_state is not None and engine.loss_scaler is not None:
                engine.loss_scaler.load_state_dict(scaler_state)

    engine.iteration = int(job_config["iteration"])
    engine.sync_model_from_masters()
    return tag
