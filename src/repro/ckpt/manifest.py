"""Per-tag commit manifests: the crash-consistency record of a save.

A distributed save writes many independent rank files; without a commit
protocol a crash mid-save can leave a directory that *looks* complete.
The manifest closes that window:

1. every data file is committed (temp file + atomic rename) and its
   size + SHA-256 recorded;
2. ``<tag>/manifest.npt`` is committed with the full table — this is
   the tag's durable commit point;
3. only then is the ``latest`` marker atomically advanced.

Readers treat a manifest-less tag as uncommitted, and verify each file
they consume against its manifest entry, so a torn save is *never*
silently loaded — recovery either lands on the previous committed tag
or raises :class:`CheckpointIntegrityError`.

The protocol is not trusted on faith: SRC012 (``repro lint-src --fs``)
statically rejects any ``latest`` write a manifest publish does not
dominate, and the crash-state enumerator
(:mod:`repro.analysis.fswitness`) replays recorded save traces to
prove steps 1-3 actually survive every crash the persistence model
permits.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.ckpt import naming
from repro.ckpt.errors import CheckpointIntegrityError
from repro.storage.serializer import SerializationError, deserialize
from repro.storage.store import ObjectStore, sha256_hex

MANIFEST_VERSION = 1


def manifest_path(tag: str) -> str:
    """Store-relative path of a tag's manifest."""
    return f"{tag}/{naming.MANIFEST_FILE}"


def write_manifest(
    store: ObjectStore, tag: str, files: Dict[str, Dict]
) -> int:
    """Commit a tag's manifest; returns bytes written.

    Args:
        store: checkpoint-root store.
        tag: the tag being committed.
        files: basename -> {"nbytes": int, "sha256": hex} for every
            data file the save wrote under the tag.
    """
    payload = {"format_version": MANIFEST_VERSION, "tag": tag, "files": files}
    return store.save(manifest_path(tag), payload)


def read_manifest(store: ObjectStore, tag: str) -> Optional[Dict]:
    """A tag's manifest payload, or None when the tag is uncommitted.

    Raises:
        CheckpointIntegrityError: the manifest exists but is unreadable
            or from an unsupported version — the commit record itself
            is damaged, so nothing under the tag can be trusted.
    """
    rel = manifest_path(tag)
    if not store.exists(rel):
        return None
    try:
        payload = store.load(rel)
    except SerializationError as exc:
        raise CheckpointIntegrityError(
            f"{rel}: commit manifest is corrupt: {exc}"
        ) from exc
    version = payload.get("format_version")
    if version != MANIFEST_VERSION:
        raise CheckpointIntegrityError(
            f"{rel}: unsupported manifest version {version!r}; this build "
            f"reads version {MANIFEST_VERSION}"
        )
    return payload


def require_manifest(store: ObjectStore, tag: str) -> Dict:
    """A tag's manifest, or a typed error for uncommitted tags."""
    manifest = read_manifest(store, tag)
    if manifest is None:
        raise CheckpointIntegrityError(
            f"tag {tag!r} in {store.base} has no commit manifest: the save "
            f"that produced it never completed (or predates the commit "
            f"protocol); refusing to load a torn checkpoint"
        )
    return manifest


def manifest_entry(manifest: Optional[Dict], basename: str) -> Optional[Dict]:
    """The manifest record for one file, if the manifest covers it."""
    if manifest is None:
        return None
    return manifest["files"].get(basename)


def load_verified(
    store: ObjectStore, rel_path: str, entry: Optional[Dict], parallel: int = 1
) -> Any:
    """Read + deserialize one object, verifying its manifest entry.

    The bytes are read once: digest-checked against the commit record
    (when ``entry`` is present), then decoded.  Structural damage the
    serializer finds (truncation, bad magic, CRC failures) and digest
    mismatches both surface as :class:`CheckpointIntegrityError` whose
    message names the root cause.

    Raises:
        FileNotFoundError: no object at the path.
        CheckpointIntegrityError: digest mismatch or malformed bytes.
    """
    data = store.read_bytes(rel_path, parallel=parallel)
    if entry is not None and (
        len(data) != int(entry["nbytes"]) or sha256_hex(data) != entry["sha256"]
    ):
        # root-cause the mismatch: torn/corrupt bytes parse loudly,
        # while a well-formed file means out-of-band modification
        try:
            deserialize(data)
        except SerializationError as exc:
            raise CheckpointIntegrityError(f"{rel_path}: {exc}") from exc
        raise CheckpointIntegrityError(
            f"{rel_path}: content digest mismatch: the manifest recorded "
            f"{int(entry['nbytes'])} bytes / sha256 {entry['sha256'][:12]}…, "
            f"found {len(data)} bytes / {sha256_hex(data)[:12]}… — the "
            f"object was modified after commit"
        )
    try:
        return deserialize(data)
    except SerializationError as exc:
        raise CheckpointIntegrityError(f"{rel_path}: {exc}") from exc


def verify_streaming(reader, rel_path: str, entry: Optional[Dict]) -> None:
    """Digest-verify one object in bounded chunks via a range reader.

    The streaming counterpart of :func:`load_verified`'s integrity
    check: the file is hashed in window-sized chunks through a
    :class:`~repro.storage.rangeio.RangeReader`, so the whole object is
    never materialized and the verified blocks stay in the reader's
    shared cache for the consumer (extract, sliced load) to reuse —
    fixing the verify-then-reread double IO of the full-read path.

    Raises:
        FileNotFoundError: no object at the path.
        CheckpointIntegrityError: size or digest mismatch vs the
            manifest entry.
    """
    if entry is None:
        return
    nbytes = reader.size(rel_path)
    if nbytes != int(entry["nbytes"]):
        raise CheckpointIntegrityError(
            f"{rel_path}: size mismatch: the manifest recorded "
            f"{int(entry['nbytes'])} bytes, found {nbytes} — the object "
            f"was modified after commit"
        )
    digest = reader.digest(rel_path)
    if digest != entry["sha256"]:
        raise CheckpointIntegrityError(
            f"{rel_path}: content digest mismatch: the manifest recorded "
            f"sha256 {entry['sha256'][:12]}…, computed {digest[:12]}… — "
            f"the object was modified after commit"
        )


def refresh_entry(store: ObjectStore, tag: str, basename: str) -> None:
    """Re-record one file's size/digest from its current bytes.

    Maintenance hook for legitimate out-of-band edits (offline repair,
    metadata surgery): after rewriting ``<tag>/<basename>``, call this
    to re-commit the manifest so integrity checks reflect the new
    content.
    """
    manifest = require_manifest(store, tag)
    rel = f"{tag}/{basename}"
    data = store.read_bytes(rel)
    manifest["files"][basename] = {
        "nbytes": len(data),
        "sha256": sha256_hex(data),
    }
    store.save(manifest_path(tag), manifest)


def verify_tag(store: ObjectStore, tag: str, deep: bool = True) -> Dict[str, str]:
    """Check a committed tag's files against its manifest.

    Returns:
        rel path -> problem description; empty when the tag is intact.
        With ``deep`` the digest of every file is recomputed; without,
        only presence and size are checked.
    """
    manifest = require_manifest(store, tag)
    problems: Dict[str, str] = {}
    for basename, entry in manifest["files"].items():
        rel = f"{tag}/{basename}"
        if not store.exists(rel):
            problems[rel] = "listed in manifest but missing on disk"
            continue
        data = (store.base / rel).read_bytes()
        if len(data) != int(entry["nbytes"]):
            problems[rel] = (
                f"size mismatch: manifest records {entry['nbytes']} bytes, "
                f"found {len(data)}"
            )
        elif deep and sha256_hex(data) != entry["sha256"]:
            problems[rel] = "sha256 digest mismatch vs commit manifest"
    return problems
