"""Checkpoint directory layout and file naming conventions.

Mirrors DeepSpeed's on-disk layout::

    <dir>/latest                       <- text file naming the newest tag
    <dir>/global_step{N}/
        job_config.npt                 <- model + parallel config, seeds
        mp_rank_{MM}_model_states.npt  <- per model-parallel rank module
        zero_dp_rank_{D}_mp_rank_{MM}_optim_states.npt
        zero3_dp_rank_{D}_model_states.npt   (ZeRO-3 only)
        manifest.npt                   <- per-tag commit record (digests)

The manifest is written after every data file and ``latest`` is only
advanced after the manifest — a tag without a manifest is uncommitted
and is never trusted by the strict loader or the converter.
"""

from __future__ import annotations

import re

LATEST_FILE = "latest"
JOB_CONFIG_FILE = "job_config.npt"
MANIFEST_FILE = "manifest.npt"
TRACE_FILE = "collective_trace.npt"

_TAG_RE = re.compile(r"^global_step(\d+)$")


def tag_for_step(step: int) -> str:
    """Directory tag for a checkpoint at a global step."""
    if step < 0:
        raise ValueError(f"step must be >= 0, got {step}")
    return f"global_step{step}"


def step_from_tag(tag: str) -> int:
    """Inverse of :func:`tag_for_step`."""
    match = _TAG_RE.match(tag)
    if match is None:
        raise ValueError(f"malformed checkpoint tag {tag!r}")
    return int(match.group(1))


def model_states_name(mp_rank: int) -> str:
    """Module-state file for one model-parallel rank."""
    if mp_rank < 0:
        raise ValueError(f"mp_rank must be >= 0, got {mp_rank}")
    return f"mp_rank_{mp_rank:02d}_model_states.npt"


def optim_states_name(dp_rank: int, mp_rank: int) -> str:
    """ZeRO optimizer-partition file for one (dp, mp) rank pair."""
    if dp_rank < 0 or mp_rank < 0:
        raise ValueError(f"ranks must be >= 0, got dp={dp_rank} mp={mp_rank}")
    return f"zero_dp_rank_{dp_rank}_mp_rank_{mp_rank:02d}_optim_states.npt"


def zero3_model_states_name(dp_rank: int) -> str:
    """ZeRO-3 flat parameter-partition file for one dp rank."""
    if dp_rank < 0:
        raise ValueError(f"dp_rank must be >= 0, got {dp_rank}")
    return f"zero3_dp_rank_{dp_rank}_model_states.npt"
