"""Checkpoint-interval and resilience planning.

The paper motivates UCP with cluster-scale arithmetic: jobs like GPT-4
run on ~25,000 GPUs for ~100 days, node failures are routine, and
without flexible resumption every failure stalls the whole job until
the hardware is repaired.  This module makes that arithmetic
executable:

* Young/Daly optimal checkpoint interval from checkpoint cost and
  cluster MTBF;
* expected wasted GPU-hours per failure for three recovery policies —
  wait-for-repair (rigid checkpoints), elastic-continue (UCP on the
  surviving nodes), and in-memory recovery (Gemini, same-topology
  only);
* cluster MTBF composition from per-node rates.

Used by the checkpoint-strategies benchmark and the failover example.
"""

from __future__ import annotations

import dataclasses
import math


def cluster_mtbf_hours(node_mtbf_hours: float, num_nodes: int) -> float:
    """MTBF of the whole cluster: independent exponential node failures."""
    if node_mtbf_hours <= 0 or num_nodes < 1:
        raise ValueError("node_mtbf_hours must be > 0 and num_nodes >= 1")
    return node_mtbf_hours / num_nodes


def young_daly_interval_hours(
    checkpoint_cost_hours: float, mtbf_hours: float
) -> float:
    """Young/Daly first-order optimum: sqrt(2 * C * MTBF)."""
    if checkpoint_cost_hours <= 0 or mtbf_hours <= 0:
        raise ValueError("costs and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_cost_hours * mtbf_hours)


@dataclasses.dataclass(frozen=True)
class FailureCostModel:
    """Inputs for per-failure waste accounting.

    Attributes:
        num_gpus: cluster size.
        checkpoint_interval_hours: wall time between checkpoints.
        repair_hours: time to bring a failed node back.
        restart_hours: process restart + checkpoint load time.
        failed_fraction: share of GPUs a typical failure removes.
    """

    num_gpus: int
    checkpoint_interval_hours: float
    repair_hours: float
    restart_hours: float = 0.1
    failed_fraction: float = 0.01

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if min(self.checkpoint_interval_hours, self.repair_hours) < 0:
            raise ValueError("times must be >= 0")
        if not 0 < self.failed_fraction <= 1:
            raise ValueError("failed_fraction must be in (0, 1]")

    @property
    def lost_progress_hours(self) -> float:
        """Expected progress lost at the failure instant: half an interval."""
        return self.checkpoint_interval_hours / 2.0


def wasted_gpu_hours_wait_for_repair(model: FailureCostModel) -> float:
    """Rigid distributed checkpoints: the whole job idles until repair.

    Waste = all GPUs idle during (repair + restart), plus the re-done
    half interval of progress.
    """
    idle = (model.repair_hours + model.restart_hours) * model.num_gpus
    redo = model.lost_progress_hours * model.num_gpus
    return idle + redo


def wasted_gpu_hours_elastic(model: FailureCostModel, conversion_hours: float = 0.05) -> float:
    """UCP elastic continuation: survivors resume on a reduced topology.

    Waste = the failed GPUs idle during repair (unavoidable), the whole
    job stalled only for restart + conversion, plus the re-done half
    interval.
    """
    failed_gpus = model.num_gpus * model.failed_fraction
    idle_failed = model.repair_hours * failed_gpus
    stall = (model.restart_hours + conversion_hours) * model.num_gpus
    redo = model.lost_progress_hours * model.num_gpus
    return idle_failed + stall + redo


def wasted_gpu_hours_inmemory(model: FailureCostModel, recover_hours: float = 0.02) -> float:
    """Gemini in-memory recovery — but only once spare hardware exists.

    In-memory recovery needs a same-size replacement immediately; if a
    hot spare pool covers the failure, waste is just the recovery stall
    (no lost interval: Gemini checkpoints every iteration).  Without
    spares it degenerates to wait-for-repair.
    """
    return recover_hours * model.num_gpus


@dataclasses.dataclass(frozen=True)
class ResiliencePlan:
    """Summary comparison for one cluster configuration."""

    interval_hours: float
    mtbf_hours: float
    failures_per_30_days: float
    waste_wait_gpuh: float
    waste_elastic_gpuh: float
    waste_inmemory_gpuh: float

    @property
    def elastic_savings_fraction(self) -> float:
        """Share of waste UCP elasticity eliminates vs waiting."""
        if self.waste_wait_gpuh == 0:
            return 0.0
        return 1.0 - self.waste_elastic_gpuh / self.waste_wait_gpuh


def plan_resilience(
    num_gpus: int,
    gpus_per_node: int,
    node_mtbf_hours: float,
    checkpoint_cost_hours: float,
    repair_hours: float,
) -> ResiliencePlan:
    """End-to-end planning: interval, failure rate, and per-failure waste."""
    if gpus_per_node < 1 or num_gpus % gpus_per_node != 0:
        raise ValueError("num_gpus must be a positive multiple of gpus_per_node")
    nodes = num_gpus // gpus_per_node
    mtbf = cluster_mtbf_hours(node_mtbf_hours, nodes)
    interval = young_daly_interval_hours(checkpoint_cost_hours, mtbf)
    model = FailureCostModel(
        num_gpus=num_gpus,
        checkpoint_interval_hours=interval,
        repair_hours=repair_hours,
        failed_fraction=gpus_per_node / num_gpus,
    )
    return ResiliencePlan(
        interval_hours=interval,
        mtbf_hours=mtbf,
        failures_per_30_days=30 * 24 / mtbf,
        waste_wait_gpuh=wasted_gpu_hours_wait_for_repair(model),
        waste_elastic_gpuh=wasted_gpu_hours_elastic(model),
        waste_inmemory_gpuh=wasted_gpu_hours_inmemory(model),
    )
