"""Checkpoint retention: bounded disk usage for long runs.

A multi-month training job checkpointing every few minutes produces
thousands of tags; production systems keep a sliding window plus
periodic "anchor" checkpoints.  This module implements that policy
safely: the tag named by ``latest`` is never deleted, pruning is
atomic per tag, and cached UCP conversions of pruned tags are removed
with them.
"""

from __future__ import annotations

import dataclasses
import shutil
from typing import List, Optional

from repro.ckpt import naming
from repro.ckpt.errors import CheckpointNotFoundError
from repro.storage.store import ObjectStore


@dataclasses.dataclass(frozen=True)
class RetentionPolicy:
    """Which tags survive a pruning pass.

    Attributes:
        keep_last: newest tags always kept (>= 1; includes ``latest``).
        keep_every: additionally keep tags whose step is a multiple of
            this anchor interval (0 disables anchors).
    """

    keep_last: int = 3
    keep_every: int = 0

    def __post_init__(self) -> None:
        if self.keep_last < 1:
            raise ValueError("keep_last must be >= 1 (never prune latest)")
        if self.keep_every < 0:
            raise ValueError("keep_every must be >= 0")


def list_tags(directory: str) -> List[str]:
    """All checkpoint tags in a directory, sorted by step."""
    store = ObjectStore(directory)
    tags = []
    for path in sorted(store.base.iterdir()):
        if not path.is_dir():
            continue
        try:
            naming.step_from_tag(path.name)
        except ValueError:
            continue
        tags.append(path.name)
    return sorted(tags, key=naming.step_from_tag)


def prune_checkpoints(
    directory: str, policy: Optional[RetentionPolicy] = None
) -> List[str]:
    """Delete tags the policy does not protect; returns pruned tags.

    The ``latest`` tag is always protected even if the policy would
    not keep it.  Cached UCP conversions (``ucp_<tag>`` directories)
    of pruned tags are removed too.
    """
    policy = policy if policy is not None else RetentionPolicy()
    store = ObjectStore(directory)
    tags = list_tags(directory)
    if not tags:
        raise CheckpointNotFoundError(f"no checkpoint tags under {directory}")

    protected = set(tags[-policy.keep_last :])
    try:
        protected.add(store.read_text(naming.LATEST_FILE).strip())
    except FileNotFoundError:
        pass
    if policy.keep_every:
        for tag in tags:
            if naming.step_from_tag(tag) % policy.keep_every == 0:
                protected.add(tag)

    pruned = []
    for tag in tags:
        if tag in protected:
            continue
        shutil.rmtree(store.base / tag)
        ucp_cache = store.base / f"ucp_{tag}"
        if ucp_cache.is_dir():
            shutil.rmtree(ucp_cache)
        pruned.append(tag)
    return pruned
