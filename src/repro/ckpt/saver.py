"""Distributed checkpoint saving.

Each simulated rank persists exactly the state a real DeepSpeed rank
would: the dp-0 rank of every model-parallel group writes its module
shard (working precision), and every (dp, mp) rank writes its ZeRO
partition of the fp32 masters and Adam moments.  The files embed the
per-parameter sharding metadata (pattern + fragmenter) that the UCP
language later consumes — this *is* the "existing distributed
checkpoint saving logic does not need any change" property: UCP adds no
save-time work beyond metadata that is already known at save time.

Saves are crash-consistent: every file is an atomic commit, a per-tag
manifest (:mod:`repro.ckpt.manifest`) records each file's digest, and
``latest`` advances only after the manifest is durable.  That ordering
is machine-checked twice over: statically by the filesystem-effect
lint (SRC009-SRC012, ``repro lint-src --fs``) and at runtime by the
FS-op witness (:mod:`repro.analysis.fswitness`), whose crash-state
enumerator replays a recorded save trace and proves recovery from
every legal post-crash disk state (UCP032-UCP035).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.ckpt import manifest as manifest_mod
from repro.ckpt import naming
from repro.dist.topology import ParallelConfig
from repro.storage.store import ObjectStore


@dataclasses.dataclass(frozen=True)
class CheckpointInfo:
    """Summary of one completed save.

    ``files`` and ``total_bytes`` cover the data files only; the
    commit manifest is protocol overhead, reported via
    ``manifest_digest`` (the SHA-256 of the committed manifest bytes —
    a content identity for the whole tag).
    """

    directory: str
    tag: str
    step: int
    files: List[str]
    total_bytes: int
    simulated_write_s: float
    manifest_digest: str = ""


def _job_config_payload(engine) -> Dict:
    return {
        "model_config": engine.model_cfg.to_dict(),
        "parallel_config": engine.parallel_cfg.to_dict(),
        "seed": engine.seed,
        "data_seed": engine.data_seed,
        "global_batch_size": engine.global_batch_size,
        "seq_len": engine.seq_len,
        "iteration": engine.iteration,
        "mp_policy": engine.mp_policy.to_dict(),
        "adam": engine.adam.hyperparameters(),
    }


def _sharding_metadata(engine, names: List[str]) -> Dict:
    out = {}
    for name in names:
        spec = engine.layout.spec(name)
        entry = spec.to_dict()
        entry["pp_stages"] = list(engine.layout.stage_plan.stages_of(name))
        out[name] = entry
    return out


def _partition_meta(rank_layout, dp_rank: int) -> Dict:
    return {
        "dp_rank": dp_rank,
        "partition_numel": rank_layout.partition_numel,
        "flat_numel": rank_layout.flat_numel,
        "padding": rank_layout.padding,
        "alignment": rank_layout.alignment,
        "segments": [
            {
                "name": e.name,
                "offset": e.offset,
                "numel": e.numel,
                "shard_shape": list(e.shard_shape),
            }
            for e in rank_layout.entries
        ],
    }


def save_distributed_checkpoint(
    engine,
    directory: str,
    tag: Optional[str] = None,
    store: Optional[ObjectStore] = None,
    optimizer_layout: str = "flat",
    dump_trace: bool = False,
) -> CheckpointInfo:
    """Persist the engine's full training state as per-rank files.

    Args:
        engine: a :class:`repro.parallel.engine.TrainingEngine`.
        directory: checkpoint root (one directory per training job).
        tag: sub-directory name; defaults to ``global_step{iteration}``.
        store: optional pre-built store (shares accounting with caller).
        optimizer_layout: "flat" writes DeepSpeed-style flattened ZeRO
            partitions; "per_param" writes Megatron-classic per-tensor
            optimizer states (one dict entry per parameter shard) —
            only valid for ZeRO stage 0, where optimizer state is
            replicated across DP.
        dump_trace: also commit the cluster's collective trace into the
            tag (``collective_trace.npt``) so ``repro lint-trace`` can
            replay it offline; off by default — the trace is a debug
            artifact, not training state.
    """
    if optimizer_layout not in ("flat", "per_param"):
        raise ValueError(f"unknown optimizer_layout {optimizer_layout!r}")
    if optimizer_layout == "per_param" and engine.parallel_cfg.zero_stage != 0:
        raise ValueError(
            "per_param optimizer layout implies unpartitioned optimizer "
            "state (Megatron-classic); it requires zero_stage=0"
        )
    if store is None:
        store = ObjectStore(directory)
    tag = tag if tag is not None else naming.tag_for_step(engine.iteration)
    # every rank reaches the save path together; the labelled barrier
    # enters the collective trace so the race detector can prove the
    # save never interleaves with a rank still in the training step
    cluster = getattr(engine, "cluster", None)
    if cluster is not None:
        cluster.barrier(f"save:{tag}:enter")
    cfg: ParallelConfig = engine.parallel_cfg
    files: List[str] = []
    entries: Dict[str, Dict] = {}
    total = 0

    def _commit(basename: str, payload: Dict) -> None:
        # every data file is an atomic commit; its digest feeds the
        # tag manifest written at the end (the tag's commit point)
        nonlocal total
        nbytes, digest = store.save_with_digest(f"{tag}/{basename}", payload)
        entries[basename] = {"nbytes": nbytes, "sha256": digest}
        files.append(f"{tag}/{basename}")
        total += nbytes

    job_config = _job_config_payload(engine)
    job_config["optimizer_layout"] = optimizer_layout
    _commit(naming.JOB_CONFIG_FILE, job_config)

    scaler_state = (
        engine.loss_scaler.state_dict() if engine.loss_scaler is not None else None
    )

    for coord in engine.layout.mp_coords():
        pp_stage, sp_rank, tp_rank = coord
        mp_rank = engine.layout.mp_rank_index(*coord)
        rank_layout = engine.layout.rank_layout(*coord)
        names = [e.name for e in rank_layout.entries]

        if cfg.zero_stage < 3:
            shards = engine.zero.shard_tensors(coord)
            module = {
                entry.name: engine.mp_policy.working_copy(shards[entry.name])
                for entry in rank_layout.entries
            }
            payload = {
                "module": module,
                "iteration": engine.iteration,
                "mp_rank": mp_rank,
                "pp_stage": pp_stage,
                "sp_rank": sp_rank,
                "tp_rank": tp_rank,
                "parallel_config": cfg.to_dict(),
                "sharding": _sharding_metadata(engine, names),
            }
            _commit(naming.model_states_name(mp_rank), payload)
        else:
            # ZeRO-3: parameters are flat partitions per dp rank
            for d in range(cfg.dp):
                part = engine.zero.partitions[coord][d]
                payload = {
                    "flat_param_partition": engine.mp_policy.working_copy(part.fp32),
                    "iteration": engine.iteration,
                    "dp_rank": d,
                    "parallel_config": cfg.to_dict(),
                    "partition_meta": _partition_meta(rank_layout, d),
                    "sharding": _sharding_metadata(engine, names),
                }
                _commit(naming.zero3_model_states_name(d), payload)

        if optimizer_layout == "per_param":
            payload = {
                "param_states": {
                    kind: engine.zero.shard_tensors(coord, kind)
                    for kind in ("fp32", "exp_avg", "exp_avg_sq")
                },
                "optimizer_step": engine.zero.partitions[coord][0].state.step,
                "zero_stage": cfg.zero_stage,
                "parallel_config": cfg.to_dict(),
                "pp_stage": pp_stage,
                "sp_rank": sp_rank,
                "tp_rank": tp_rank,
                "adam": engine.adam.hyperparameters(),
                "loss_scaler": scaler_state,
                "sharding": _sharding_metadata(engine, names),
            }
            _commit(naming.optim_states_name(0, mp_rank), payload)
            continue

        dp_ranks = [0] if cfg.zero_stage == 0 else list(range(cfg.dp))
        for d in dp_ranks:
            if cfg.zero_stage == 0:
                fp32 = engine.zero.full_flat(coord, "fp32")
                exp_avg = engine.zero.full_flat(coord, "exp_avg")
                exp_avg_sq = engine.zero.full_flat(coord, "exp_avg_sq")
                step = engine.zero.partitions[coord][0].state.step
                meta = _partition_meta(rank_layout, 0)
                meta["partition_numel"] = rank_layout.flat_numel
            else:
                part = engine.zero.partitions[coord][d]
                fp32 = part.fp32
                exp_avg = part.state.exp_avg
                exp_avg_sq = part.state.exp_avg_sq
                step = part.state.step
                meta = _partition_meta(rank_layout, d)
            payload = {
                "fp32_flat_partition": fp32,
                "exp_avg_flat_partition": exp_avg,
                "exp_avg_sq_flat_partition": exp_avg_sq,
                "optimizer_step": step,
                "partition_meta": meta,
                "zero_stage": cfg.zero_stage,
                "parallel_config": cfg.to_dict(),
                "pp_stage": pp_stage,
                "sp_rank": sp_rank,
                "tp_rank": tp_rank,
                "adam": engine.adam.hyperparameters(),
                "loss_scaler": scaler_state,
                "sharding": _sharding_metadata(engine, names),
            }
            _commit(naming.optim_states_name(d, mp_rank), payload)

    # commit protocol: manifest after every data file, `latest` only
    # after the manifest — a crash anywhere leaves the previous tag
    # fully intact and this tag either committed or provably torn
    manifest_mod.write_manifest(store, tag, entries)
    manifest_digest = store.digest(manifest_mod.manifest_path(tag))
    store.write_text(naming.LATEST_FILE, tag)
    if cluster is not None:
        cluster.barrier(f"save:{tag}:commit")
    if dump_trace and cluster is not None and cluster.trace is not None:
        # debug sidecar, written after the commit barrier so an offline
        # `repro lint-trace` sees the save's full enter..commit section;
        # deliberately outside the manifest — it describes the job, not
        # the checkpointed state
        store.save(f"{tag}/{naming.TRACE_FILE}", cluster.trace.to_payload())
    return CheckpointInfo(
        directory=directory,
        tag=tag,
        step=engine.iteration,
        files=files,
        total_bytes=total,
        simulated_write_s=store.simulated_write_s,
        manifest_digest=manifest_digest,
    )
