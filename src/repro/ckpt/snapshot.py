"""CheckFreq-style asynchronous snapshotting and frequency tuning.

CheckFreq (FAST'21, the paper's Related Work) reduces checkpoint stalls
by splitting a save into a fast in-memory *snapshot* (GPU -> host copy,
blocks training briefly) and a background *persist* (host -> disk,
overlapped with subsequent compute), and by tuning the checkpoint
interval so total overhead stays under a budget.

We reproduce both mechanisms against the simulated engine.  The key
correctness property — a snapshot taken at step *t* persists exactly
the state a synchronous save at *t* would have written, even if
training advances before the persist completes — is what the tests pin
down.  UCP composes with this: the persisted files are ordinary
distributed checkpoints, so they remain convertible.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.analysis import lockwitness as _lockwitness
from repro.ckpt.saver import CheckpointInfo, save_distributed_checkpoint
from repro.parallel.zero import ZeroOptimizer


@dataclasses.dataclass
class EngineSnapshot:
    """A consistent point-in-time copy of an engine's training state."""

    iteration: int
    zero: ZeroOptimizer
    loss_scaler_state: Optional[Dict]
    source_engine: object  # config/topology provider (never mutated state)
    label: str = ""  # sanitizer registry key (unique per capture)


class _SnapshotView:
    """Engine look-alike backed by frozen snapshot state.

    Exposes exactly the attributes the checkpoint saver reads, with
    ``zero`` and ``iteration`` pinned to the snapshot instant.
    """

    def __init__(self, snapshot: EngineSnapshot) -> None:
        engine = snapshot.source_engine
        self.model_cfg = engine.model_cfg
        self.parallel_cfg = engine.parallel_cfg
        self.layout = engine.layout
        self.adam = engine.adam
        self.mp_policy = engine.mp_policy
        self.seed = engine.seed
        self.data_seed = engine.data_seed
        self.global_batch_size = engine.global_batch_size
        self.seq_len = engine.seq_len
        self.zero = snapshot.zero
        self.iteration = snapshot.iteration
        if snapshot.loss_scaler_state is not None and engine.loss_scaler is not None:
            from repro.optim.mixed_precision import LossScaler

            scaler = LossScaler()
            scaler.load_state_dict(snapshot.loss_scaler_state)
            self.loss_scaler = scaler
        else:
            self.loss_scaler = None


class SnapshotManager:
    """Two-phase checkpointing: snapshot now, persist later."""

    def __init__(self, engine) -> None:
        self.engine = engine
        # the persist phase is meant to run on a background thread while
        # the training thread keeps snapshotting; only the bookkeeping
        # is locked — disk writes happen outside the critical section
        self._lock = _lockwitness.make_lock("SnapshotManager._lock")
        self._pending: List[EngineSnapshot] = []  # guarded-by: self._lock
        self._captures = 0  # guarded-by: self._lock

    def snapshot(self) -> EngineSnapshot:
        """Capture a consistent copy of the current training state.

        This is the blocking phase (CheckFreq's GPU->host copy): cheap
        relative to disk I/O because it is memory-to-memory.
        """
        frozen = ZeroOptimizer(self.engine.layout, self.engine.adam)
        for coord, parts in self.engine.zero.partitions.items():
            frozen.partitions[coord] = [p.clone() for p in parts]
        with self._lock:
            self._captures += 1
            capture_id = self._captures
        snap = EngineSnapshot(
            iteration=self.engine.iteration,
            zero=frozen,
            loss_scaler_state=(
                self.engine.loss_scaler.state_dict()
                if self.engine.loss_scaler is not None
                else None
            ),
            source_engine=self.engine,
            label=f"snapshot#{capture_id}@it{self.engine.iteration}",
        )
        self._sanitize_capture(snap)
        with self._lock:
            self._pending.append(snap)
        return snap

    def persist(self, snapshot: EngineSnapshot, directory: str) -> CheckpointInfo:
        """Write a snapshot to disk (the background phase).

        Training may have advanced arbitrarily since ``snapshot()``;
        the files reflect the snapshot instant regardless.
        """
        self._sanitize_persist(snapshot)
        # the disk write must not happen under the lock (SRC007/UCP031):
        # a concurrent snapshot() would stall behind the whole persist
        info = save_distributed_checkpoint(_SnapshotView(snapshot), directory)
        with self._lock:
            if snapshot in self._pending:
                self._pending.remove(snapshot)
        return info

    def _sanitize_capture(self, snap: EngineSnapshot) -> None:
        """Register the capture with the active memory sanitizer (if any).

        The sanitizer checks every captured array is backed by memory
        disjoint from the live engine (a missing ``clone()`` is UCP026)
        and write-protects the clean captures so nothing can mutate them
        between capture and persist.  Lazy import: ``repro.ckpt`` never
        pulls in ``repro.analysis`` at module scope.
        """
        from repro.analysis import sanitizer as _sanitizer

        san = _sanitizer.current()
        if san is not None:
            san.guard_snapshot(
                snap.label,
                _sanitizer.zero_state_arrays(snap.zero),
                _sanitizer.zero_state_arrays(self.engine.zero),
            )

    def _sanitize_persist(self, snap: EngineSnapshot) -> None:
        """Re-verify a capture at persist time (UCP026 on regression)."""
        from repro.analysis import sanitizer as _sanitizer

        san = _sanitizer.current()
        if san is not None:
            san.verify_snapshot(
                snap.label, _sanitizer.zero_state_arrays(self.engine.zero)
            )

    def save_async(self, directory: str) -> EngineSnapshot:
        """Snapshot immediately; caller persists when convenient."""
        snap = self.snapshot()
        snap.pending_directory = directory  # type: ignore[attr-defined]
        return snap

    def drain(self) -> List[CheckpointInfo]:
        """Persist every outstanding snapshot (e.g. at shutdown)."""
        with self._lock:
            outstanding = list(self._pending)
        infos = []
        for snap in outstanding:
            directory = getattr(snap, "pending_directory", None)
            if directory is None:
                continue
            infos.append(self.persist(snap, directory))
        return infos

    @property
    def pending_count(self) -> int:
        """Snapshots captured but not yet persisted."""
        with self._lock:
            return len(self._pending)


@dataclasses.dataclass(frozen=True)
class FrequencyPlan:
    """A tuned checkpoint cadence."""

    interval_steps: int
    overhead_fraction: float
    expected_lost_steps_on_failure: float


def tune_checkpoint_interval(
    step_time_s: float,
    snapshot_time_s: float,
    max_overhead_fraction: float = 0.035,
    min_interval: int = 1,
    max_interval: int = 10_000,
) -> FrequencyPlan:
    """CheckFreq's tuning rule: the smallest interval whose blocking
    snapshot overhead stays under the budget.

    Smaller intervals lose fewer steps on failure; the snapshot stall
    (`snapshot_time_s` per checkpoint) is the price.  Persist time does
    not count — it overlaps training.
    """
    if step_time_s <= 0 or snapshot_time_s < 0:
        raise ValueError("step_time_s must be > 0 and snapshot_time_s >= 0")
    if not 0 < max_overhead_fraction < 1:
        raise ValueError("max_overhead_fraction must be in (0, 1)")
    for interval in range(min_interval, max_interval + 1):
        overhead = snapshot_time_s / (interval * step_time_s + snapshot_time_s)
        if overhead <= max_overhead_fraction:
            return FrequencyPlan(
                interval_steps=interval,
                overhead_fraction=overhead,
                expected_lost_steps_on_failure=interval / 2.0,
            )
    return FrequencyPlan(
        interval_steps=max_interval,
        overhead_fraction=snapshot_time_s
        / (max_interval * step_time_s + snapshot_time_s),
        expected_lost_steps_on_failure=max_interval / 2.0,
    )
