"""Command-line interface: inspect, convert, plan, verify.

Mirrors the operational surface DeepSpeed ships for UCP (the
``ds_to_universal``-style converter plus inspection tools)::

    python -m repro models
    python -m repro inspect   <dir>
    python -m repro convert   <ckpt_dir> <ucp_dir> [--tag T] [--workers N]
    python -m repro plan      <ckpt_dir> --world N [--batch B]
    python -m repro verify    <dir>
    python -m repro lint-ckpt <dir> [--tag T] [--format text|json] [--deep]
    python -m repro lint-plan --source <dir> --target tp2.pp1.dp4.sp1.zero1 \
        [--provenance]
    python -m repro lint-trace <trace.npt | ckpt_dir> [--tag T] \
        [--locks] [--fs [--state-cap N] [--crashed]]
    python -m repro lint-src  [root] [--baseline F] [--write-baseline] \
        [--locks] [--fs]
    python -m repro explore   <scenario | --list> [--schedules N] \
        [--preemptions K] [--schedule FILE] [--seed S] [--report PATH] \
        [--require-exhaustive] [--format text|json]
    python -m repro supervise --model M --topology tp2.pp2.dp2.sp1.zero1 \
        --workdir D [--kill STEP:PHASE:RANKS ...] [--format text|json]

Every command prints human-readable text and returns a process exit
code (0 success, 1 failure), so it scripts cleanly; the lint verbs
and ``supervise`` also offer ``--format json`` for CI gates.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.ckpt.loader import read_job_config
from repro.core.convert import DEFAULT_COALESCE_GAP, ucp_convert
from repro.core.patterns import program_for_config
from repro.core.resume import ElasticResumeManager
from repro.dist.topology import ParallelConfig
from repro.models import available_models, get_config
from repro.models.configs import ModelConfig


def cmd_models(args: argparse.Namespace) -> int:
    """List registered model configurations."""
    print(f"{'name':22s} {'family':8s} {'layers':>6s} {'hidden':>7s} "
          f"{'heads':>6s} {'experts':>7s}")
    for name in available_models():
        cfg = get_config(name)
        print(f"{name:22s} {cfg.family:8s} {cfg.num_layers:6d} "
              f"{cfg.hidden:7d} {cfg.num_heads:6d} {cfg.num_experts:7d}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    """Summarize a checkpoint or UCP directory."""
    from repro.core.inspect import inspect_directory

    summary = inspect_directory(args.directory)
    if summary.kind == "unknown":
        print(f"unrecognized directory ({summary.num_files} files)")
        return 1
    kind_label = "UCP" if summary.kind == "ucp" else summary.kind
    print(f"{kind_label} checkpoint")
    if summary.tag is not None:
        print(f"  tag:        {summary.tag}")
    if summary.model is not None:
        print(f"  model:      {summary.model.name} ({summary.model.family})")
    print(f"  iteration:  {summary.iteration}")
    if summary.parallel is not None:
        role = "source" if summary.kind == "ucp" else "topology"
        print(f"  {role}:     {summary.parallel.describe()} "
              f"({summary.parallel.world_size} ranks)")
    print(f"  files:      {summary.num_files} "
          f"({summary.total_bytes / 1e6:.1f} MB)")
    if summary.census is not None:
        label = "atoms" if summary.kind == "ucp" else "parameters"
        print(f"  {label}:      {summary.census.total_params} "
              f"({summary.census.total_elements:,} elements)")
        for pattern in sorted(summary.census.counts):
            print(f"    {pattern:20s} {summary.census.counts[pattern]:4d} params, "
                  f"{summary.census.elements[pattern]:,} elements")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    """Convert a distributed checkpoint to UCP format."""
    job = read_job_config(args.ckpt_dir, args.tag)
    model = ModelConfig.from_dict(job["model_config"])
    program = program_for_config(model, average_replicas=args.average_replicas)
    report = ucp_convert(
        args.ckpt_dir,
        args.ucp_dir,
        tag=args.tag,
        program=program,
        workers=args.workers,
        streaming=False if args.no_stream else "auto",
        window_bytes=args.window_bytes,
        coalesce_gap=args.coalesce_gap,
        digest_pool=args.digest_pool,
    )
    reused = f", {report.num_reused} reused" if report.num_reused else ""
    print(f"converted {report.source_tag}: {report.num_files} rank files -> "
          f"{report.num_params} atoms{reused} "
          f"({report.atom_bytes / 1e6:.1f} MB) "
          f"in {report.total_seconds:.2f}s")
    if report.stage_seconds:
        stages = " ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in report.stage_seconds.items()
        )
        print(f"stages:  {stages}")
    mode = "streamed" if report.streamed else "full-read"
    print(f"io:      {mode}, read {report.bytes_read / 1e6:.1f} MB / "
          f"wrote {report.bytes_written / 1e6:.1f} MB "
          f"(cache hits {report.cache_hits}, "
          f"peak window {report.peak_window_bytes / 1e6:.2f} MB)")
    if report.streamed:
        print(f"ranges:  {report.num_preads} preads in "
              f"{report.num_batches} batches, "
              f"{report.ranges_coalesced} ranges coalesced")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Plan a resume topology for a new world size."""
    job = read_job_config(args.ckpt_dir, None)
    source = ParallelConfig.from_dict(job["parallel_config"])
    batch = args.batch if args.batch else job["global_batch_size"]
    manager = ElasticResumeManager(args.ckpt_dir, global_batch_size=batch)
    plan = manager.plan_resize(source, args.world)
    print(f"source:  {source.describe()} ({source.world_size} ranks)")
    print(f"target:  {plan.target.describe()} "
          f"({plan.target.world_size} of {args.world} ranks)")
    print(f"reason:  {plan.reason}")
    if plan.target == source:
        print("note:    topologies match; resume loads directly (no conversion)")
    else:
        print("note:    resume will convert to UCP first (lazy, cached)")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Verify every object against checksums and commit manifests."""
    from repro.core.inspect import verify_directory

    report = verify_directory(args.directory, deep=not args.shallow)
    if report.total == 0:
        print(f"no .npt objects under {args.directory}")
        return 1
    suffix = ""
    if report.manifests:
        plural = "s" if report.manifests != 1 else ""
        suffix = f" against {report.manifests} commit manifest{plural}"
    print(f"verified {report.total - len(report.corrupt)}/{report.total} "
          f"objects{suffix}")
    for rel, err in report.corrupt:
        print(f"  CORRUPT {rel}: {err[:100]}")
    for rel, err in report.missing:
        print(f"  MISSING {rel}: {err[:100]}")
    return 0 if report.ok else 1


def cmd_lint_ckpt(args: argparse.Namespace) -> int:
    """Statically lint a checkpoint layout against its configs."""
    from repro.analysis import lint_checkpoint

    report = lint_checkpoint(args.directory, tag=args.tag, deep=args.deep)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def cmd_lint_plan(args: argparse.Namespace) -> int:
    """Statically prove a source -> target conversion well-formed."""
    from repro.analysis import lint_plan
    from repro.core.metadata import UCP_META_FILE, UCPMetadata
    from repro.storage.store import ObjectStore

    store = ObjectStore(args.source)
    atom_names = None
    if store.exists(UCP_META_FILE):
        meta = UCPMetadata.load(store)
        model = ModelConfig.from_dict(meta.model_config)
        source = ParallelConfig.from_dict(meta.source_parallel_config)
        atom_names = meta.param_names()
    else:
        job = read_job_config(args.source, args.tag)
        model = ModelConfig.from_dict(job["model_config"])
        source = ParallelConfig.from_dict(job["parallel_config"])
    target = ParallelConfig.from_describe(args.target)

    report = lint_plan(model, source, target, atom_names=atom_names)
    if getattr(args, "provenance", False):
        if report.ok:
            from repro.analysis import check_plan_provenance

            report.extend(check_plan_provenance(
                args.source, target, tag=args.tag, store=store
            ).diagnostics)
        else:
            print(
                "note: provenance pass skipped (structural lint failed)",
                file=sys.stderr,
            )
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def cmd_lint_trace(args: argparse.Namespace) -> int:
    """Analyze a recorded collective trace for races and deadlocks."""
    from repro.analysis import CollectiveTraceRecorder, check_trace
    from repro.ckpt import naming
    from repro.ckpt.loader import resolve_tag
    from repro.storage.store import ObjectStore
    import json as _json
    import pathlib

    if args.locks or args.fs:
        from repro.analysis import LintReport

        payload = _json.loads(pathlib.Path(args.trace).read_text())
        # one JSON file can carry both payloads ({"locks": .., "fs": ..});
        # a bare payload is accepted when a single family is requested
        families = []
        if args.locks:
            from repro.analysis import check_lock_trace

            families.append(check_lock_trace(payload.get("locks", payload)))
        if args.fs:
            from repro.analysis import check_fs_trace
            from repro.analysis.fswitness import DEFAULT_STATE_CAP

            families.append(check_fs_trace(
                payload.get("fs", payload),
                state_cap=(
                    args.state_cap if args.state_cap is not None
                    else DEFAULT_STATE_CAP
                ),
                clean_exit=not args.crashed,
            ))
        report = LintReport(
            subject="+".join(
                n for n, on in (("locks", args.locks), ("fs", args.fs)) if on
            )
        )
        for family in families:
            report.extend(family.diagnostics)
        if args.format == "json":
            print(report.to_json())
        else:
            print(report.render_text())
        return 0 if report.ok else 1

    path = pathlib.Path(args.trace)
    if path.is_dir():
        store = ObjectStore(str(path))
        tag = resolve_tag(store, args.tag)
        rel = f"{tag}/{naming.TRACE_FILE}"
        if not store.exists(rel):
            print(
                f"error: no {naming.TRACE_FILE} under {path}/{tag} (save "
                f"with dump_trace=True to record one)",
                file=sys.stderr,
            )
            return 1
        payload = store.load(rel)
    else:
        store = ObjectStore(str(path.parent))
        payload = store.load(path.name)
    recorder = CollectiveTraceRecorder.from_payload(payload)

    report = check_trace(recorder)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def cmd_lint_src(args: argparse.Namespace) -> int:
    """AST-lint the repro source tree itself (SRC001-SRC014)."""
    import json as _json
    import pathlib

    import repro
    from repro.analysis import LintReport
    from repro.analysis.srclint import (
        apply_baseline,
        baseline_counts,
        lint_source_tree,
        stale_baseline_entries,
    )

    root = pathlib.Path(
        args.root if args.root else pathlib.Path(repro.__file__).parent
    )
    report = lint_source_tree(root)
    if args.locks or args.fs:
        wanted = ()
        if args.locks:
            wanted += (
                "SRC005", "SRC006", "SRC007", "SRC008", "SRC013", "SRC014",
            )
        if args.fs:
            wanted += ("SRC009", "SRC010", "SRC011", "SRC012")
        report = LintReport(
            subject=report.subject,
            diagnostics=[
                d for d in report.diagnostics if d.rule_id in wanted
            ],
        )
    if args.write_baseline:
        pathlib.Path(args.write_baseline).write_text(
            _json.dumps(baseline_counts(report), indent=2, sort_keys=True)
            + "\n"
        )
        print(
            f"wrote baseline ({len(report.diagnostics)} findings) to "
            f"{args.write_baseline}"
        )
        return 0
    if args.baseline:
        baseline = _json.loads(pathlib.Path(args.baseline).read_text())
        stale = stale_baseline_entries(report, baseline)
        if stale:
            # shrink-only: an allowance no longer backed by a finding
            # must be deleted, or it would excuse the next regression
            for key in stale:
                print(f"stale baseline entry: {key}", file=sys.stderr)
            print(
                f"error: {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} in {args.baseline}; "
                f"remove them (the findings they excused are fixed)",
                file=sys.stderr,
            )
            return 1
        report = apply_baseline(report, baseline)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def cmd_explore(args: argparse.Namespace) -> int:
    """Explore thread interleavings of a concurrency scenario (DPOR)."""
    import pathlib

    from repro.analysis import interleave

    if args.list:
        width = max(len(n) for n in interleave.SCENARIOS)
        for name, desc in sorted(interleave.SCENARIOS.items()):
            print(f"{name:{width}s}  {desc}")
        return 0
    if args.scenario is None:
        print(
            "error: a scenario name is required (or --list)", file=sys.stderr
        )
        return 1
    if args.scenario not in interleave.SCENARIOS:
        known = ", ".join(sorted(interleave.SCENARIOS))
        print(
            f"error: unknown scenario {args.scenario!r} (known: {known})",
            file=sys.stderr,
        )
        return 1
    schedule = None
    if args.schedule:
        schedule = interleave.load_schedule(
            pathlib.Path(args.schedule).read_text()
        )
    cap = (
        interleave.DEFAULT_SCHEDULE_CAP
        if args.schedules is None
        else args.schedules
    )
    result = interleave.explore(
        args.scenario,
        schedules=cap,
        preemptions=args.preemptions,
        schedule=schedule,
        seed=args.seed,
    )
    if args.report is not None:
        with open(args.report, "w") as fh:
            fh.write(result.to_json() + "\n")
    if args.format == "json":
        print(result.to_json())
    else:
        print(result.render_text())
    if not result.ok:
        return 1
    if args.require_exhaustive and not result.exhaustive:
        print(
            f"error: exploration was bounded (ran {result.schedules_run} "
            f"schedules, cap {result.schedule_cap}, preemption bound "
            f"{result.preemption_bound}) but --require-exhaustive was set",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_supervise(args: argparse.Namespace) -> int:
    """Run a supervised training job across injected rank failures."""
    from repro.dist.supervisor import supervise
    from repro.storage.faults import KillSchedule

    model_cfg = get_config(args.model)
    parallel_cfg = ParallelConfig.from_describe(args.topology)
    if args.kill and args.kill_seed is not None:
        print(
            "error: --kill and --kill-seed are mutually exclusive",
            file=sys.stderr,
        )
        return 1
    if args.kill:
        schedule = KillSchedule.from_specs(args.kill)
        for event in schedule.events:
            if event.phase.startswith("save") and (
                event.step % args.save_every != 0 or event.step > args.steps
            ):
                print(
                    f"warning: kill {event.describe()} is armed on a "
                    f"non-save step (saves fire every {args.save_every} "
                    f"steps) and will never trigger",
                    file=sys.stderr,
                )
    elif args.kill_seed is not None:
        schedule = KillSchedule.random(
            args.kill_seed,
            world_size=parallel_cfg.world_size,
            horizon=args.steps,
            save_every=args.save_every,
            failures=args.failures,
        )
    else:
        schedule = KillSchedule()

    report = supervise(
        model_cfg,
        parallel_cfg,
        args.workdir,
        golden=not args.no_golden,
        horizon=args.steps,
        save_every=args.save_every,
        schedule=schedule,
        seed=args.seed,
        global_batch_size=args.batch,
        seq_len=args.seq_len,
    )
    if args.report is not None:
        with open(args.report, "w") as fh:
            fh.write(report.to_json() + "\n")
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    ok = not report.lost_committed_tags and all(
        e.integrity_ok for e in report.events
    )
    if report.continuity is not None:
        ok = ok and report.continuity.ok
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Universal Checkpointing tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list model configurations").set_defaults(
        func=cmd_models
    )

    p = sub.add_parser("inspect", help="summarize a checkpoint directory")
    p.add_argument("directory")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("convert", help="distributed checkpoint -> UCP")
    p.add_argument("ckpt_dir")
    p.add_argument("ucp_dir")
    p.add_argument("--tag", default=None, help="source tag (default: latest)")
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread count (default: min(8, cpu count); 0/1 = serial)",
    )
    p.add_argument(
        "--window-bytes",
        type=int,
        default=None,
        help="streaming: max bytes per disk read, bounds buffer memory "
        "(default: auto-sized to the largest touched file, capped at "
        "64 MiB, so extract runs zero-copy)",
    )
    p.add_argument(
        "--coalesce-gap",
        type=int,
        default=DEFAULT_COALESCE_GAP,
        help="streaming: merge planned ranges separated by at most this "
        "many bytes into one fetch (0 = only adjacent/overlapping; "
        "output is byte-identical at any setting)",
    )
    p.add_argument(
        "--digest-pool",
        choices=("thread", "process"),
        default="thread",
        help="streaming: where manifest digests hash — 'thread' overlaps "
        "with extract and pre-warms the block cache (default); "
        "'process' sidesteps the GIL but loses the pre-warm",
    )
    p.add_argument(
        "--no-stream",
        action="store_true",
        help="force the legacy full-read conversion path",
    )
    p.add_argument(
        "--average-replicas",
        action="store_true",
        help="classify norms as params_to_average (independent updates)",
    )
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser("plan", help="plan a resume topology")
    p.add_argument("ckpt_dir")
    p.add_argument("--world", type=int, required=True, help="new rank count")
    p.add_argument("--batch", type=int, default=0, help="global batch override")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser(
        "verify", help="verify objects against checksums and commit manifests"
    )
    p.add_argument("directory")
    p.add_argument(
        "--shallow",
        action="store_true",
        help="check presence and sizes only (skip digests and CRCs)",
    )
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "lint-ckpt",
        help="statically lint a checkpoint's layout (no tensor reads)",
    )
    p.add_argument("directory")
    p.add_argument("--tag", default=None, help="tag to lint (default: latest)")
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output rendering (json is stable for CI gates)",
    )
    p.add_argument(
        "--deep",
        action="store_true",
        help="also recompute file digests during the manifest cross-check",
    )
    p.set_defaults(func=cmd_lint_ckpt)

    p = sub.add_parser(
        "lint-plan",
        help="statically prove a source -> target conversion well-formed",
    )
    p.add_argument(
        "--source", required=True,
        help="source checkpoint or UCP directory (provides the configs)",
    )
    p.add_argument(
        "--target", required=True,
        help="target strategy, e.g. tp2.pp1.dp4.sp1.zero1[.ep]",
    )
    p.add_argument("--tag", default=None, help="source tag (default: latest)")
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output rendering (json is stable for CI gates)",
    )
    p.add_argument(
        "--provenance",
        action="store_true",
        help="additionally prove byte provenance (coverage/exclusivity/"
             "padding hygiene) from rank-file headers (UCP017-UCP022)",
    )
    p.set_defaults(func=cmd_lint_plan)

    p = sub.add_parser(
        "lint-trace",
        help="analyze a recorded collective trace (ordering, argument "
             "mismatches, deadlocks, critical-section overlaps)",
    )
    p.add_argument(
        "trace",
        help="a collective_trace.npt file, or a checkpoint directory "
             "saved with dump_trace=True",
    )
    p.add_argument("--tag", default=None, help="tag to read (default: latest)")
    p.add_argument(
        "--locks",
        action="store_true",
        help="treat the input as a lock-witness payload (JSON from "
             "LockWitness.to_payload) and replay it for lock-order "
             "cycles and data races (UCP029/UCP030)",
    )
    p.add_argument(
        "--fs",
        action="store_true",
        help="treat the input as an FS-op trace (JSON from "
             "FSOpRecorder.to_payload) and replay it: durability "
             "ordering (UCP032), exhaustive crash-state enumeration "
             "with recovery from every state (UCP033), tmp leaks "
             "(UCP034); combine with --locks on a "
             "{'locks': .., 'fs': ..} file for one merged report",
    )
    p.add_argument(
        "--state-cap",
        type=int,
        default=None,
        help="crash-state materialization budget for --fs (default "
             "512; hitting the cap is reported as UCP035)",
    )
    p.add_argument(
        "--crashed",
        action="store_true",
        help="the --fs trace came from a deliberately killed run: "
             "leftover *.tmp files are expected, so UCP034 is skipped",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output rendering (json is stable for CI gates)",
    )
    p.set_defaults(func=cmd_lint_trace)

    p = sub.add_parser(
        "lint-src",
        help="AST-lint the repro sources for aliasing, determinism, "
             "lock-discipline, and crash-consistency hazards "
             "(SRC001-SRC012)",
    )
    p.add_argument(
        "root",
        nargs="?",
        default=None,
        help="directory (or file) to lint; default: the installed "
             "repro package",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output rendering (json is stable for CI gates)",
    )
    p.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON ({'RULE:file': count}); known findings are "
             "subtracted so only new ones fail",
    )
    p.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write the current findings as a baseline JSON and exit 0",
    )
    p.add_argument(
        "--locks",
        action="store_true",
        help="report only the lock-discipline rules (SRC005-SRC008, "
             "SRC013-SRC014)",
    )
    p.add_argument(
        "--fs",
        action="store_true",
        help="report only the crash-consistency rules (SRC009-SRC012: "
             "unfsynced publishes, missing directory fsyncs, temp-file "
             "leaks, manifest/latest commit-order violations); "
             "combines with --locks",
    )
    p.set_defaults(func=cmd_lint_src)

    p = sub.add_parser(
        "explore",
        help="systematically explore thread interleavings of a "
             "concurrency scenario with dynamic partial-order "
             "reduction (UCP036-UCP039)",
    )
    p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario name (see --list)",
    )
    p.add_argument(
        "--list",
        action="store_true",
        help="list the registered scenarios and exit",
    )
    p.add_argument(
        "--schedules", type=int, default=None, metavar="N",
        help="schedule cap (default 256); exploration that hits the "
             "cap reports UCP039 instead of silently passing",
    )
    p.add_argument(
        "--preemptions", type=int, default=None, metavar="K",
        help="preemption bound per schedule (default: unbounded)",
    )
    p.add_argument(
        "--schedule", default=None, metavar="FILE",
        help="replay one schedule from FILE (a JSON choice list, or a "
             "report whose first counterexample is taken) instead of "
             "exploring",
    )
    p.add_argument("--seed", type=int, default=0, help="scenario data seed")
    p.add_argument(
        "--require-exhaustive",
        action="store_true",
        help="exit 1 if the schedule cap or preemption bound truncated "
             "the exploration (CI: proof, not sampling)",
    )
    p.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the JSON report to a file (CI artifact)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output rendering (json is stable for CI gates)",
    )
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser(
        "supervise",
        help="run a supervised training job: inject rank kills, reshard "
             "onto survivors, resume, and report MTTR/goodput",
    )
    p.add_argument("--model", required=True, help="model name (see models)")
    p.add_argument(
        "--topology", required=True,
        help="initial strategy, e.g. tp2.pp2.dp2.sp1.zero1",
    )
    p.add_argument("--workdir", required=True, help="checkpoint/work dir")
    p.add_argument("--steps", type=int, default=16, help="step horizon")
    p.add_argument(
        "--save-every", type=int, default=4, help="checkpoint cadence"
    )
    p.add_argument(
        "--kill",
        action="append",
        default=[],
        metavar="STEP:PHASE:RANKS",
        help="inject a kill (phases: step, save-pre, save-post, convert; "
             "ranks comma-separated); repeatable",
    )
    p.add_argument(
        "--kill-seed", type=int, default=None,
        help="derive a deterministic random kill schedule from this seed",
    )
    p.add_argument(
        "--failures", type=int, default=1,
        help="failure count for --kill-seed schedules",
    )
    p.add_argument("--seed", type=int, default=7, help="training seed")
    p.add_argument("--batch", type=int, default=8, help="global batch size")
    p.add_argument("--seq-len", type=int, default=16, help="sequence length")
    p.add_argument(
        "--no-golden",
        action="store_true",
        help="skip the uninterrupted golden run (no continuity verdict)",
    )
    p.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the JSON report to a file (CI artifact)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output rendering (json is stable for CI gates)",
    )
    p.set_defaults(func=cmd_supervise)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
