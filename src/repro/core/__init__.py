"""Universal Checkpointing (UCP) — the paper's contribution.

The flow (paper Figs 2-4):

1. A training run saves ordinary *distributed* checkpoints
   (:mod:`repro.ckpt`) — UCP adds zero save-time cost.
2. When the parallelism strategy or hardware changes, the **UCP
   language** (:mod:`repro.core.language`) identifies each parameter's
   pattern and the converter (:mod:`repro.core.convert`, Algorithm 1)
   runs Extract / Union / StripPadding to produce **atom checkpoints**
   (:mod:`repro.core.atom`) — one consolidated fp32 weight + Adam
   moments per parameter.
3. ``GenUcpMetadata`` computes the *target* partition map and ``Load``
   streams atoms into each new rank's flat buffers
   (:mod:`repro.core.loader`).

High-level entry points live in :mod:`repro.core.resume`.
"""

from repro.core.errors import (
    AtomMissingError,
    PatternMatchError,
    UCPError,
    UCPFormatError,
    UCPIncompatibleError,
)
from repro.core.atom import AtomCheckpoint, AtomStore, STATE_KINDS
from repro.core.patterns import PatternProgram, PatternRule, program_for_config
from repro.core.metadata import UCPMetadata
from repro.core.ops import (
    ParamFragment,
    LoadPlan,
    extract,
    gen_ucp_metadata,
    load,
    strip_padding,
    union,
)
from repro.core.convert import ConversionReport, ucp_convert
from repro.core.loader import load_ucp_into_engine
from repro.core.resume import ElasticResumeManager, resume_training
from repro.core.adapters import (
    ADAPTERS,
    FrameworkAdapter,
    available_adapters,
    export_weights,
    import_foreign_state,
)
from repro.core.inspect import inspect_directory, verify_directory

__all__ = [
    "UCPError",
    "PatternMatchError",
    "AtomMissingError",
    "UCPFormatError",
    "UCPIncompatibleError",
    "AtomCheckpoint",
    "AtomStore",
    "STATE_KINDS",
    "PatternProgram",
    "PatternRule",
    "program_for_config",
    "UCPMetadata",
    "ParamFragment",
    "LoadPlan",
    "extract",
    "union",
    "strip_padding",
    "gen_ucp_metadata",
    "load",
    "ConversionReport",
    "ucp_convert",
    "load_ucp_into_engine",
    "ElasticResumeManager",
    "resume_training",
    "ADAPTERS",
    "FrameworkAdapter",
    "available_adapters",
    "export_weights",
    "import_foreign_state",
    "inspect_directory",
    "verify_directory",
]
