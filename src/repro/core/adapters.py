"""Cross-framework checkpoint adapters.

The paper's UCP accepts checkpoints from frameworks that use DeepSpeed
as a backend (HuggingFace Accelerate, PyTorch Lightning) — their
checkpoints differ mainly in *parameter naming*.  An adapter is a
bidirectional name mapping; ``import_foreign_state`` turns a foreign
weights-only state dict into a loadable UCP directory (fresh optimizer
moments), enabling continued training of externally-produced models.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.atom import AtomCheckpoint, AtomStore
from repro.core.errors import UCPIncompatibleError
from repro.core.metadata import UCPMetadata
from repro.core.patterns import program_for_config
from repro.models.configs import ModelConfig
from repro.parallel.tp import build_shard_specs
from repro.storage.store import ObjectStore


class FrameworkAdapter:
    """Bidirectional parameter-name translation for one framework."""

    def __init__(
        self,
        name: str,
        to_canonical: Callable[[str], Optional[str]],
        from_canonical: Callable[[str], str],
    ) -> None:
        self.name = name
        self._to_canonical = to_canonical
        self._from_canonical = from_canonical

    def canonical_name(self, foreign: str) -> Optional[str]:
        """Canonical name for a foreign name (None = not recognized)."""
        return self._to_canonical(foreign)

    def foreign_name(self, canonical: str) -> str:
        """Foreign name for a canonical name."""
        return self._from_canonical(canonical)

    def translate_state(self, foreign_state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Rename a whole foreign state dict to canonical names.

        Raises:
            UCPIncompatibleError: a key the adapter does not recognize.
        """
        out = {}
        for key, value in foreign_state.items():
            canonical = self.canonical_name(key)
            if canonical is None:
                raise UCPIncompatibleError(
                    f"adapter {self.name!r} does not recognize parameter "
                    f"{key!r}"
                )
            out[canonical] = value
        return out


def _lightning_to_canonical(name: str) -> Optional[str]:
    if name.startswith("model."):
        return name[len("model."):]
    return None


LIGHTNING_ADAPTER = FrameworkAdapter(
    name="pytorch-lightning",
    to_canonical=_lightning_to_canonical,
    from_canonical=lambda name: f"model.{name}",
)
"""PyTorch-Lightning-style checkpoints prefix every key with ``model.``."""


_HF_PATTERNS = [
    (r"^transformer\.wte\.weight$", "embedding.weight"),
    (r"^transformer\.wpe\.weight$", "pos_embedding.weight"),
    (r"^transformer\.ln_f\.weight$", "final_norm.weight"),
    (r"^transformer\.ln_f\.bias$", "final_norm.bias"),
    (r"^lm_head\.weight$", "lm_head"),
    (r"^transformer\.h\.(\d+)\.ln_1\.weight$", r"blocks.\1.norm1.weight"),
    (r"^transformer\.h\.(\d+)\.ln_1\.bias$", r"blocks.\1.norm1.bias"),
    (r"^transformer\.h\.(\d+)\.ln_2\.weight$", r"blocks.\1.norm2.weight"),
    (r"^transformer\.h\.(\d+)\.ln_2\.bias$", r"blocks.\1.norm2.bias"),
    (r"^transformer\.h\.(\d+)\.attn\.c_attn\.weight$", r"blocks.\1.attn.qkv.weight"),
    (r"^transformer\.h\.(\d+)\.attn\.c_attn\.bias$", r"blocks.\1.attn.qkv.bias"),
    (r"^transformer\.h\.(\d+)\.attn\.c_proj\.weight$", r"blocks.\1.attn.out.weight"),
    (r"^transformer\.h\.(\d+)\.attn\.c_proj\.bias$", r"blocks.\1.attn.out.bias"),
    (r"^transformer\.h\.(\d+)\.mlp\.c_fc\.weight$", r"blocks.\1.ffn.up.weight"),
    (r"^transformer\.h\.(\d+)\.mlp\.c_fc\.bias$", r"blocks.\1.ffn.up.bias"),
    (r"^transformer\.h\.(\d+)\.mlp\.c_proj\.weight$", r"blocks.\1.ffn.down.weight"),
    (r"^transformer\.h\.(\d+)\.mlp\.c_proj\.bias$", r"blocks.\1.ffn.down.bias"),
]

def _hf_to_canonical(name: str) -> Optional[str]:
    for pattern, replacement in _HF_PATTERNS:
        if re.match(pattern, name):
            return re.sub(pattern, replacement, name)
    return None


_HF_REVERSE = [
    (
        re.compile("^" + canonical.replace(r"\1", r"(\d+)") + "$"),
        foreign.strip("^$").replace(r"(\d+)", r"\1").replace("\\.", "."),
    )
    for foreign, canonical in _HF_PATTERNS
]


def _hf_from_canonical(name: str) -> str:
    for compiled, template in _HF_REVERSE:
        match = compiled.match(name)
        if match:
            if match.groups():
                return template.replace(r"\1", match.group(1))
            return template
    raise UCPIncompatibleError(f"no HF name for canonical {name!r}")


HF_GPT2_ADAPTER = FrameworkAdapter(
    name="huggingface-gpt2",
    to_canonical=_hf_to_canonical,
    from_canonical=_hf_from_canonical,
)
"""HuggingFace GPT-2-style naming (transformer.h.N.attn.c_attn...)."""

ADAPTERS: Dict[str, FrameworkAdapter] = {
    LIGHTNING_ADAPTER.name: LIGHTNING_ADAPTER,
    HF_GPT2_ADAPTER.name: HF_GPT2_ADAPTER,
}


def available_adapters() -> List[str]:
    """Registered adapter names."""
    return sorted(ADAPTERS)


def export_weights(
    ucp_dir: str,
    adapter: Optional[FrameworkAdapter] = None,
) -> Dict[str, np.ndarray]:
    """Export a UCP checkpoint as a weights-only state dict.

    The reverse of :func:`import_foreign_state`, covering the
    weight-only conversion use case the paper notes Megatron-LM stops
    at: atoms already hold consolidated, padding-free fp32 weights, so
    export is a read + rename.

    Args:
        ucp_dir: a UCP directory.
        adapter: rename keys into a foreign scheme; None keeps
            canonical names.
    """
    store = ObjectStore(ucp_dir)
    metadata = UCPMetadata.load(store)
    atom_store = AtomStore(ucp_dir, store)
    out: Dict[str, np.ndarray] = {}
    for name in metadata.param_names():
        key = adapter.foreign_name(name) if adapter is not None else name
        out[key] = atom_store.read_state(name, "fp32")
    return out


def import_foreign_state(
    foreign_state: Dict[str, np.ndarray],
    adapter: FrameworkAdapter,
    model_cfg: ModelConfig,
    ucp_dir: str,
    iteration: int = 0,
) -> UCPMetadata:
    """Build a UCP directory from a foreign weights-only state dict.

    Adam moments initialize to zero (a foreign checkpoint carries no
    optimizer state); the result loads into any target topology via
    :func:`repro.core.loader.load_ucp_into_engine`, which is how the
    continual-pretraining example consumes HF-style checkpoints.
    """
    canonical = adapter.translate_state(foreign_state)
    specs = build_shard_specs(model_cfg)
    missing = sorted(set(specs) - set(canonical))
    if missing:
        raise UCPIncompatibleError(
            f"foreign state lacks parameters {missing[:5]}... for model "
            f"{model_cfg.name!r}"
        )

    store = ObjectStore(ucp_dir)
    atom_store = AtomStore(ucp_dir, store)
    params: Dict[str, Dict] = {}
    for name, spec in specs.items():
        values = np.asarray(canonical[name], dtype=np.float32)
        if tuple(values.shape) == spec.logical_shape and spec.has_padding:
            slices = tuple(slice(0, d) for d in spec.unpadded_shape)
            values = values[slices]
        if tuple(values.shape) != spec.unpadded_shape:
            raise UCPIncompatibleError(
                f"{name!r}: foreign tensor has shape {values.shape}, model "
                f"expects {spec.unpadded_shape} (or padded "
                f"{spec.logical_shape})"
            )
        atom = AtomCheckpoint(
            name=name,
            states={
                "fp32": values,
                "exp_avg": np.zeros_like(values),
                "exp_avg_sq": np.zeros_like(values),
            },
            spec=spec.to_dict(),
        )
        atom_store.write(atom)
        params[name] = {
            "shape": list(atom.shape),
            "spec": atom.spec,
            "kinds": sorted(atom.states),
        }

    from repro.optim.adam import Adam

    metadata = UCPMetadata(
        iteration=iteration,
        optimizer_step=0,
        model_config=model_cfg.to_dict(),
        source_parallel_config={"tp": 1, "pp": 1, "dp": 1, "sp": 1, "zero_stage": 1},
        params=params,
        adam=Adam().hyperparameters(),
        training={
            "seed": 0,
            "data_seed": 0,
            "global_batch_size": 0,
            "seq_len": 0,
            "mp_policy": {"compute_dtype": "fp32"},
        },
        pattern_program=program_for_config(model_cfg).to_dict(),
    )
    metadata.save(store)
    return metadata
