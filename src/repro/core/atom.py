"""Atom checkpoints: the UCP on-disk representation.

One directory per model parameter, holding a *consolidated* (padding-
free, topology-free) copy of each training state (paper §3.1)::

    <ucp_dir>/
        ucp_meta.npt                   <- global metadata (UCPMetadata)
        atoms/<param name>/fp32.npt
        atoms/<param name>/exp_avg.npt
        atoms/<param name>/exp_avg_sq.npt
        atoms/<param name>/atom_meta.npt

Keeping one file per (parameter, state) is what allows the target-side
``Load`` to stream exactly the fragments a rank needs, parameter by
parameter, without materializing the whole model in memory.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import AtomMissingError, UCPFormatError
from repro.storage.store import ObjectStore

STATE_KINDS: Tuple[str, ...] = ("fp32", "exp_avg", "exp_avg_sq")
"""Per-parameter states an atom persists (Adam training)."""

ATOMS_DIR = "atoms"
ATOM_META_FILE = "atom_meta.npt"


@dataclasses.dataclass
class AtomCheckpoint:
    """In-memory form of one parameter's atom.

    Attributes:
        name: dotted parameter name.
        states: state kind -> consolidated, padding-free array.
        spec: the parameter's shard-spec dict (pattern + fragmenter),
            recorded so targets can re-fragment without re-deriving it.
    """

    name: str
    states: Dict[str, np.ndarray]
    spec: Dict

    def __post_init__(self) -> None:
        shapes = {v.shape for v in self.states.values()}
        if len(shapes) > 1:
            raise UCPFormatError(
                f"atom {self.name!r} state shapes disagree: {shapes}"
            )

    @property
    def shape(self) -> Tuple[int, ...]:
        """Consolidated (unpadded) shape."""
        first = next(iter(self.states.values()))
        return tuple(first.shape)

    @property
    def nbytes(self) -> int:
        """Total bytes across all states."""
        return sum(int(v.nbytes) for v in self.states.values())


class AtomStore:
    """Reads and writes atoms under a UCP directory."""

    def __init__(self, ucp_dir: str, store: Optional[ObjectStore] = None) -> None:
        self.store = store if store is not None else ObjectStore(ucp_dir)

    def _atom_path(self, name: str, filename: str) -> str:
        if not name or name.startswith(("/", ".")) or ".." in name.split("."):
            raise UCPFormatError(f"illegal atom name {name!r}")
        return f"{ATOMS_DIR}/{name}/{filename}"

    def write(self, atom: AtomCheckpoint, parallel: int = 1) -> int:
        """Persist one atom; returns bytes written."""
        total = 0
        for kind, values in atom.states.items():
            total += self.store.save(
                self._atom_path(atom.name, f"{kind}.npt"),
                {"values": np.asarray(values, dtype=np.float32)},
                parallel=parallel,
            )
        total += self.store.save(
            self._atom_path(atom.name, ATOM_META_FILE),
            {
                "name": atom.name,
                "shape": list(atom.shape),
                "kinds": sorted(atom.states),
                "spec": atom.spec,
            },
        )
        return total

    def read_state(self, name: str, kind: str, parallel: int = 1) -> np.ndarray:
        """Read one state array of one parameter."""
        rel = self._atom_path(name, f"{kind}.npt")
        if not self.store.exists(rel):
            raise AtomMissingError(f"missing atom state {rel}")
        return self.store.load(rel, parallel=parallel)["values"]

    def read_meta(self, name: str) -> Dict:
        """Read one atom's metadata sidecar."""
        rel = self._atom_path(name, ATOM_META_FILE)
        if not self.store.exists(rel):
            raise AtomMissingError(f"missing atom metadata {rel}")
        return self.store.load(rel)

    def read(self, name: str) -> AtomCheckpoint:
        """Read a full atom (all states)."""
        meta = self.read_meta(name)
        states = {kind: self.read_state(name, kind) for kind in meta["kinds"]}
        return AtomCheckpoint(name=name, states=states, spec=meta["spec"])

    def list_atoms(self) -> List[str]:
        """Names of all atoms present, sorted."""
        names = set()
        prefix = f"{ATOMS_DIR}/"
        for rel in self.store.list(ATOMS_DIR):
            remainder = rel[len(prefix):]
            name = remainder.rsplit("/", 1)[0]
            names.add(name)
        return sorted(names)

    def has_atom(self, name: str) -> bool:
        """Whether an atom (metadata sidecar) exists for a parameter."""
        return self.store.exists(self._atom_path(name, ATOM_META_FILE))
