"""Distributed checkpoint -> UCP conversion (paper Algorithm 1).

The converter runs lazily and on demand — only when a resume needs a
different parallelism strategy — so normal training pays nothing for
UCP (the paper's zero-save-overhead claim).  Phases:

1. **Extract** every ``optim_states`` rank file into parameter-state
   fragments (independent per file; optionally threaded).
2. **Union** each parameter's fragments by its pattern from the UCP
   language program (independent per parameter; optionally threaded —
   the paper's parallelism/memory trade-off).
3. **StripPadding** and write one atom per parameter, plus global
   metadata.

Two execution strategies implement the same semantics:

* the **full-read** path materializes every rank file and runs the
  in-memory ``extract``/``union`` operators;
* the **streaming** path (default whenever the byte-provenance
  pre-flight proves the source sound) never materializes a rank file.
  The provenance interval maps are lowered into per-parameter *read
  plans* — exact ``(file, byte-range) -> consolidated range`` preads —
  executed over a shared :class:`~repro.storage.rangeio.RangeReader`
  with adjacent-range coalescing and a bounded block cache.  Manifest
  digests are verified by *streaming* each consumed file once in
  window-sized chunks that pre-warm the very blocks extract reads
  next, so each source byte is read from disk at most once; per-atom
  results are written as soon as they consolidate, keeping in-flight
  memory bounded by the worker count instead of the checkpoint size.

Conversion is crash-consistent and resumable: the source tag must be
committed (its manifest is required, and every rank file is verified
against it before use), ``ucp_meta.npt`` is written last as the
destination's commit point, and a re-run after a mid-conversion crash
reuses every atom that already exists and passes its integrity check —
provided a source-identity marker proves the partial output came from
the *same* committed source.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import re
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import LayoutLintError, LintReport, error
from repro.analysis.interchange import preflight_convert
from repro.analysis.provenance import (
    ParamProvenance,
    ProvenanceAnalysis,
    SourceExtent,
    analyze_source,
)
from repro.ckpt import manifest as manifest_mod
from repro.ckpt import naming
from repro.ckpt.errors import CheckpointIntegrityError, CheckpointNotFoundError
from repro.ckpt.loader import resolve_tag
from repro.core.atom import STATE_KINDS, AtomCheckpoint, AtomStore
from repro.core.errors import PatternMatchError, UCPError, UCPFormatError
from repro.core.intervals import numel as _numel
from repro.core.metadata import UCPMetadata
from repro.core.ops import (
    _KIND_TO_FIELD,
    ParamFragment,
    extract,
    strip_padding,
    union,
)
from repro.core.patterns import PatternProgram, program_for_config
from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.parallel.sp import average_param_copies
from repro.parallel.tp import (
    PATTERN_REPLICATED,
    PATTERN_TO_AVERAGE,
    ShardSpec,
)
from repro.storage.rangeio import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_WINDOW_BYTES,
    BlockCache,
    RangeReader,
)
from repro.storage.serializer import SerializationError, TensorIndexEntry
from repro.storage.store import ObjectStore

_OPTIM_FILE_RE = re.compile(r"^zero_dp_rank_(\d+)_mp_rank_(\d+)_optim_states\.npt$")

CONVERT_SOURCE_FILE = "ucp_convert_source.npt"
"""Marker recording which committed source a (possibly partial)
conversion was produced from; gates atom reuse on resume."""


@dataclasses.dataclass(frozen=True)
class ConversionReport:
    """Metrics from one conversion run.

    ``num_reused`` counts atoms carried over from a previous
    (interrupted) conversion of the same committed source — they were
    verified, not rewritten.  ``bytes_read`` / ``bytes_written`` are
    the source/destination store's real byte deltas for this run
    (headers, digest verification, and payload all included), so a
    streamed conversion can *prove* it read less than the full source
    checkpoint.  ``cache_hits`` and ``peak_window_bytes`` come from the
    streaming path's shared :class:`~repro.storage.rangeio.RangeReader`
    (zero on the full-read path): cache hits count range requests that
    reused digest-warmed or coalesced blocks, and the peak window bounds
    the largest single disk read the run ever issued.
    """

    source_tag: str
    num_files: int
    num_params: int
    atom_bytes: int
    extract_seconds: float
    union_seconds: float
    write_seconds: float
    simulated_read_s: float
    simulated_write_s: float
    num_reused: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cache_hits: int = 0
    peak_window_bytes: int = 0
    streamed: bool = False

    @property
    def total_seconds(self) -> float:
        """Wall-clock conversion time."""
        return self.extract_seconds + self.union_seconds + self.write_seconds


def _optim_files(store: ObjectStore, tag: str) -> List[str]:
    files = []
    for rel in store.list(tag):
        base = rel.split("/")[-1]
        if _OPTIM_FILE_RE.match(base):
            files.append(rel)
    if not files:
        raise UCPFormatError(f"no optimizer-state files under tag {tag!r}")
    return files


def _resolve_workers(workers: Optional[int]) -> int:
    """CPU-aware worker count: ``None`` means ``min(8, cpu_count)``.

    Explicit ``0``/``1`` stay serial; explicit counts are respected.
    Results are order-deterministic either way — the parallel map
    preserves input order regardless of completion order.
    """
    if workers is None:
        return min(8, os.cpu_count() or 1)
    return workers


def _map_maybe_parallel(fn, items, workers: int):
    if workers and workers > 1:
        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    return [fn(item) for item in items]


@dataclasses.dataclass(frozen=True)
class ReadSlice:
    """One pread of a parameter read plan.

    ``length`` *elements* starting at element ``file_start`` of the
    flat array ``field`` inside source file ``file`` land at
    consolidated elements ``[full_start, full_start + length)``.  The
    field names the fp32 array; the converter substitutes the sibling
    ``exp_avg``/``exp_avg_sq`` arrays per state kind — provenance is
    kind-uniform because all three flat buffers share one segment map.
    """

    full_start: int
    length: int
    file: str
    field: str
    file_start: int


@dataclasses.dataclass(frozen=True)
class ParamReadPlan:
    """Everything the streaming converter reads for one parameter.

    ``primary`` covers the selected copies (what ``union`` consumes);
    ``copies`` the non-selected mp-coordinate replicas the pattern
    additionally demands (all of them for ``params_to_average``, all
    of them under ``verify_replicas`` for ``replicated_params``, none
    otherwise).  All slices are pre-clipped to the parameter's
    non-padding data intervals, so a plan never reads a padding byte —
    the runtime enforcement of UCP019.
    """

    name: str
    pattern: str
    primary: Tuple[ReadSlice, ...]
    copies: Tuple[Tuple[Tuple[int, int, int], Tuple[ReadSlice, ...]], ...]

    @property
    def files(self) -> Tuple[str, ...]:
        """Every source file any slice of this plan touches, sorted."""
        rels = {s.file for s in self.primary}
        for _, slices in self.copies:
            rels.update(s.file for s in slices)
        return tuple(sorted(rels))

    @property
    def planned_elements(self) -> int:
        """Total fp32 elements the plan reads (per state kind)."""
        total = sum(s.length for s in self.primary)
        for _, slices in self.copies:
            total += sum(s.length for s in slices)
        return total


def _clip_extents(
    extents: Sequence[SourceExtent], data: Sequence[Tuple[int, int]]
) -> Tuple[ReadSlice, ...]:
    """Intersect provenance extents with the non-padding data intervals."""
    out: List[ReadSlice] = []
    for e in extents:
        for d_lo, d_hi in data:
            if d_hi <= e.full_start:
                continue
            if d_lo >= e.full_end:
                break
            lo = max(e.full_start, d_lo)
            hi = min(e.full_end, d_hi)
            out.append(ReadSlice(
                full_start=lo,
                length=hi - lo,
                file=e.file,
                field=e.field,
                file_start=e.file_start + (lo - e.full_start),
            ))
    return tuple(out)


def lower_read_plans(
    analysis: ProvenanceAnalysis,
    names: Optional[Sequence[str]] = None,
    verify_replicas: bool = True,
    patterns: Optional[Dict[str, str]] = None,
) -> Dict[str, ParamReadPlan]:
    """Lower provenance interval maps into per-parameter read plans.

    The maps were proven sound by the UCP017–UCP022 theorems (coverage,
    exclusivity, padding hygiene), so the lowered plans inherit the
    guarantee: executing exactly these preads touches every consolidated
    data byte of every selected copy once, and no padding byte ever.

    Args:
        analysis: a *clean* (``report.ok``) source provenance analysis.
        names: parameters to plan (default: all analyzed).
        verify_replicas: include replica reads for ``replicated_params``
            so the converter can bit-compare them; ``False`` plans the
            primary copy only — the streaming path's concrete byte
            saving over a full-read conversion.
        patterns: per-parameter pattern overrides from the resolved
            UCP-language program — a custom program may e.g. reclassify
            a replicated norm as ``params_to_average``, which changes
            *which* copies the plan must read (default: the analyzed
            layout's patterns).
    """
    plans: Dict[str, ParamReadPlan] = {}
    for name in (sorted(analysis.params) if names is None else names):
        prov = analysis.params[name]
        pattern = prov.spec.pattern
        if patterns is not None and name in patterns:
            pattern = patterns[name]
        copies: List[Tuple[Tuple[int, int, int], Tuple[ReadSlice, ...]]] = []
        if pattern == PATTERN_TO_AVERAGE or (
            pattern == PATTERN_REPLICATED and verify_replicas
        ):
            for coord in sorted(prov.replicas):
                copies.append(
                    (coord, _clip_extents(prov.replicas[coord], prov.data))
                )
        plans[name] = ParamReadPlan(
            name=name,
            pattern=pattern,
            primary=_clip_extents(prov.extents, prov.data),
            copies=tuple(copies),
        )
    return plans


def _index_entry(
    tree: Dict, field: str, kind: str, rel: str
) -> TensorIndexEntry:
    """Resolve a provenance field + state kind to a tensor index entry."""
    node = None
    if field in _KIND_TO_FIELD.values():
        node = tree.get(_KIND_TO_FIELD[kind])
    elif field.startswith("param_states.fp32."):
        pname = field[len("param_states.fp32."):]
        states = tree.get("param_states")
        if isinstance(states, dict):
            node = states.get(kind, {}).get(pname)
    if not isinstance(node, TensorIndexEntry):
        raise UCPFormatError(
            f"{rel}: no {kind!r} tensor behind provenance field {field!r}"
        )
    if np.dtype(node.dtype) != np.float32:
        raise UCPFormatError(
            f"{rel}: {kind!r} state behind {field!r} stored as "
            f"{node.dtype}; streaming conversion requires float32 "
            f"(byte-exact) state arrays"
        )
    return node


def _verify_source_commit(
    store: ObjectStore, tag: str, manifest: Dict, files: List[str]
) -> None:
    """Cross-check a committed tag's rank files against its manifest.

    A committed tag whose manifest lists an optimizer-state file the
    disk no longer has would otherwise convert *silently wrong* — the
    missing ranks' fragments would simply be absent from the union.
    """
    on_disk = {rel.split("/")[-1] for rel in files}
    for basename in sorted(manifest["files"]):
        if _OPTIM_FILE_RE.match(basename) and basename not in on_disk:
            raise CheckpointIntegrityError(
                f"missing rank file {tag}/{basename}: it is recorded in the "
                f"commit manifest but absent on disk; converting without it "
                f"would drop that rank's optimizer state"
            )


def _rank_label(rel: str) -> str:
    """Human rank coordinates of an optimizer-state file path."""
    match = _OPTIM_FILE_RE.match(rel.split("/")[-1])
    if match is None:
        return rel
    return f"dp_rank {int(match.group(1))} / mp_rank {int(match.group(2))}"


def _diverging_keys(a: Optional[Dict], b: Optional[Dict]) -> List[str]:
    """Keys on which two (possibly absent) state dicts disagree."""
    if a is None or b is None:
        return ["<entire state>"]
    return sorted(
        k for k in set(a) | set(b)
        if k not in a or k not in b or a[k] != b[k]
    )


def _check_cross_rank_consistency(
    files: List[str], payloads: List[Dict]
) -> Tuple[Dict, Optional[Dict]]:
    """Adam hyperparameters and loss-scaler state, asserted rank-uniform.

    Every rank file records the job-wide Adam hyperparameters and loss
    scaler; a disagreement means the tag mixes incompatible optimizer
    states (e.g. files spliced from different runs) and silently
    picking one would corrupt the converted checkpoint.  Each
    divergence is reported as a UCP015 diagnostic naming *which* ranks
    and *which* hyperparameter disagree, aggregated into one
    :class:`LayoutLintError` so no mismatch hides behind another.
    """
    report = LintReport(subject="cross-rank consistency")
    ref_rel = files[0]
    adam_hyper: Dict = payloads[0]["adam"]
    scaler_state: Optional[Dict] = payloads[0].get("loss_scaler")
    for rel, payload in zip(files[1:], payloads[1:]):
        adam = payload["adam"]
        if adam != adam_hyper:
            keys = _diverging_keys(adam_hyper, adam)
            detail = ", ".join(
                f"{k}: {adam_hyper.get(k)!r} vs {adam.get(k)!r}" for k in keys
            )
            report.add(error(
                "UCP015",
                f"adam hyperparameters disagree across rank files: "
                f"{_rank_label(rel)} differs from {_rank_label(ref_rel)} "
                f"on {detail}; the tag mixes optimizer states from "
                f"incompatible runs",
                location=rel,
            ))
        scaler = payload.get("loss_scaler")
        if scaler != scaler_state:
            keys = _diverging_keys(scaler_state, scaler)
            report.add(error(
                "UCP015",
                f"loss-scaler state disagrees across rank files: "
                f"{_rank_label(rel)} differs from {_rank_label(ref_rel)} "
                f"on {', '.join(keys)} ({scaler_state} vs {scaler}); the "
                f"tag mixes optimizer states from incompatible runs",
                location=rel,
            ))
    if not report.ok:
        raise LayoutLintError(report, prefix="source tag is inconsistent")
    return adam_hyper, scaler_state


def _reusable_atom_meta(
    atom_store: AtomStore, name: str, spec: ShardSpec
) -> Optional[Dict]:
    """A previously written atom's metadata, iff it can be trusted.

    Reusable means: the metadata sidecar and all three state files
    exist, decode cleanly (per-tensor CRC checked by the serializer),
    and match the spec the current conversion resolved for the
    parameter.  Anything less re-converts the atom from source.
    """
    try:
        meta = atom_store.read_meta(name)
        kinds = meta.get("kinds")
        if kinds is None or sorted(kinds) != sorted(STATE_KINDS):
            return None
        if meta.get("spec") != spec.to_dict():
            return None
        shape = tuple(meta.get("shape", ()))
        for kind in STATE_KINDS:
            if tuple(atom_store.read_state(name, kind).shape) != shape:
                return None
    except (UCPError, SerializationError):
        return None
    return meta


def ucp_convert(
    ckpt_dir: str,
    ucp_dir: str,
    tag: Optional[str] = None,
    program: Optional[PatternProgram] = None,
    workers: Optional[int] = None,
    verify_replicas: bool = True,
    strict_spec_check: bool = True,
    src_store: Optional[ObjectStore] = None,
    dst_store: Optional[ObjectStore] = None,
    resume: bool = True,
    provenance: bool = True,
    cluster=None,
    streaming="auto",
    window_bytes: int = DEFAULT_WINDOW_BYTES,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    cache: Optional[BlockCache] = None,
) -> ConversionReport:
    """Convert a distributed checkpoint into UCP atom format.

    Args:
        ckpt_dir: source distributed-checkpoint directory.
        ucp_dir: output UCP directory (created).
        tag: source tag; defaults to the checkpoint's ``latest``.
        program: UCP-language pattern program; defaults to the built-in
            program for the checkpoint's model family.
        workers: thread count for the Extract/Union/write fan-out.
            ``None`` (default) resolves CPU-aware to
            ``min(8, os.cpu_count())``; ``0``/``1`` run serial.  Results
            are deterministic regardless of the count or completion
            order.
        verify_replicas: fail if replicated copies are not bit-equal.
        strict_spec_check: cross-check the program's classification
            against the sharding metadata recorded at save time.
        src_store: optional pre-built source store (shares simulated-IO
            accounting and fault policy with the caller).
        dst_store: optional pre-built destination store.
        resume: reuse intact atoms left by a previous interrupted
            conversion of the same committed source.
        provenance: run the byte-provenance theorems (coverage /
            exclusivity / padding hygiene, UCP017-UCP022) over the
            rank-file headers as part of the pre-flight (default on;
            costs kilobytes of header IO).
        cluster: optional :class:`~repro.dist.cluster.Cluster` whose
            collective trace should bracket the conversion with
            ``convert:<tag>:enter``/``:commit`` barriers — the
            happens-before analyzer then proves the conversion's
            critical section does not overlap a concurrent save's.
        streaming: ``"auto"`` (default) uses the planned byte-range
            pipeline whenever the provenance pre-flight ran and proved
            the source clean, and the legacy full-read path otherwise;
            ``True`` forces streaming (building the provenance analysis
            if need be, and failing loudly when its theorems do not
            hold); ``False`` forces the full-read path.
        window_bytes: streaming only — maximum bytes per disk read;
            bounds in-flight buffer memory.
        cache_bytes: streaming only — shared block-cache budget; sized
            to hold a rank file, the digest-verification pass pre-warms
            every block Extract reads, so each source byte is read from
            disk once.
        cache: streaming only — a caller-provided :class:`BlockCache`
            to use instead of a fresh one (``cache_bytes`` is then
            ignored).  The cache is internally locked, so one instance
            may be shared across concurrent conversions and verifiers
            (the multi-tenant hub shape).

    Raises:
        CheckpointNotFoundError: missing directory or tag.
        CheckpointIntegrityError: uncommitted source tag, or a source
            file that is missing or fails digest verification.
        UCPFormatError: structurally valid but semantically
            inconsistent source (e.g. rank files disagreeing on Adam
            hyperparameters).
        repro.analysis.diagnostics.LayoutLintError: the mandatory
            static pre-flight found the source layout unsound or the
            manifest structurally incomplete (a UCPFormatError
            subclass; carries the individual rule-ID diagnostics).
    """
    if streaming not in ("auto", True, False):
        raise ValueError(f"streaming must be 'auto', True or False, got {streaming!r}")
    workers = _resolve_workers(workers)
    if src_store is None:
        src_store = ObjectStore(ckpt_dir)
    src_tag = resolve_tag(src_store, tag)
    if not (src_store.base / src_tag).is_dir():
        raise CheckpointNotFoundError(f"no tag {src_tag!r} under {ckpt_dir}")
    src_read0 = src_store.bytes_read

    # --- Extract (parallel across rank files), verified vs manifest ---
    t0 = time.perf_counter()
    src_manifest = manifest_mod.require_manifest(src_store, src_tag)
    files = _optim_files(src_store, src_tag)
    _verify_source_commit(src_store, src_tag, src_manifest, files)

    job_rel = f"{src_tag}/{naming.JOB_CONFIG_FILE}"
    if not src_store.exists(job_rel):
        raise CheckpointNotFoundError(f"missing {job_rel} in {ckpt_dir}")
    job_config = manifest_mod.load_verified(
        src_store,
        job_rel,
        manifest_mod.manifest_entry(src_manifest, naming.JOB_CONFIG_FILE),
    )
    model_cfg = ModelConfig.from_dict(job_config["model_config"])
    source_cfg = ParallelConfig.from_dict(job_config["parallel_config"])
    optimizer_layout = job_config.get("optimizer_layout", "flat")

    # the streaming pipeline is *gated on the provenance theorems*: only
    # a source whose interval maps were proven sound (UCP017-UCP022) is
    # converted from byte-range plans; otherwise the full-read path runs
    use_streaming = streaming is True or (streaming == "auto" and provenance)
    analysis: Optional[ProvenanceAnalysis] = None
    if use_streaming:
        analysis = analyze_source(
            src_store, src_tag, model_cfg, source_cfg, optimizer_layout
        )

    # mandatory pre-flight: prove the source layout self-consistent and
    # the commit manifest structurally complete before reading a single
    # tensor — a doomed conversion is refused at header cost
    preflight = preflight_convert(
        src_store,
        src_tag,
        src_manifest,
        model_cfg,
        source_cfg,
        optimizer_layout,
        provenance=provenance,
        analysis=analysis if provenance else None,
    )
    if use_streaming and not provenance and not analysis.report.ok:
        # explicit streaming=True with provenance gating disabled: the
        # read plans would be lowered from maps the theorems reject
        raise LayoutLintError(
            analysis.report,
            prefix=f"streaming conversion needs provenance-clean source {src_tag}",
        )
    if not preflight.ok:
        # root-cause before reporting: a semantic lint finding on a
        # file that was modified after commit is tampering, not a bad
        # layout — digest-verify the rank files (failure path only, so
        # the full reads cost nothing on healthy conversions) and let
        # the integrity error win
        for rel in files:
            manifest_mod.load_verified(
                src_store,
                rel,
                manifest_mod.manifest_entry(src_manifest, rel.split("/")[-1]),
            )
        raise LayoutLintError(
            preflight, prefix=f"conversion pre-flight failed for {src_tag}"
        )

    if cluster is not None:
        cluster.barrier(f"convert:{src_tag}:enter")

    if program is None:
        program = program_for_config(
            model_cfg, expert_parallel=source_cfg.expert_parallel
        )

    fragments: Dict[Tuple[str, str], List[ParamFragment]] = {}
    shapes: Dict[str, Dict] = {}
    optimizer_step = 0
    if use_streaming:
        # header/index pass only: the per-file tensor *index* carries
        # every non-tensor field (adam, loss scaler, sharding, step)
        # plus absolute payload offsets — no flat buffer is read here
        trees = dict(zip(
            files,
            _map_maybe_parallel(src_store.load_index, files, workers),
        ))
        adam_hyper, loss_scaler = _check_cross_rank_consistency(
            files, [trees[rel] for rel in files]
        )
        for tree in trees.values():
            optimizer_step = max(optimizer_step, int(tree["optimizer_step"]))
            for name, saved_spec in tree["sharding"].items():
                shapes[name] = saved_spec
        names = sorted(analysis.params)
    else:
        def _load_rank_file(rel: str) -> Dict:
            entry = manifest_mod.manifest_entry(src_manifest, rel.split("/")[-1])
            return manifest_mod.load_verified(src_store, rel, entry)

        payloads = _map_maybe_parallel(_load_rank_file, files, workers)
        adam_hyper, loss_scaler = _check_cross_rank_consistency(files, payloads)
        for payload in payloads:
            optimizer_step = max(optimizer_step, int(payload["optimizer_step"]))
            for name, saved_spec in payload["sharding"].items():
                shapes[name] = saved_spec
            for fragment in extract(payload):
                fragments.setdefault(
                    (fragment.name, fragment.kind), []
                ).append(fragment)
        names = sorted({name for name, _ in fragments})
    t1 = time.perf_counter()

    # --- resolve specs through the UCP-language program ---
    specs: Dict[str, ShardSpec] = {}
    for name in names:
        saved = shapes.get(name)
        if saved is None:
            raise UCPFormatError(f"no sharding metadata for {name!r}")
        spec = program.resolve_spec(
            name,
            tuple(saved["logical_shape"]),
            tuple(saved["unpadded_shape"]),
        )
        if strict_spec_check:
            saved_spec = ShardSpec.from_dict(
                {k: saved[k] for k in
                 ("pattern", "logical_shape", "unpadded_shape", "fragmenter")}
            )
            if (saved_spec.pattern, saved_spec.fragmenter) != (
                spec.pattern, spec.fragmenter
            ):
                raise PatternMatchError(
                    f"pattern program classifies {name!r} as {spec.pattern} "
                    f"({spec.fragmenter}), but the checkpoint was saved as "
                    f"{saved_spec.pattern} ({saved_spec.fragmenter})"
                )
        specs[name] = spec

    # --- resumability gate: only reuse atoms proven to come from this
    # exact committed source (tag + manifest digest) ---
    if dst_store is None:
        dst_store = ObjectStore(ucp_dir)
    dst_written0 = dst_store.bytes_written
    atom_store = AtomStore(ucp_dir, dst_store)
    src_digest = src_store.digest(manifest_mod.manifest_path(src_tag))
    marker_matches = False
    if dst_store.exists(CONVERT_SOURCE_FILE):
        try:
            marker = dst_store.load(CONVERT_SOURCE_FILE)
            marker_matches = (
                marker.get("source_tag") == src_tag
                and marker.get("source_manifest_sha256") == src_digest
            )
        except SerializationError:
            marker_matches = False
    if not marker_matches:
        # declare intent before the first atom write, so a crashed run
        # leaves enough evidence for the next one to trust its output
        dst_store.save(
            CONVERT_SOURCE_FILE,
            {
                "source_dir": str(src_store.base),
                "source_tag": src_tag,
                "source_manifest_sha256": src_digest,
            },
        )
    reused: Dict[str, Dict] = {}
    if resume and marker_matches:
        for name in names:
            meta = _reusable_atom_meta(atom_store, name, specs[name])
            if meta is not None:
                reused[name] = meta
    fresh_names = [n for n in names if n not in reused]

    cache_hits = 0
    peak_window = 0
    if use_streaming:
        # --- streamed Extract + Union + StripPadding + write, fused per
        # parameter: lower the proven interval maps into read plans,
        # digest-verify exactly the files those plans touch (the
        # streamed hash warms the block cache the preads then hit), and
        # fan the per-parameter pipeline out over the worker pool.  Each
        # atom is written the moment it consolidates, so in-flight
        # memory is bounded by workers x parameter size, not checkpoint
        # size, and a crash mid-fan-out leaves only durable atoms for
        # the resume gate to reuse.
        plans = lower_read_plans(
            analysis,
            fresh_names,
            verify_replicas=verify_replicas,
            patterns={n: specs[n].pattern for n in fresh_names},
        )
        reader = RangeReader(
            src_store,
            cache=cache if cache is not None else BlockCache(cache_bytes),
            window_bytes=window_bytes,
            parallel=max(1, workers),
        )
        touched = sorted({
            rel for plan in plans.values() for rel in plan.files
        })

        def _verify_file(rel: str) -> None:
            manifest_mod.verify_streaming(
                reader,
                rel,
                manifest_mod.manifest_entry(src_manifest, rel.split("/")[-1]),
            )

        _map_maybe_parallel(_verify_file, touched, workers)

        def consolidate_stream(name: str) -> Tuple[str, int, Dict]:
            plan = plans[name]
            spec = specs[name]
            full_numel = _numel(spec.logical_shape)

            def materialize(slices: Tuple[ReadSlice, ...], kind: str) -> np.ndarray:
                arr = np.zeros(full_numel, dtype=np.float32)
                by_file: Dict[str, List[ReadSlice]] = {}
                for s in slices:
                    by_file.setdefault(s.file, []).append(s)
                for rel in sorted(by_file):
                    batch = by_file[rel]
                    ranges = [
                        _index_entry(trees[rel], s.field, kind, rel)
                        .element_range(s.file_start, s.length)
                        for s in batch
                    ]
                    for s, buf in zip(batch, reader.read_multi(rel, ranges)):
                        arr[s.full_start:s.full_start + s.length] = (
                            np.frombuffer(buf, dtype=np.float32, count=s.length)
                        )
                return arr

            states = {}
            for kind in STATE_KINDS:
                primary = materialize(plan.primary, kind)
                if plan.pattern == PATTERN_TO_AVERAGE and plan.copies:
                    merged = average_param_copies(
                        [primary]
                        + [materialize(rs, kind) for _, rs in plan.copies]
                    )
                elif plan.pattern == PATTERN_REPLICATED and plan.copies:
                    for coord, rs in plan.copies:
                        if not np.array_equal(primary, materialize(rs, kind)):
                            raise PatternMatchError(
                                f"{name!r} is replicated_params but rank "
                                f"copies differ; use params_to_average for "
                                f"independently updated parameters"
                            )
                    merged = primary
                else:
                    merged = primary
                states[kind] = strip_padding(
                    merged.reshape(spec.logical_shape), spec
                )
            atom = AtomCheckpoint(
                name=name, states=states, spec=spec.to_dict()
            )
            nbytes = atom_store.write(atom)
            return name, nbytes, {
                "shape": list(atom.shape),
                "spec": atom.spec,
                "kinds": sorted(atom.states),
            }

        results = _map_maybe_parallel(consolidate_stream, fresh_names, workers)
        t2 = time.perf_counter()
        atom_bytes = sum(nbytes for _, nbytes, _ in results)
        fresh_entries = {name: entry for name, _, entry in results}
        cache_hits = reader.cache_hits
        peak_window = reader.peak_window_bytes
    else:
        # --- Union + StripPadding (parallel across parameters) ---
        def consolidate(name: str) -> AtomCheckpoint:
            states = {}
            for kind in STATE_KINDS:
                parts = fragments.get((name, kind))
                if not parts:
                    raise UCPFormatError(f"no {kind} fragments for {name!r}")
                merged = union(
                    parts, specs[name], source_cfg.tp,
                    verify_replicas=verify_replicas,
                )
                states[kind] = strip_padding(merged, specs[name])
            return AtomCheckpoint(
                name=name, states=states, spec=specs[name].to_dict()
            )

        atoms = _map_maybe_parallel(consolidate, fresh_names, workers)
        t2 = time.perf_counter()

        # --- write atoms, then metadata: ucp_meta.npt is the
        # destination's commit point, written only after every atom is
        # durable ---
        atom_bytes = sum(_map_maybe_parallel(atom_store.write, atoms, workers))
        fresh_entries = {
            atom.name: {
                "shape": list(atom.shape),
                "spec": atom.spec,
                "kinds": sorted(atom.states),
            }
            for atom in atoms
        }

    # params in canonical name order so resumed and clean conversions
    # produce byte-identical metadata
    params = {}
    for name in names:
        if name in reused:
            meta = reused[name]
            params[name] = {
                "shape": [int(d) for d in meta["shape"]],
                "spec": meta["spec"],
                "kinds": sorted(meta["kinds"]),
            }
        else:
            params[name] = fresh_entries[name]
    metadata = UCPMetadata(
        iteration=int(job_config["iteration"]),
        optimizer_step=optimizer_step,
        model_config=model_cfg.to_dict(),
        source_parallel_config=source_cfg.to_dict(),
        params=params,
        adam=adam_hyper,
        training={
            "seed": job_config["seed"],
            "data_seed": job_config["data_seed"],
            "global_batch_size": job_config["global_batch_size"],
            "seq_len": job_config["seq_len"],
            "mp_policy": job_config["mp_policy"],
        },
        pattern_program=program.to_dict(),
        loss_scaler=loss_scaler,
    )
    atom_bytes += metadata.save(dst_store)
    if cluster is not None:
        cluster.barrier(f"convert:{src_tag}:commit")
    t3 = time.perf_counter()

    return ConversionReport(
        source_tag=src_tag,
        num_files=len(files),
        num_params=len(params),
        atom_bytes=atom_bytes,
        extract_seconds=t1 - t0,
        union_seconds=t2 - t1,
        write_seconds=t3 - t2,
        simulated_read_s=src_store.simulated_read_s,
        simulated_write_s=dst_store.simulated_write_s,
        num_reused=len(reused),
        bytes_read=src_store.bytes_read - src_read0,
        bytes_written=dst_store.bytes_written - dst_written0,
        cache_hits=cache_hits,
        peak_window_bytes=peak_window,
        streamed=use_streaming,
    )
