"""Distributed checkpoint -> UCP conversion (paper Algorithm 1).

The converter runs lazily and on demand — only when a resume needs a
different parallelism strategy — so normal training pays nothing for
UCP (the paper's zero-save-overhead claim).  Phases:

1. **Extract** every ``optim_states`` rank file into parameter-state
   fragments (independent per file; optionally threaded).
2. **Union** each parameter's fragments by its pattern from the UCP
   language program (independent per parameter; optionally threaded —
   the paper's parallelism/memory trade-off).
3. **StripPadding** and write one atom per parameter, plus global
   metadata.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import re
import time
from typing import Dict, List, Optional, Tuple

from repro.ckpt.loader import read_job_config, resolve_tag
from repro.core.atom import STATE_KINDS, AtomCheckpoint, AtomStore
from repro.core.errors import PatternMatchError, UCPFormatError
from repro.core.metadata import UCPMetadata
from repro.core.ops import ParamFragment, extract, strip_padding, union
from repro.core.patterns import PatternProgram, program_for_config
from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.parallel.tp import ShardSpec
from repro.storage.store import ObjectStore

_OPTIM_FILE_RE = re.compile(r"^zero_dp_rank_(\d+)_mp_rank_(\d+)_optim_states\.npt$")


@dataclasses.dataclass(frozen=True)
class ConversionReport:
    """Metrics from one conversion run."""

    source_tag: str
    num_files: int
    num_params: int
    atom_bytes: int
    extract_seconds: float
    union_seconds: float
    write_seconds: float
    simulated_read_s: float
    simulated_write_s: float

    @property
    def total_seconds(self) -> float:
        """Wall-clock conversion time."""
        return self.extract_seconds + self.union_seconds + self.write_seconds


def _optim_files(store: ObjectStore, tag: str) -> List[str]:
    files = []
    for rel in store.list(tag):
        base = rel.split("/")[-1]
        if _OPTIM_FILE_RE.match(base):
            files.append(rel)
    if not files:
        raise UCPFormatError(f"no optimizer-state files under tag {tag!r}")
    return files


def _map_maybe_parallel(fn, items, workers: int):
    if workers and workers > 1:
        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    return [fn(item) for item in items]


def ucp_convert(
    ckpt_dir: str,
    ucp_dir: str,
    tag: Optional[str] = None,
    program: Optional[PatternProgram] = None,
    workers: int = 0,
    verify_replicas: bool = True,
    strict_spec_check: bool = True,
) -> ConversionReport:
    """Convert a distributed checkpoint into UCP atom format.

    Args:
        ckpt_dir: source distributed-checkpoint directory.
        ucp_dir: output UCP directory (created).
        tag: source tag; defaults to the checkpoint's ``latest``.
        program: UCP-language pattern program; defaults to the built-in
            program for the checkpoint's model family.
        workers: >1 enables threaded Extract/Union/write phases.
        verify_replicas: fail if replicated copies are not bit-equal.
        strict_spec_check: cross-check the program's classification
            against the sharding metadata recorded at save time.
    """
    src_store = ObjectStore(ckpt_dir)
    src_tag = resolve_tag(src_store, tag)
    job_config = read_job_config(ckpt_dir, src_tag)
    model_cfg = ModelConfig.from_dict(job_config["model_config"])
    source_cfg = ParallelConfig.from_dict(job_config["parallel_config"])
    if program is None:
        program = program_for_config(
            model_cfg, expert_parallel=source_cfg.expert_parallel
        )

    # --- Extract (parallel across rank files) ---
    t0 = time.perf_counter()
    files = _optim_files(src_store, src_tag)
    payloads = _map_maybe_parallel(src_store.load, files, workers)

    fragments: Dict[Tuple[str, str], List[ParamFragment]] = {}
    shapes: Dict[str, Dict] = {}
    optimizer_step = 0
    loss_scaler = None
    adam_hyper: Dict = {}
    for payload in payloads:
        optimizer_step = max(optimizer_step, int(payload["optimizer_step"]))
        adam_hyper = payload["adam"]
        if payload.get("loss_scaler") is not None:
            loss_scaler = payload["loss_scaler"]
        for name, saved_spec in payload["sharding"].items():
            shapes[name] = saved_spec
        for fragment in extract(payload):
            fragments.setdefault((fragment.name, fragment.kind), []).append(fragment)
    t1 = time.perf_counter()

    # --- resolve specs through the UCP-language program ---
    names = sorted({name for name, _ in fragments})
    specs: Dict[str, ShardSpec] = {}
    for name in names:
        saved = shapes.get(name)
        if saved is None:
            raise UCPFormatError(f"no sharding metadata for {name!r}")
        spec = program.resolve_spec(
            name,
            tuple(saved["logical_shape"]),
            tuple(saved["unpadded_shape"]),
        )
        if strict_spec_check:
            saved_spec = ShardSpec.from_dict(
                {k: saved[k] for k in
                 ("pattern", "logical_shape", "unpadded_shape", "fragmenter")}
            )
            if (saved_spec.pattern, saved_spec.fragmenter) != (
                spec.pattern, spec.fragmenter
            ):
                raise PatternMatchError(
                    f"pattern program classifies {name!r} as {spec.pattern} "
                    f"({spec.fragmenter}), but the checkpoint was saved as "
                    f"{saved_spec.pattern} ({saved_spec.fragmenter})"
                )
        specs[name] = spec

    # --- Union + StripPadding (parallel across parameters) ---
    def consolidate(name: str) -> AtomCheckpoint:
        states = {}
        for kind in STATE_KINDS:
            parts = fragments.get((name, kind))
            if not parts:
                raise UCPFormatError(f"no {kind} fragments for {name!r}")
            merged = union(
                parts, specs[name], source_cfg.tp, verify_replicas=verify_replicas
            )
            states[kind] = strip_padding(merged, specs[name])
        return AtomCheckpoint(name=name, states=states, spec=specs[name].to_dict())

    atoms = _map_maybe_parallel(consolidate, names, workers)
    t2 = time.perf_counter()

    # --- write atoms + metadata ---
    dst_store = ObjectStore(ucp_dir)
    atom_store = AtomStore(ucp_dir, dst_store)
    atom_bytes = sum(_map_maybe_parallel(atom_store.write, atoms, workers))

    metadata = UCPMetadata(
        iteration=int(job_config["iteration"]),
        optimizer_step=optimizer_step,
        model_config=model_cfg.to_dict(),
        source_parallel_config=source_cfg.to_dict(),
        params={
            atom.name: {
                "shape": list(atom.shape),
                "spec": atom.spec,
                "kinds": sorted(atom.states),
            }
            for atom in atoms
        },
        adam=adam_hyper,
        training={
            "seed": job_config["seed"],
            "data_seed": job_config["data_seed"],
            "global_batch_size": job_config["global_batch_size"],
            "seq_len": job_config["seq_len"],
            "mp_policy": job_config["mp_policy"],
        },
        pattern_program=program.to_dict(),
        loss_scaler=loss_scaler,
    )
    atom_bytes += metadata.save(dst_store)
    t3 = time.perf_counter()

    return ConversionReport(
        source_tag=src_tag,
        num_files=len(files),
        num_params=len(atoms),
        atom_bytes=atom_bytes,
        extract_seconds=t1 - t0,
        union_seconds=t2 - t1,
        write_seconds=t3 - t2,
        simulated_read_s=src_store.simulated_read_s,
        simulated_write_s=dst_store.simulated_write_s,
    )
