"""Distributed checkpoint -> UCP conversion (paper Algorithm 1).

The converter runs lazily and on demand — only when a resume needs a
different parallelism strategy — so normal training pays nothing for
UCP (the paper's zero-save-overhead claim).  Phases:

1. **Extract** every ``optim_states`` rank file into parameter-state
   fragments (independent per file; optionally threaded).
2. **Union** each parameter's fragments by its pattern from the UCP
   language program (independent per parameter; optionally threaded —
   the paper's parallelism/memory trade-off).
3. **StripPadding** and write one atom per parameter, plus global
   metadata.

Two execution strategies implement the same semantics:

* the **full-read** path materializes every rank file and runs the
  in-memory ``extract``/``union`` operators;
* the **streaming** path (default whenever the byte-provenance
  pre-flight proves the source sound) never materializes a rank file.
  The provenance interval maps are lowered into per-parameter *read
  plans* — exact ``(file, byte-range) -> consolidated range`` preads —
  executed over a shared :class:`~repro.storage.rangeio.RangeReader`
  with adjacent-range coalescing and a bounded block cache.  Manifest
  digests are verified by *streaming* each consumed file once in
  window-sized chunks that pre-warm the very blocks extract reads
  next, so each source byte is read from disk at most once; per-atom
  results are written as soon as they consolidate, keeping in-flight
  memory bounded by the worker count instead of the checkpoint size.

Conversion is crash-consistent and resumable: the source tag must be
committed (its manifest is required, and every rank file is verified
against it before use), ``ucp_meta.npt`` is written last as the
destination's commit point, and a re-run after a mid-conversion crash
reuses every atom that already exists and passes its integrity check —
provided a source-identity marker proves the partial output came from
the *same* committed source.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import os
import re
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import lockwitness as _lockwitness
from repro.analysis.diagnostics import LayoutLintError, LintReport, error
from repro.analysis.interchange import preflight_convert
from repro.analysis.provenance import (
    ParamProvenance,
    ProvenanceAnalysis,
    SourceExtent,
    analyze_source,
)
from repro.ckpt import manifest as manifest_mod
from repro.ckpt import naming
from repro.ckpt.errors import CheckpointIntegrityError, CheckpointNotFoundError
from repro.ckpt.loader import resolve_tag
from repro.core.atom import STATE_KINDS, AtomCheckpoint, AtomStore
from repro.core.errors import PatternMatchError, UCPError, UCPFormatError
from repro.core.intervals import numel as _numel
from repro.core.metadata import UCPMetadata
from repro.core.ops import (
    _KIND_TO_FIELD,
    ParamFragment,
    extract,
    strip_padding,
    union,
)
from repro.core.patterns import PatternProgram, program_for_config
from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.parallel.sp import average_param_copies
from repro.parallel.tp import (
    PATTERN_REPLICATED,
    PATTERN_TO_AVERAGE,
    ShardSpec,
)
from repro.storage.rangeio import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_WINDOW_BYTES,
    BlockCache,
    RangeReader,
)
from repro.storage.serializer import SerializationError, TensorIndexEntry
from repro.storage.store import ObjectStore

_OPTIM_FILE_RE = re.compile(r"^zero_dp_rank_(\d+)_mp_rank_(\d+)_optim_states\.npt$")

CONVERT_SOURCE_FILE = "ucp_convert_source.npt"
"""Marker recording which committed source a (possibly partial)
conversion was produced from; gates atom reuse on resume."""


@dataclasses.dataclass(frozen=True)
class ConversionReport:
    """Metrics from one conversion run.

    ``num_reused`` counts atoms carried over from a previous
    (interrupted) conversion of the same committed source — they were
    verified, not rewritten.  ``bytes_read`` / ``bytes_written`` are
    the source/destination store's real byte deltas for this run
    (headers, digest verification, and payload all included), so a
    streamed conversion can *prove* it read less than the full source
    checkpoint.  ``cache_hits`` and ``peak_window_bytes`` come from the
    streaming path's shared :class:`~repro.storage.rangeio.RangeReader`
    (zero on the full-read path): cache hits count range requests that
    reused digest-warmed or coalesced blocks, and the peak window bounds
    the largest single disk read the run ever issued.

    Byte decomposition (streaming path): ``bytes_read`` splits into
    ``header_bytes`` (manifest + job config + the header-only index
    pass), ``digest_bytes`` (aggregate whole-file verification — every
    touched file hashed once, warming the block cache), and whatever
    the extract phase still had to fetch cold (normally ~0, because
    the digest pass pre-warmed it).  ``planned_state_bytes`` is the
    per-rank state payload the lowered plans actually consume (all
    three state kinds) — the number the paper's ~0.25× fraction claim
    is about.  It is *not* a disk-read counter, so it can legitimately
    be smaller than ``bytes_read`` while digest verification hashes
    whole files; keeping the two separate is what stops the metrics
    from contradicting each other.

    Stage/syscall counters (streaming path): ``stage_seconds`` maps
    ``lower`` / ``digest`` / ``read`` / ``assemble`` / ``write`` to
    seconds *summed across worker threads* (stages overlap, so the sum
    can exceed :attr:`total_seconds`); ``num_preads`` counts positioned
    reads issued to the store, ``num_batches`` the batched
    ``read_ranges`` calls they were amortized into, and
    ``ranges_coalesced`` how many planned ranges were merged away by
    plan- and reader-level coalescing before hitting the disk.
    """

    source_tag: str
    num_files: int
    num_params: int
    atom_bytes: int
    extract_seconds: float
    union_seconds: float
    write_seconds: float
    simulated_read_s: float
    simulated_write_s: float
    num_reused: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cache_hits: int = 0
    peak_window_bytes: int = 0
    streamed: bool = False
    num_preads: int = 0
    num_batches: int = 0
    ranges_coalesced: int = 0
    header_bytes: int = 0
    digest_bytes: int = 0
    planned_state_bytes: int = 0
    stage_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Wall-clock conversion time."""
        return self.extract_seconds + self.union_seconds + self.write_seconds


def _optim_files(store: ObjectStore, tag: str) -> List[str]:
    files = []
    for rel in store.list(tag):
        base = rel.split("/")[-1]
        if _OPTIM_FILE_RE.match(base):
            files.append(rel)
    if not files:
        raise UCPFormatError(f"no optimizer-state files under tag {tag!r}")
    return files


def _resolve_workers(workers: Optional[int]) -> int:
    """CPU-aware worker count: ``None`` means ``min(8, cpu_count)``.

    Explicit ``0``/``1`` stay serial; explicit counts are respected.
    Results are order-deterministic either way — the parallel map
    preserves input order regardless of completion order.
    """
    if workers is None:
        return min(8, os.cpu_count() or 1)
    return workers


def _map_maybe_parallel(fn, items, workers: int):
    if workers and workers > 1:
        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    return [fn(item) for item in items]


@dataclasses.dataclass(frozen=True)
class ReadSlice:
    """One pread of a parameter read plan (the expanded, row form).

    ``length`` *elements* starting at element ``file_start`` of the
    flat array ``field`` inside source file ``file`` land at
    consolidated elements ``[full_start, full_start + length)``.  The
    field names the fp32 array; the converter substitutes the sibling
    ``exp_avg``/``exp_avg_sq`` arrays per state kind — provenance is
    kind-uniform because all three flat buffers share one segment map.

    Plans are carried in the columnar :class:`SliceBlock` form;
    :meth:`SliceBlock.slices` expands back to this record for
    explain/debug output and tests.
    """

    full_start: int
    length: int
    file: str
    field: str
    file_start: int


@dataclasses.dataclass(frozen=True, eq=False)
class SliceBlock:
    """All slices of one plan targeting one ``(file, field)``, columnar.

    Row ``i`` of the three parallel int64 arrays says ``lengths[i]``
    elements starting at element ``file_starts[i]`` of the flat array
    ``field`` in ``file`` land at consolidated elements
    ``[full_starts[i], full_starts[i] + lengths[i])``.  Rows are sorted
    into sequential file order.  Keeping the plan columnar lets the
    converter coalesce, bounds-check and scatter whole blocks with
    numpy index operations instead of per-slice Python loops — the
    per-range overhead that made streamed conversion lose on wall-clock
    at mini scale.
    """

    file: str
    field: str
    file_starts: np.ndarray
    lengths: np.ndarray
    full_starts: np.ndarray

    @property
    def num_slices(self) -> int:
        """Row count."""
        return int(self.lengths.size)

    @property
    def planned_elements(self) -> int:
        """Total elements the block reads (per state kind)."""
        return int(self.lengths.sum())

    def slices(self) -> Tuple[ReadSlice, ...]:
        """The rows expanded into per-slice records."""
        return tuple(
            ReadSlice(
                full_start=int(fu),
                length=int(ln),
                file=self.file,
                field=self.field,
                file_start=int(fs),
            )
            for fu, ln, fs in zip(
                self.full_starts, self.lengths, self.file_starts
            )
        )


@dataclasses.dataclass(frozen=True)
class ParamReadPlan:
    """Everything the streaming converter reads for one parameter.

    ``primary`` covers the selected copies (what ``union`` consumes);
    ``copies`` the non-selected mp-coordinate replicas the pattern
    additionally demands (all of them for ``params_to_average``, all
    of them under ``verify_replicas`` for ``replicated_params``, none
    otherwise).  All slices are pre-clipped to the parameter's
    non-padding data intervals, so a plan never reads a padding byte —
    the runtime enforcement of UCP019.
    """

    name: str
    pattern: str
    primary: Tuple[SliceBlock, ...]
    copies: Tuple[Tuple[Tuple[int, int, int], Tuple[SliceBlock, ...]], ...]

    @property
    def files(self) -> Tuple[str, ...]:
        """Every source file any slice of this plan touches, sorted."""
        rels = {b.file for b in self.primary}
        for _, blocks in self.copies:
            rels.update(b.file for b in blocks)
        return tuple(sorted(rels))

    @property
    def planned_elements(self) -> int:
        """Total fp32 elements the plan reads (per state kind)."""
        total = sum(b.planned_elements for b in self.primary)
        for _, blocks in self.copies:
            total += sum(b.planned_elements for b in blocks)
        return total


def _data_bounds(
    data: Sequence[Tuple[int, int]]
) -> Tuple[np.ndarray, np.ndarray]:
    """The sorted data intervals as ``(d_lo, d_hi)`` index arrays.

    Hoisted out of :func:`_clip_extents` so one parameter's data
    intervals are converted once and shared across its primary part and
    every replica copy (they clip against the same intervals).
    """
    d_lo = np.fromiter((d[0] for d in data), np.int64, len(data))
    d_hi = np.fromiter((d[1] for d in data), np.int64, len(data))
    return d_lo, d_hi


def _clip_extents(
    extents: Sequence[SourceExtent],
    data: Sequence[Tuple[int, int]],
    bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Tuple[SliceBlock, ...]:
    """Intersect provenance extents with the non-padding data intervals.

    Vectorized lowering: for E extents against D sorted disjoint data
    intervals, two ``searchsorted`` calls locate each extent's window
    of overlapping intervals and one repeat/arange expansion
    materializes every (extent × interval) intersection at once — no
    per-slice Python loop, so lowering costs O(E log D) plus O(slices)
    numpy work however fragmented the layout is.  ``bounds`` optionally
    carries a precomputed :func:`_data_bounds` of ``data``.
    """
    if not extents or not data:
        return ()
    n_ext = len(extents)
    e_lo = np.fromiter((e.full_start for e in extents), np.int64, n_ext)
    e_hi = np.fromiter((e.full_end for e in extents), np.int64, n_ext)
    f0 = np.fromiter((e.file_start for e in extents), np.int64, n_ext)
    d_lo, d_hi = bounds if bounds is not None else _data_bounds(data)
    # extent e overlaps exactly the interval window [i0, i1): those with
    # d_hi > e.full_start and d_lo < e.full_end
    i0 = np.searchsorted(d_hi, e_lo, side="right")
    i1 = np.searchsorted(d_lo, e_hi, side="left")
    counts = np.maximum(i1 - i0, 0)
    total = int(counts.sum())
    if total == 0:
        return ()
    ext = np.repeat(np.arange(n_ext), counts)
    flat0 = np.cumsum(counts) - counts
    ivl = np.repeat(i0, counts) + (np.arange(total) - np.repeat(flat0, counts))
    lo = np.maximum(e_lo[ext], d_lo[ivl])
    hi = np.minimum(e_hi[ext], d_hi[ivl])
    keep = hi > lo
    ext, lo, hi = ext[keep], lo[keep], hi[keep]
    lengths = hi - lo
    file_starts = f0[ext] + (lo - e_lo[ext])
    return _build_blocks(extents, ext, file_starts, lengths, lo)


def _build_blocks(
    extents: Sequence[SourceExtent],
    rows_ext: np.ndarray,
    file_starts: np.ndarray,
    lengths: np.ndarray,
    full_starts: np.ndarray,
) -> Tuple[SliceBlock, ...]:
    """Group clipped slice rows into per-(file, field) blocks.

    ``rows_ext`` maps each row to the extent (hence file/field) it was
    clipped from; rows of one block come out sorted by ``file_starts``
    so the downstream fetch plan walks each file forward.
    """
    groups: Dict[Tuple[str, str], int] = {}
    for e in extents:
        groups.setdefault((e.file, e.field), len(groups))
    if len(groups) == 1:
        # overwhelmingly common shape: one source (file, field) per
        # part — skip the group-id machinery entirely
        ((rel, field),) = groups
        order = np.argsort(file_starts, kind="stable")
        return (SliceBlock(
            file=rel,
            field=field,
            file_starts=file_starts[order],
            lengths=lengths[order],
            full_starts=full_starts[order],
        ),)
    gids = np.fromiter(
        (groups[(e.file, e.field)] for e in extents), np.int64, len(extents)
    )
    row_gid = gids[rows_ext]
    blocks: List[SliceBlock] = []
    for (rel, field), gid in groups.items():
        mask = row_gid == gid
        if not mask.any():
            continue
        fs, ln, fu = file_starts[mask], lengths[mask], full_starts[mask]
        order = np.argsort(fs, kind="stable")
        blocks.append(SliceBlock(
            file=rel,
            field=field,
            file_starts=fs[order],
            lengths=ln[order],
            full_starts=fu[order],
        ))
    return tuple(blocks)


_GROUP_STRIDE = np.int64(1) << 41
"""Element-space stride separating lowering jobs inside the one batched
searchsorted domain — far above any real parameter's element count."""


def _lower_batch(
    jobs: Sequence[Tuple[
        Sequence[SourceExtent],
        Sequence[Tuple[int, int]],
        Optional[Tuple[np.ndarray, np.ndarray]],
    ]]
) -> List[Tuple[SliceBlock, ...]]:
    """Clip many (extents, data, bounds) jobs in one vectorized pass.

    Every job's extent and data intervals are shifted into a private
    ``_GROUP_STRIDE``-wide window of one shared element space, so a
    single ``searchsorted`` pair + repeat/arange expansion lowers the
    whole conversion's plans at once — the per-call numpy dispatch
    overhead that dominated per-parameter lowering is paid once, not
    once per (parameter, replica) pair.  Row-for-row equivalent to
    calling :func:`_clip_extents` per job.
    """
    out: List[Tuple[SliceBlock, ...]] = [() for _ in jobs]
    live = [i for i, (ext, data, _) in enumerate(jobs) if ext and data]
    if not live:
        return out
    n_live = len(live)
    e_lo_l: List[np.ndarray] = []
    e_hi_l: List[np.ndarray] = []
    f0_l: List[np.ndarray] = []
    d_lo_l: List[np.ndarray] = []
    d_hi_l: List[np.ndarray] = []
    first_ext = np.empty(n_live + 1, np.int64)
    ext_counts = np.empty(n_live, np.int64)
    d_counts = np.empty(n_live, np.int64)
    tot_ext = 0
    for k, gi in enumerate(live):
        extents, data, bounds = jobs[gi]
        n = len(extents)
        first_ext[k] = tot_ext
        ext_counts[k] = n
        tot_ext += n
        e_lo_l.append(np.fromiter((e.full_start for e in extents), np.int64, n))
        e_hi_l.append(np.fromiter((e.full_end for e in extents), np.int64, n))
        f0_l.append(np.fromiter((e.file_start for e in extents), np.int64, n))
        if bounds is None:
            bounds = _data_bounds(data)
        d_lo_l.append(bounds[0])
        d_hi_l.append(bounds[1])
        d_counts[k] = bounds[0].size
    first_ext[n_live] = tot_ext
    bases = np.arange(n_live, dtype=np.int64) * _GROUP_STRIDE
    e_base = np.repeat(bases, ext_counts)
    e_lo = np.concatenate(e_lo_l) + e_base
    e_hi = np.concatenate(e_hi_l) + e_base
    f0 = np.concatenate(f0_l)
    d_base = np.repeat(bases, d_counts)
    d_lo = np.concatenate(d_lo_l) + d_base
    d_hi = np.concatenate(d_hi_l) + d_base
    i0 = np.searchsorted(d_hi, e_lo, side="right")
    i1 = np.searchsorted(d_lo, e_hi, side="left")
    counts = np.maximum(i1 - i0, 0)
    total = int(counts.sum())
    if total == 0:
        return out
    ext = np.repeat(np.arange(tot_ext), counts)
    flat0 = np.cumsum(counts) - counts
    ivl = np.repeat(i0, counts) + (np.arange(total) - np.repeat(flat0, counts))
    lo = np.maximum(e_lo[ext], d_lo[ivl])
    hi = np.minimum(e_hi[ext], d_hi[ivl])
    keep = hi > lo
    ext, lo, hi = ext[keep], lo[keep], hi[keep]
    lengths = hi - lo
    file_starts = f0[ext] + (lo - e_lo[ext])
    full_starts = lo - e_base[ext]
    # rows come out sorted by global extent index, so each job's rows
    # are one contiguous stretch
    cut = np.searchsorted(ext, first_ext)
    for k, gi in enumerate(live):
        a, b = int(cut[k]), int(cut[k + 1])
        if a == b:
            continue
        out[gi] = _build_blocks(
            jobs[gi][0],
            ext[a:b] - first_ext[k],
            file_starts[a:b],
            lengths[a:b],
            full_starts[a:b],
        )
    return out


def lower_read_plans(
    analysis: ProvenanceAnalysis,
    names: Optional[Sequence[str]] = None,
    verify_replicas: bool = True,
    patterns: Optional[Dict[str, str]] = None,
) -> Dict[str, ParamReadPlan]:
    """Lower provenance interval maps into per-parameter read plans.

    The maps were proven sound by the UCP017–UCP022 theorems (coverage,
    exclusivity, padding hygiene), so the lowered plans inherit the
    guarantee: executing exactly these preads touches every consolidated
    data byte of every selected copy once, and no padding byte ever.

    Args:
        analysis: a *clean* (``report.ok``) source provenance analysis.
        names: parameters to plan (default: all analyzed).
        verify_replicas: include replica reads for ``replicated_params``
            so the converter can bit-compare them; ``False`` plans the
            primary copy only — the streaming path's concrete byte
            saving over a full-read conversion.
        patterns: per-parameter pattern overrides from the resolved
            UCP-language program — a custom program may e.g. reclassify
            a replicated norm as ``params_to_average``, which changes
            *which* copies the plan must read (default: the analyzed
            layout's patterns).
    """
    ordered = sorted(analysis.params) if names is None else list(names)
    jobs = []
    meta: List[Tuple[str, str, List[Tuple[int, int, int]]]] = []
    for name in ordered:
        prov = analysis.params[name]
        pattern = prov.spec.pattern
        if patterns is not None and name in patterns:
            pattern = patterns[name]
        bounds = _data_bounds(prov.data) if prov.data else None
        coords: List[Tuple[int, int, int]] = []
        if pattern == PATTERN_TO_AVERAGE or (
            pattern == PATTERN_REPLICATED and verify_replicas
        ):
            coords = sorted(prov.replicas)
        meta.append((name, pattern, coords))
        jobs.append((prov.extents, prov.data, bounds))
        for coord in coords:
            jobs.append((prov.replicas[coord], prov.data, bounds))
    lowered = _lower_batch(jobs)
    plans: Dict[str, ParamReadPlan] = {}
    j = 0
    for name, pattern, coords in meta:
        primary = lowered[j]
        j += 1
        copies: List[Tuple[Tuple[int, int, int], Tuple[SliceBlock, ...]]] = []
        for coord in coords:
            copies.append((coord, lowered[j]))
            j += 1
        plans[name] = ParamReadPlan(
            name=name,
            pattern=pattern,
            primary=primary,
            copies=tuple(copies),
        )
    return plans


def _index_entry(
    tree: Dict, field: str, kind: str, rel: str
) -> TensorIndexEntry:
    """Resolve a provenance field + state kind to a tensor index entry."""
    node = None
    if field in _KIND_TO_FIELD.values():
        node = tree.get(_KIND_TO_FIELD[kind])
    elif field.startswith("param_states.fp32."):
        pname = field[len("param_states.fp32."):]
        states = tree.get("param_states")
        if isinstance(states, dict):
            node = states.get(kind, {}).get(pname)
    if not isinstance(node, TensorIndexEntry):
        raise UCPFormatError(
            f"{rel}: no {kind!r} tensor behind provenance field {field!r}"
        )
    if np.dtype(node.dtype) != np.float32:
        raise UCPFormatError(
            f"{rel}: {kind!r} state behind {field!r} stored as "
            f"{node.dtype}; streaming conversion requires float32 "
            f"(byte-exact) state arrays"
        )
    return node


DEFAULT_COALESCE_GAP = 64 << 10
"""Default plan-level coalescing gap (bytes).

Slices of one (file, field) separated by at most this many unneeded
bytes are fetched as one range.  On the standard path the gap bytes are
already cache-resident (the digest pass hashed the whole file through
the shared cache), so coalescing trades zero extra disk bytes for far
fewer range requests; on a cold cache it trades at most the gap bytes
per merge for one fewer pread.
"""

CACHE_AUTO_CAP_BYTES = 1 << 30
"""Ceiling for the auto-grown block-cache budget (see ``ucp_convert``:
the budget grows to the largest single read plan's file working set so
the digest pre-warm stays effective, but never past this cap)."""

WINDOW_AUTO_CAP_BYTES = 64 << 20
"""Ceiling for the auto-sized read window (see ``ucp_convert``: the
window grows to the largest touched file so whole files cache as single
blocks and extract runs zero-copy, but one in-flight read buffer never
exceeds this)."""

_ZERO_IDS = np.zeros(1, dtype=np.int64)
"""Shared single-slice ``span_id``/``rel_starts`` (always index 0)."""

_GATHER_INDEX_THRESHOLD = 8
"""Slice count above which a block scatters through precomputed index
arrays (one fancy-index assignment per span) instead of a per-slice
copy loop.  Below it the loop is cheaper than building the indices:
the index arrays cost ~6 numpy ops to build but are reused across all
three state kinds, so the break-even sits at a handful of slices."""

_GATHER_INDEX_MAX_AVG_ELEMS = 1024
"""Mean slice length (elements) above which fancy indexing loses to a
per-slice contiguous copy.  Element-index gather moves one element per
index (and materializes int64 index arrays as large as the data); a
contiguous ``arr[a:b] = view[c:d]`` is a memcpy.  The loop's ~µs of
Python per slice amortizes once slices reach a few KiB, so only blocks
of many *small* slices take the index path."""


class _BlockGather:
    """Coalesced fetch spans + scatter indices for one :class:`SliceBlock`.

    Built once per block and reused across all three state kinds: the
    flat ``fp32``/``exp_avg``/``exp_avg_sq`` buffers share one segment
    map, so only the tensor-index byte offset differs per kind.  Slices
    whose file-space gap is <= ``gap_elems`` merge into one span
    (overlapping and adjacent slices always merge); each span becomes
    one range request, and every span end is some slice's end, so a
    span never reaches past the field bytes the plan proved in-bounds.
    """

    __slots__ = (
        "span_starts", "span_ends", "span_id", "rel_starts",
        "lengths", "full_starts", "n_slices", "n_spans",
        "dest_idx", "src_idx", "flat_lo", "flat_hi",
    )

    def __init__(self, block: SliceBlock, gap_elems: int) -> None:
        fs, ln, fu = block.file_starts, block.lengths, block.full_starts
        n = int(fs.size)
        if n == 1:
            # single contiguous slice: one span, identity scatter
            self.span_starts = fs
            self.span_ends = fs + ln
            self.span_id = _ZERO_IDS
            self.rel_starts = _ZERO_IDS
            self.lengths = ln
            self.full_starts = fu
            self.n_slices = 1
            self.n_spans = 1
            self.dest_idx = None
            self.src_idx = None
            self.flat_lo = None
            self.flat_hi = None
            return
        ends = fs + ln
        run_max = np.maximum.accumulate(ends)
        new_span = np.empty(n, dtype=bool)
        new_span[0] = True
        new_span[1:] = fs[1:] > run_max[:-1] + gap_elems
        first = np.flatnonzero(new_span)
        self.span_starts = fs[first]
        self.span_ends = np.maximum.reduceat(ends, first)
        self.span_id = np.cumsum(new_span) - 1
        self.rel_starts = fs - self.span_starts[self.span_id]
        self.lengths = ln
        self.full_starts = fu
        self.n_slices = n
        self.n_spans = int(first.size)
        total = int(ln.sum())
        if (
            n > _GATHER_INDEX_THRESHOLD
            and total < n * _GATHER_INDEX_MAX_AVG_ELEMS
        ):
            cum = np.cumsum(ln)
            flat0 = cum - ln
            pos = np.arange(total) - np.repeat(flat0, ln)
            self.dest_idx = np.repeat(fu, ln) + pos
            self.src_idx = np.repeat(self.rel_starts, ln) + pos
            # rows [flat_lo[k], flat_hi[k]) of the flat index arrays
            # belong to span k (slices are file-sorted, so each span's
            # slices are contiguous)
            self.flat_lo = flat0[first]
            self.flat_hi = np.append(self.flat_lo[1:], total)
        else:
            self.dest_idx = None
            self.src_idx = None
            self.flat_lo = None
            self.flat_hi = None

    def byte_ranges(
        self, entry: TensorIndexEntry
    ) -> List[Tuple[int, int]]:
        """Absolute (offset, length) byte ranges, one per span."""
        return [
            entry.element_range(int(s), int(e - s))
            for s, e in zip(self.span_starts, self.span_ends)
        ]

    def scatter(self, arr: np.ndarray, bufs: List[memoryview]) -> None:
        """Scatter fetched span buffers into the consolidated array.

        The float32 views over the (read-only) span buffers are
        consumed in place — the only copy on the whole path is the
        assignment into ``arr`` itself.
        """
        if self.n_slices == 1:
            fu = int(self.full_starts[0])
            arr[fu : fu + int(self.lengths[0])] = np.frombuffer(
                bufs[0], dtype=np.float32
            )
            return
        views = [np.frombuffer(buf, dtype=np.float32) for buf in bufs]
        if self.dest_idx is not None:
            for k, view in enumerate(views):
                a, b = self.flat_lo[k], self.flat_hi[k]
                arr[self.dest_idx[a:b]] = view[self.src_idx[a:b]]
            return
        for i in range(self.n_slices):
            view = views[self.span_id[i]]
            src = self.rel_starts[i]
            length = self.lengths[i]
            arr[self.full_starts[i]:self.full_starts[i] + length] = (
                view[src:src + length]
            )


def _digest_path(path: str) -> str:
    """SHA-256 of one file, for the process-pool digest option.

    Module-level (hence picklable) and dependency-free: worker
    processes hash straight from the filesystem, bypassing the parent's
    block cache — the caller re-charges the bytes to the source store's
    accounting so ``bytes_read`` stays honest.
    """
    hasher = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(DEFAULT_WINDOW_BYTES), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _verify_source_commit(
    store: ObjectStore, tag: str, manifest: Dict, files: List[str]
) -> None:
    """Cross-check a committed tag's rank files against its manifest.

    A committed tag whose manifest lists an optimizer-state file the
    disk no longer has would otherwise convert *silently wrong* — the
    missing ranks' fragments would simply be absent from the union.
    """
    on_disk = {rel.split("/")[-1] for rel in files}
    for basename in sorted(manifest["files"]):
        if _OPTIM_FILE_RE.match(basename) and basename not in on_disk:
            raise CheckpointIntegrityError(
                f"missing rank file {tag}/{basename}: it is recorded in the "
                f"commit manifest but absent on disk; converting without it "
                f"would drop that rank's optimizer state"
            )


def _rank_label(rel: str) -> str:
    """Human rank coordinates of an optimizer-state file path."""
    match = _OPTIM_FILE_RE.match(rel.split("/")[-1])
    if match is None:
        return rel
    return f"dp_rank {int(match.group(1))} / mp_rank {int(match.group(2))}"


def _diverging_keys(a: Optional[Dict], b: Optional[Dict]) -> List[str]:
    """Keys on which two (possibly absent) state dicts disagree."""
    if a is None or b is None:
        return ["<entire state>"]
    return sorted(
        k for k in set(a) | set(b)
        if k not in a or k not in b or a[k] != b[k]
    )


def _check_cross_rank_consistency(
    files: List[str], payloads: List[Dict]
) -> Tuple[Dict, Optional[Dict]]:
    """Adam hyperparameters and loss-scaler state, asserted rank-uniform.

    Every rank file records the job-wide Adam hyperparameters and loss
    scaler; a disagreement means the tag mixes incompatible optimizer
    states (e.g. files spliced from different runs) and silently
    picking one would corrupt the converted checkpoint.  Each
    divergence is reported as a UCP015 diagnostic naming *which* ranks
    and *which* hyperparameter disagree, aggregated into one
    :class:`LayoutLintError` so no mismatch hides behind another.
    """
    report = LintReport(subject="cross-rank consistency")
    ref_rel = files[0]
    adam_hyper: Dict = payloads[0]["adam"]
    scaler_state: Optional[Dict] = payloads[0].get("loss_scaler")
    for rel, payload in zip(files[1:], payloads[1:]):
        adam = payload["adam"]
        if adam != adam_hyper:
            keys = _diverging_keys(adam_hyper, adam)
            detail = ", ".join(
                f"{k}: {adam_hyper.get(k)!r} vs {adam.get(k)!r}" for k in keys
            )
            report.add(error(
                "UCP015",
                f"adam hyperparameters disagree across rank files: "
                f"{_rank_label(rel)} differs from {_rank_label(ref_rel)} "
                f"on {detail}; the tag mixes optimizer states from "
                f"incompatible runs",
                location=rel,
            ))
        scaler = payload.get("loss_scaler")
        if scaler != scaler_state:
            keys = _diverging_keys(scaler_state, scaler)
            report.add(error(
                "UCP015",
                f"loss-scaler state disagrees across rank files: "
                f"{_rank_label(rel)} differs from {_rank_label(ref_rel)} "
                f"on {', '.join(keys)} ({scaler_state} vs {scaler}); the "
                f"tag mixes optimizer states from incompatible runs",
                location=rel,
            ))
    if not report.ok:
        raise LayoutLintError(report, prefix="source tag is inconsistent")
    return adam_hyper, scaler_state


def _reusable_atom_meta(
    atom_store: AtomStore, name: str, spec: ShardSpec
) -> Optional[Dict]:
    """A previously written atom's metadata, iff it can be trusted.

    Reusable means: the metadata sidecar and all three state files
    exist, decode cleanly (per-tensor CRC checked by the serializer),
    and match the spec the current conversion resolved for the
    parameter.  Anything less re-converts the atom from source.
    """
    try:
        meta = atom_store.read_meta(name)
        kinds = meta.get("kinds")
        if kinds is None or sorted(kinds) != sorted(STATE_KINDS):
            return None
        if meta.get("spec") != spec.to_dict():
            return None
        shape = tuple(meta.get("shape", ()))
        for kind in STATE_KINDS:
            if tuple(atom_store.read_state(name, kind).shape) != shape:
                return None
    except (UCPError, SerializationError):
        return None
    return meta


def ucp_convert(
    ckpt_dir: str,
    ucp_dir: str,
    tag: Optional[str] = None,
    program: Optional[PatternProgram] = None,
    workers: Optional[int] = None,
    verify_replicas: bool = True,
    strict_spec_check: bool = True,
    src_store: Optional[ObjectStore] = None,
    dst_store: Optional[ObjectStore] = None,
    resume: bool = True,
    provenance: bool = True,
    cluster=None,
    streaming="auto",
    window_bytes: Optional[int] = None,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    cache: Optional[BlockCache] = None,
    coalesce_gap: int = DEFAULT_COALESCE_GAP,
    digest_pool: str = "thread",
) -> ConversionReport:
    """Convert a distributed checkpoint into UCP atom format.

    Args:
        ckpt_dir: source distributed-checkpoint directory.
        ucp_dir: output UCP directory (created).
        tag: source tag; defaults to the checkpoint's ``latest``.
        program: UCP-language pattern program; defaults to the built-in
            program for the checkpoint's model family.
        workers: thread count for the Extract/Union/write fan-out.
            ``None`` (default) resolves CPU-aware to
            ``min(8, os.cpu_count())``; ``0``/``1`` run serial.  Results
            are deterministic regardless of the count or completion
            order.
        verify_replicas: fail if replicated copies are not bit-equal.
        strict_spec_check: cross-check the program's classification
            against the sharding metadata recorded at save time.
        src_store: optional pre-built source store (shares simulated-IO
            accounting and fault policy with the caller).
        dst_store: optional pre-built destination store.
        resume: reuse intact atoms left by a previous interrupted
            conversion of the same committed source.
        provenance: run the byte-provenance theorems (coverage /
            exclusivity / padding hygiene, UCP017-UCP022) over the
            rank-file headers as part of the pre-flight (default on;
            costs kilobytes of header IO).
        cluster: optional :class:`~repro.dist.cluster.Cluster` whose
            collective trace should bracket the conversion with
            ``convert:<tag>:enter``/``:commit`` barriers — the
            happens-before analyzer then proves the conversion's
            critical section does not overlap a concurrent save's.
        streaming: ``"auto"`` (default) uses the planned byte-range
            pipeline whenever the provenance pre-flight ran and proved
            the source clean, and the legacy full-read path otherwise;
            ``True`` forces streaming (building the provenance analysis
            if need be, and failing loudly when its theorems do not
            hold); ``False`` forces the full-read path.
        window_bytes: streaming only — maximum bytes per disk read
            (and per cached block); bounds in-flight buffer memory.
            ``None`` (default) auto-sizes the window to the largest
            touched source file (capped at
            :data:`WINDOW_AUTO_CAP_BYTES`), so each file is digested
            with one read and cached as one block — the zero-copy
            resident-view fast path then serves every extract range as
            a pure ``memoryview`` slice.  Pass an explicit value to pin
            buffer memory on constrained hosts.
        cache_bytes: streaming only — shared block-cache budget floor.
            The effective budget auto-grows to the largest single read
            plan's file working set (capped at
            :data:`CACHE_AUTO_CAP_BYTES`), so the digest-verification
            pass pre-warms every block Extract reads and each source
            byte is read from disk once — still far under the
            full-read path's footprint, which holds every touched file
            deserialized at once.
        cache: streaming only — a caller-provided :class:`BlockCache`
            to use instead of a fresh one (``cache_bytes`` is then
            ignored).  The cache is internally locked, so one instance
            may be shared across concurrent conversions and verifiers
            (the multi-tenant hub shape).
        coalesce_gap: streaming only — plan-level batching knob: slices
            of one (file, field) separated by at most this many bytes
            are fetched as one range (see
            :data:`DEFAULT_COALESCE_GAP`).  ``0`` merges only
            overlapping/adjacent slices.  Output is byte-identical at
            any setting.
        digest_pool: streaming only — ``"thread"`` (default) verifies
            manifest digests on the shared worker pool, overlapped with
            extract and pre-warming the block cache; ``"process"``
            hashes files in a process pool instead — sidesteps the GIL
            for the hash CPU, but loses the cache pre-warm, so extract
            re-reads its planned bytes from disk (only worth evaluating
            at large shard sizes; hashlib releases the GIL on large
            updates, so threads usually win).

    Raises:
        CheckpointNotFoundError: missing directory or tag.
        CheckpointIntegrityError: uncommitted source tag, or a source
            file that is missing or fails digest verification.
        UCPFormatError: structurally valid but semantically
            inconsistent source (e.g. rank files disagreeing on Adam
            hyperparameters).
        repro.analysis.diagnostics.LayoutLintError: the mandatory
            static pre-flight found the source layout unsound or the
            manifest structurally incomplete (a UCPFormatError
            subclass; carries the individual rule-ID diagnostics).
    """
    if streaming not in ("auto", True, False):
        raise ValueError(f"streaming must be 'auto', True or False, got {streaming!r}")
    if digest_pool not in ("thread", "process"):
        raise ValueError(
            f"digest_pool must be 'thread' or 'process', got {digest_pool!r}"
        )
    if coalesce_gap < 0:
        raise ValueError(f"coalesce_gap must be >= 0, got {coalesce_gap}")
    workers = _resolve_workers(workers)
    if src_store is None:
        src_store = ObjectStore(ckpt_dir)
    src_tag = resolve_tag(src_store, tag)
    if not (src_store.base / src_tag).is_dir():
        raise CheckpointNotFoundError(f"no tag {src_tag!r} under {ckpt_dir}")
    src_read0 = src_store.bytes_read

    # --- Extract (parallel across rank files), verified vs manifest ---
    t0 = time.perf_counter()
    src_manifest = manifest_mod.require_manifest(src_store, src_tag)
    files = _optim_files(src_store, src_tag)
    _verify_source_commit(src_store, src_tag, src_manifest, files)

    job_rel = f"{src_tag}/{naming.JOB_CONFIG_FILE}"
    if not src_store.exists(job_rel):
        raise CheckpointNotFoundError(f"missing {job_rel} in {ckpt_dir}")
    job_config = manifest_mod.load_verified(
        src_store,
        job_rel,
        manifest_mod.manifest_entry(src_manifest, naming.JOB_CONFIG_FILE),
    )
    model_cfg = ModelConfig.from_dict(job_config["model_config"])
    source_cfg = ParallelConfig.from_dict(job_config["parallel_config"])
    optimizer_layout = job_config.get("optimizer_layout", "flat")

    # the streaming pipeline is *gated on the provenance theorems*: only
    # a source whose interval maps were proven sound (UCP017-UCP022) is
    # converted from byte-range plans; otherwise the full-read path runs
    use_streaming = streaming is True or (streaming == "auto" and provenance)
    analysis: Optional[ProvenanceAnalysis] = None
    if use_streaming:
        analysis = analyze_source(
            src_store, src_tag, model_cfg, source_cfg, optimizer_layout
        )

    # mandatory pre-flight: prove the source layout self-consistent and
    # the commit manifest structurally complete before reading a single
    # tensor — a doomed conversion is refused at header cost
    preflight = preflight_convert(
        src_store,
        src_tag,
        src_manifest,
        model_cfg,
        source_cfg,
        optimizer_layout,
        provenance=provenance,
        analysis=analysis if provenance else None,
    )
    if use_streaming and not provenance and not analysis.report.ok:
        # explicit streaming=True with provenance gating disabled: the
        # read plans would be lowered from maps the theorems reject
        raise LayoutLintError(
            analysis.report,
            prefix=f"streaming conversion needs provenance-clean source {src_tag}",
        )
    if not preflight.ok:
        # root-cause before reporting: a semantic lint finding on a
        # file that was modified after commit is tampering, not a bad
        # layout — digest-verify the rank files (failure path only, so
        # the full reads cost nothing on healthy conversions) and let
        # the integrity error win
        for rel in files:
            manifest_mod.load_verified(
                src_store,
                rel,
                manifest_mod.manifest_entry(src_manifest, rel.split("/")[-1]),
            )
        raise LayoutLintError(
            preflight, prefix=f"conversion pre-flight failed for {src_tag}"
        )

    if cluster is not None:
        cluster.barrier(f"convert:{src_tag}:enter")

    if program is None:
        program = program_for_config(
            model_cfg, expert_parallel=source_cfg.expert_parallel
        )

    fragments: Dict[Tuple[str, str], List[ParamFragment]] = {}
    shapes: Dict[str, Dict] = {}
    optimizer_step = 0
    if use_streaming:
        # header/index pass only: the per-file tensor *index* carries
        # every non-tensor field (adam, loss scaler, sharding, step)
        # plus absolute payload offsets — no flat buffer is read here
        trees = dict(zip(
            files,
            _map_maybe_parallel(src_store.load_index, files, workers),
        ))
        adam_hyper, loss_scaler = _check_cross_rank_consistency(
            files, [trees[rel] for rel in files]
        )
        for tree in trees.values():
            optimizer_step = max(optimizer_step, int(tree["optimizer_step"]))
            for name, saved_spec in tree["sharding"].items():
                shapes[name] = saved_spec
        names = sorted(analysis.params)
    else:
        def _load_rank_file(rel: str) -> Dict:
            entry = manifest_mod.manifest_entry(src_manifest, rel.split("/")[-1])
            return manifest_mod.load_verified(src_store, rel, entry)

        payloads = _map_maybe_parallel(_load_rank_file, files, workers)
        adam_hyper, loss_scaler = _check_cross_rank_consistency(files, payloads)
        for payload in payloads:
            optimizer_step = max(optimizer_step, int(payload["optimizer_step"]))
            for name, saved_spec in payload["sharding"].items():
                shapes[name] = saved_spec
            for fragment in extract(payload):
                fragments.setdefault(
                    (fragment.name, fragment.kind), []
                ).append(fragment)
        names = sorted({name for name, _ in fragments})
    t1 = time.perf_counter()

    # --- resolve specs through the UCP-language program ---
    specs: Dict[str, ShardSpec] = {}
    for name in names:
        saved = shapes.get(name)
        if saved is None:
            raise UCPFormatError(f"no sharding metadata for {name!r}")
        spec = program.resolve_spec(
            name,
            tuple(saved["logical_shape"]),
            tuple(saved["unpadded_shape"]),
        )
        if strict_spec_check:
            saved_spec = ShardSpec.from_dict(
                {k: saved[k] for k in
                 ("pattern", "logical_shape", "unpadded_shape", "fragmenter")}
            )
            if (saved_spec.pattern, saved_spec.fragmenter) != (
                spec.pattern, spec.fragmenter
            ):
                raise PatternMatchError(
                    f"pattern program classifies {name!r} as {spec.pattern} "
                    f"({spec.fragmenter}), but the checkpoint was saved as "
                    f"{saved_spec.pattern} ({saved_spec.fragmenter})"
                )
        specs[name] = spec

    # --- resumability gate: only reuse atoms proven to come from this
    # exact committed source (tag + manifest digest) ---
    if dst_store is None:
        dst_store = ObjectStore(ucp_dir)
    dst_written0 = dst_store.bytes_written
    atom_store = AtomStore(ucp_dir, dst_store)
    src_digest = src_store.digest(manifest_mod.manifest_path(src_tag))
    marker_matches = False
    if dst_store.exists(CONVERT_SOURCE_FILE):
        try:
            marker = dst_store.load(CONVERT_SOURCE_FILE)
            marker_matches = (
                marker.get("source_tag") == src_tag
                and marker.get("source_manifest_sha256") == src_digest
            )
        except SerializationError:
            marker_matches = False
    if not marker_matches:
        # declare intent before the first atom write, so a crashed run
        # leaves enough evidence for the next one to trust its output
        dst_store.save(
            CONVERT_SOURCE_FILE,
            {
                "source_dir": str(src_store.base),
                "source_tag": src_tag,
                "source_manifest_sha256": src_digest,
            },
        )
    reused: Dict[str, Dict] = {}
    if resume and marker_matches:
        for name in names:
            meta = _reusable_atom_meta(atom_store, name, specs[name])
            if meta is not None:
                reused[name] = meta
    fresh_names = [n for n in names if n not in reused]

    cache_hits = 0
    peak_window = 0
    num_preads = 0
    num_batches = 0
    ranges_coalesced = 0
    header_bytes = 0
    digest_bytes = 0
    planned_state_bytes = 0
    stage_seconds: Dict[str, float] = {}
    if use_streaming:
        # --- streamed Extract + Union + StripPadding + write, fused per
        # parameter: lower the proven interval maps into read plans,
        # digest-verify exactly the files those plans touch (the
        # streamed hash warms the block cache the preads then hit), and
        # fan the per-parameter pipeline out over the worker pool.  Each
        # atom is written the moment it consolidates, so in-flight
        # memory is bounded by workers x parameter size, not checkpoint
        # size, and a crash mid-fan-out leaves only durable atoms for
        # the resume gate to reuse.
        header_bytes = src_store.bytes_read - src_read0
        t_lower = time.perf_counter()
        plans = lower_read_plans(
            analysis,
            fresh_names,
            verify_replicas=verify_replicas,
            patterns={n: specs[n].pattern for n in fresh_names},
        )
        stage_seconds["lower"] = time.perf_counter() - t_lower
        touched = sorted({
            rel for plan in plans.values() for rel in plan.files
        })
        sizes = {rel: src_store.size(rel) for rel in touched}
        if window_bytes is None:
            # one window per touched file: the digest pass reads (and
            # caches) each file as a single block, and read_multi's
            # resident-view fast path serves every extract range as a
            # zero-copy slice of it
            window_bytes = max(
                DEFAULT_WINDOW_BYTES,
                min(max(sizes.values(), default=0), WINDOW_AUTO_CAP_BYTES),
            )
        if cache is None:
            # the digest pre-warm only pays off if a parameter's whole
            # file working set stays resident while it extracts — grow
            # the budget to the largest single plan's set (capped).
            # This stays well under the full-read path's footprint,
            # which holds every touched file deserialized at once.
            need = max(
                (
                    sum(sizes[rel] for rel in plan.files)
                    for plan in plans.values()
                ),
                default=0,
            )
            cache = BlockCache(
                min(max(cache_bytes, need), CACHE_AUTO_CAP_BYTES)
            )
        reader = RangeReader(
            src_store,
            cache=cache,
            window_bytes=window_bytes,
            coalesce_gap=coalesce_gap,
            parallel=max(1, workers),
        )
        verify_entries = {
            rel: manifest_mod.manifest_entry(src_manifest, rel.split("/")[-1])
            for rel in touched
        }
        digest_bytes = sum(sizes.values())
        planned_state_bytes = (
            sum(plans[n].planned_elements for n in fresh_names)
            * np.dtype(np.float32).itemsize
            * len(STATE_KINDS)
        )
        gap_elems = coalesce_gap // np.dtype(np.float32).itemsize

        ppool = (
            concurrent.futures.ProcessPoolExecutor(
                max_workers=min(max(1, workers), max(1, len(touched)))
            )
            if digest_pool == "process" and touched
            else None
        )

        def _verify_file(rel: str) -> float:
            t_v = time.perf_counter()
            if ppool is not None:
                entry = verify_entries[rel]
                if entry is not None:
                    nbytes = reader.size(rel)
                    digest = ppool.submit(
                        _digest_path, str(src_store.base / rel)
                    ).result()
                    if nbytes != int(entry["nbytes"]) or (
                        digest != entry["sha256"]
                    ):
                        raise CheckpointIntegrityError(
                            f"{rel}: size or content digest mismatch vs "
                            f"the commit manifest — the object was "
                            f"modified after commit"
                        )
            else:
                manifest_mod.verify_streaming(
                    reader, rel, verify_entries[rel]
                )
            return time.perf_counter() - t_v

        # per-file digest memo: the first parameter task that needs a
        # file hashes it; everyone else waits on its future.  Digest and
        # extract overlap — a worker verifies one file while its peers
        # extract from already-verified ones — instead of the old
        # verify-everything barrier in front of the fan-out.
        digest_guard = _lockwitness.make_lock("ucp_convert._digest_guard")
        digest_once: Dict[str, concurrent.futures.Future] = {}  # guarded-by: digest_guard

        def _await_digests(rels: Tuple[str, ...]) -> None:
            # claim every still-unclaimed file first, then hash the
            # claims, then wait: a worker never blocks on a peer's
            # in-flight digest while it could be hashing another file
            # itself, so concurrent tasks fan out across files instead
            # of convoying behind the first one
            futs = []
            owned = []
            for rel in rels:
                with digest_guard:
                    fut = digest_once.get(rel)
                    if fut is None:
                        fut = concurrent.futures.Future()
                        digest_once[rel] = fut
                        owned.append((rel, fut))
                futs.append(fut)
            for rel, fut in owned:
                try:
                    fut.set_result(_verify_file(rel))
                except BaseException as exc:
                    fut.set_exception(exc)
                    raise
            for fut in futs:
                fut.result()

        # (file, field, kind) -> TensorIndexEntry memo shared across the
        # fan-out; a racing double-compute stores the same immutable
        # entry, so the unsynchronized dict is a benign CPython race
        entry_cache: Dict[Tuple[str, str, str], TensorIndexEntry] = {}

        def consolidate_stream(name: str) -> Tuple[str, int, Dict, Dict]:
            plan = plans[name]
            _await_digests(plan.files)
            spec = specs[name]
            full_numel = _numel(spec.logical_shape)
            stats = {"read": 0.0, "coalesced": 0}
            gathers: Dict[int, _BlockGather] = {}
            t_task = time.perf_counter()

            def materialize_part(
                blocks: Tuple[SliceBlock, ...]
            ) -> Dict[str, np.ndarray]:
                """All three state arrays of one plan part at once.

                One ``read_multi`` per touched file carries the spans of
                every (field, state kind) pair together — the three flat
                state buffers live in the same file, so batching them
                amortizes the per-call range bookkeeping 3× on top of
                the span coalescing itself.
                """
                # np.empty, not zeros: the UCP017 coverage theorem the
                # pipeline is gated on proves the plan writes every
                # data element, and strip_padding drops the rest before
                # anything escapes
                arrs = {
                    kind: np.empty(full_numel, dtype=np.float32)
                    for kind in STATE_KINDS
                }
                by_file: Dict[str, List[SliceBlock]] = {}
                for block in blocks:
                    by_file.setdefault(block.file, []).append(block)
                for rel in sorted(by_file):
                    ranges: List[Tuple[int, int]] = []
                    segs: List[Tuple[str, _BlockGather]] = []
                    for block in by_file[rel]:
                        gather = gathers.get(id(block))
                        if gather is None:
                            gather = _BlockGather(block, gap_elems)
                            gathers[id(block)] = gather
                        for kind in STATE_KINDS:
                            ekey = (rel, block.field, kind)
                            entry = entry_cache.get(ekey)
                            if entry is None:
                                entry = _index_entry(
                                    trees[rel], block.field, kind, rel
                                )
                                entry_cache[ekey] = entry
                            ranges.extend(gather.byte_ranges(entry))
                            segs.append((kind, gather))
                            stats["coalesced"] += (
                                gather.n_slices - gather.n_spans
                            )
                    t_r = time.perf_counter()
                    bufs = reader.read_multi(rel, ranges)
                    stats["read"] += time.perf_counter() - t_r
                    cursor = 0
                    for kind, gather in segs:
                        gather.scatter(
                            arrs[kind],
                            bufs[cursor:cursor + gather.n_spans],
                        )
                        cursor += gather.n_spans
                return arrs

            primary_arrs = materialize_part(plan.primary)
            copy_arrs = (
                [materialize_part(bs) for _, bs in plan.copies]
                if plan.copies else []
            )
            states = {}
            for kind in STATE_KINDS:
                primary = primary_arrs[kind]
                if plan.pattern == PATTERN_TO_AVERAGE and copy_arrs:
                    merged = average_param_copies(
                        [primary] + [arrs[kind] for arrs in copy_arrs]
                    )
                elif plan.pattern == PATTERN_REPLICATED and copy_arrs:
                    for arrs in copy_arrs:
                        if not np.array_equal(primary, arrs[kind]):
                            raise PatternMatchError(
                                f"{name!r} is replicated_params but rank "
                                f"copies differ; use params_to_average for "
                                f"independently updated parameters"
                            )
                    merged = primary
                else:
                    merged = primary
                states[kind] = strip_padding(
                    merged.reshape(spec.logical_shape), spec
                )
            assemble_s = time.perf_counter() - t_task - stats["read"]
            atom = AtomCheckpoint(
                name=name, states=states, spec=spec.to_dict()
            )
            t_w = time.perf_counter()
            nbytes = atom_store.write(atom)
            task_stats = {
                "read": stats["read"],
                "assemble": assemble_s,
                "write": time.perf_counter() - t_w,
                "coalesced": stats["coalesced"],
            }
            return name, nbytes, {
                "shape": list(atom.shape),
                "spec": atom.spec,
                "kinds": sorted(atom.states),
            }, task_stats

        # everything since t0 that is not lowering — manifest +
        # provenance analysis + pre-flight lints + the header/index
        # pass — is the planning stage; together with the per-task
        # stage sums below the stage map accounts for the whole wall
        stage_seconds["plan"] = (
            time.perf_counter() - t0 - stage_seconds["lower"]
        )
        # per-file read scheduler: fan parameters out grouped by the
        # source files their plans touch, so each file's cache-resident
        # blocks are fully consumed before the working set moves to the
        # next file group.  Without this, name-ordered tasks bounce
        # between pp-stage file sets larger than the cache budget and
        # every bounce re-reads evicted blocks from disk.  Output is
        # order-independent (atoms are keyed by name), so scheduling is
        # free to chase locality.
        fan_order = sorted(
            fresh_names, key=lambda n: (plans[n].files, n)
        )
        try:
            results = _map_maybe_parallel(
                consolidate_stream, fan_order, workers
            )
        finally:
            if ppool is not None:
                ppool.shutdown()
        if ppool is not None:
            # worker processes hashed straight from disk, bypassing the
            # parent store's accounting; re-charge those bytes so
            # bytes_read stays an honest disk-read total
            src_store.charge_external_read(
                sum(
                    reader.size(rel)
                    for rel in touched
                    if verify_entries[rel] is not None
                ),
                parallel=max(1, workers),
            )
        t2 = time.perf_counter()
        atom_bytes = sum(nbytes for _, nbytes, _, _ in results)
        fresh_entries = {name: entry for name, _, entry, _ in results}
        stage_seconds["digest"] = sum(
            f.result() for f in digest_once.values()
        )
        stage_seconds["read"] = sum(s["read"] for *_, s in results)
        stage_seconds["assemble"] = sum(s["assemble"] for *_, s in results)
        stage_seconds["write"] = sum(s["write"] for *_, s in results)
        cache_hits = reader.cache_hits
        peak_window = reader.peak_window_bytes
        num_preads = reader.num_preads
        num_batches = reader.num_batches
        ranges_coalesced = reader.ranges_coalesced + sum(
            s["coalesced"] for *_, s in results
        )
    else:
        # --- Union + StripPadding (parallel across parameters) ---
        def consolidate(name: str) -> AtomCheckpoint:
            states = {}
            for kind in STATE_KINDS:
                parts = fragments.get((name, kind))
                if not parts:
                    raise UCPFormatError(f"no {kind} fragments for {name!r}")
                merged = union(
                    parts, specs[name], source_cfg.tp,
                    verify_replicas=verify_replicas,
                )
                states[kind] = strip_padding(merged, specs[name])
            return AtomCheckpoint(
                name=name, states=states, spec=specs[name].to_dict()
            )

        atoms = _map_maybe_parallel(consolidate, fresh_names, workers)
        t2 = time.perf_counter()

        # --- write atoms, then metadata: ucp_meta.npt is the
        # destination's commit point, written only after every atom is
        # durable ---
        atom_bytes = sum(_map_maybe_parallel(atom_store.write, atoms, workers))
        fresh_entries = {
            atom.name: {
                "shape": list(atom.shape),
                "spec": atom.spec,
                "kinds": sorted(atom.states),
            }
            for atom in atoms
        }

    # params in canonical name order so resumed and clean conversions
    # produce byte-identical metadata
    params = {}
    for name in names:
        if name in reused:
            meta = reused[name]
            params[name] = {
                "shape": [int(d) for d in meta["shape"]],
                "spec": meta["spec"],
                "kinds": sorted(meta["kinds"]),
            }
        else:
            params[name] = fresh_entries[name]
    metadata = UCPMetadata(
        iteration=int(job_config["iteration"]),
        optimizer_step=optimizer_step,
        model_config=model_cfg.to_dict(),
        source_parallel_config=source_cfg.to_dict(),
        params=params,
        adam=adam_hyper,
        training={
            "seed": job_config["seed"],
            "data_seed": job_config["data_seed"],
            "global_batch_size": job_config["global_batch_size"],
            "seq_len": job_config["seq_len"],
            "mp_policy": job_config["mp_policy"],
        },
        pattern_program=program.to_dict(),
        loss_scaler=loss_scaler,
    )
    atom_bytes += metadata.save(dst_store)
    if cluster is not None:
        cluster.barrier(f"convert:{src_tag}:commit")
    t3 = time.perf_counter()

    if use_streaming:
        # target manifest/metadata commit after the fan-out
        stage_seconds["finalize"] = t3 - t2
    else:
        stage_seconds = {
            "extract": t1 - t0, "union": t2 - t1, "write": t3 - t2,
        }
    return ConversionReport(
        source_tag=src_tag,
        num_files=len(files),
        num_params=len(params),
        atom_bytes=atom_bytes,
        extract_seconds=t1 - t0,
        union_seconds=t2 - t1,
        write_seconds=t3 - t2,
        simulated_read_s=src_store.simulated_read_s,
        simulated_write_s=dst_store.simulated_write_s,
        num_reused=len(reused),
        bytes_read=src_store.bytes_read - src_read0,
        bytes_written=dst_store.bytes_written - dst_written0,
        cache_hits=cache_hits,
        peak_window_bytes=peak_window,
        streamed=use_streaming,
        num_preads=num_preads,
        num_batches=num_batches,
        ranges_coalesced=ranges_coalesced,
        header_bytes=header_bytes,
        digest_bytes=digest_bytes,
        planned_state_bytes=planned_state_bytes,
        stage_seconds=stage_seconds,
    )
