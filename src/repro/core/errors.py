"""UCP error hierarchy."""

from __future__ import annotations


class UCPError(RuntimeError):
    """Base class for Universal Checkpointing failures."""


class PatternMatchError(UCPError):
    """A parameter matched no rule in the pattern program, or its
    fragments are inconsistent with the matched pattern."""


class AtomMissingError(UCPError):
    """A required atom checkpoint file is absent from the UCP directory."""


class UCPFormatError(UCPError):
    """A UCP directory is malformed or from an unsupported version."""


class UCPIncompatibleError(UCPError):
    """The UCP checkpoint cannot be loaded into the requested target
    (e.g. it was created from a different model architecture)."""
