"""Checkpoint and UCP directory inspection.

Programmatic summaries (the CLI renders these as text): what kind of
directory this is, which model and topology produced it, a per-pattern
census of the parameters, and an integrity verification pass over every
object file.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.ckpt import manifest as manifest_mod
from repro.ckpt import naming
from repro.ckpt.consolidated import CONSOLIDATED_FILE
from repro.ckpt.errors import CheckpointIntegrityError
from repro.ckpt.loader import read_job_config, resolve_tag
from repro.core.metadata import UCP_META_FILE, UCPMetadata
from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.storage.serializer import SerializationError, validate_npt
from repro.storage.store import ObjectStore


@dataclasses.dataclass(frozen=True)
class PatternCensus:
    """Counts and byte volume per parameter pattern."""

    counts: Dict[str, int]
    elements: Dict[str, int]

    @property
    def total_params(self) -> int:
        """Parameter count across all patterns."""
        return sum(self.counts.values())

    @property
    def total_elements(self) -> int:
        """Element count across all patterns."""
        return sum(self.elements.values())


@dataclasses.dataclass(frozen=True)
class DirectorySummary:
    """What lives at a path.

    Attributes:
        kind: "ucp" | "distributed" | "consolidated" | "unknown".
        model: model config (when identifiable).
        parallel: source topology (distributed/UCP).
        iteration: training step the state captures.
        num_files / total_bytes: on-disk footprint.
        census: per-pattern parameter census (UCP and distributed).
        tag: checkpoint tag (distributed only).
    """

    kind: str
    model: Optional[ModelConfig] = None
    parallel: Optional[ParallelConfig] = None
    iteration: Optional[int] = None
    num_files: int = 0
    total_bytes: int = 0
    census: Optional[PatternCensus] = None
    tag: Optional[str] = None


def _census_from_specs(param_specs: Dict[str, Dict]) -> PatternCensus:
    counts: Dict[str, int] = {}
    elements: Dict[str, int] = {}
    for info in param_specs.values():
        spec = info["spec"] if "spec" in info else info
        pattern = spec["pattern"]
        shape = info.get("shape", spec.get("unpadded_shape", []))
        numel = 1
        for d in shape:
            numel *= d
        counts[pattern] = counts.get(pattern, 0) + 1
        elements[pattern] = elements.get(pattern, 0) + numel
    return PatternCensus(counts=counts, elements=elements)


def _dir_footprint(store: ObjectStore, rel: str = ".") -> Tuple[int, int]:
    files = store.list(rel)
    return len(files), sum((store.base / f).stat().st_size for f in files)


def inspect_directory(directory: str) -> DirectorySummary:
    """Identify and summarize whatever checkpoint lives at a path."""
    store = ObjectStore(directory)
    if store.exists(UCP_META_FILE):
        meta = UCPMetadata.load(store)
        num_files, total_bytes = _dir_footprint(store)
        return DirectorySummary(
            kind="ucp",
            model=ModelConfig.from_dict(meta.model_config),
            parallel=ParallelConfig.from_dict(meta.source_parallel_config),
            iteration=meta.iteration,
            num_files=num_files,
            total_bytes=total_bytes,
            census=_census_from_specs(meta.params),
        )
    if store.exists(CONSOLIDATED_FILE):
        payload = store.load(CONSOLIDATED_FILE)
        num_files, total_bytes = _dir_footprint(store)
        return DirectorySummary(
            kind="consolidated",
            model=ModelConfig.from_dict(payload["model_config"]),
            iteration=int(payload["iteration"]),
            num_files=num_files,
            total_bytes=total_bytes,
        )
    try:
        tag = resolve_tag(store, None)
        job = read_job_config(directory, tag)
    except Exception:
        num_files, total_bytes = _dir_footprint(store)
        return DirectorySummary(
            kind="unknown", num_files=num_files, total_bytes=total_bytes
        )
    num_files, total_bytes = _dir_footprint(store, tag)
    # merge sharding metadata across rank files (each covers one stage)
    merged: Dict[str, Dict] = {}
    for rel in store.list(tag):
        if "optim_states" in rel:
            merged.update(store.load(rel)["sharding"])
    census = _census_from_specs(merged) if merged else None
    return DirectorySummary(
        kind="distributed",
        model=ModelConfig.from_dict(job["model_config"]),
        parallel=ParallelConfig.from_dict(job["parallel_config"]),
        iteration=int(job["iteration"]),
        num_files=num_files,
        total_bytes=total_bytes,
        census=census,
        tag=tag,
    )


@dataclasses.dataclass(frozen=True)
class VerificationReport:
    """Outcome of an integrity pass.

    Attributes:
        total: ``.npt`` objects examined.
        corrupt: (rel path, problem) for objects that fail structural
            or digest verification.
        missing: (rel path, problem) for files a commit manifest (or
            the ``latest`` pointer) records but the disk lacks.
        manifests: commit manifests found and cross-checked.
    """

    total: int
    corrupt: List[Tuple[str, str]]
    missing: List[Tuple[str, str]] = dataclasses.field(default_factory=list)
    manifests: int = 0

    @property
    def ok(self) -> bool:
        """True when every object read back cleanly and none is lost."""
        return not self.corrupt and not self.missing and self.total > 0


def verify_directory(directory: str, deep: bool = True) -> VerificationReport:
    """Integrity-check every ``.npt`` object under a directory.

    The per-tag manifest cross-check (presence, size, and — when deep —
    digest of every recorded file) is the layout linter's
    :func:`~repro.analysis.layout_lint.crosscheck_manifest`; this
    function only adds the byte-level structural sweep (magic, header,
    per-tensor CRC32 — without materializing arrays) and the ``latest``
    pointer check.  With ``deep=False`` only sizes and presence are
    checked, which costs stat calls rather than full reads.
    """
    from repro.analysis.layout_lint import crosscheck_manifest

    store = ObjectStore(directory)
    files = [f for f in store.list() if f.endswith(".npt")]
    corrupt: List[Tuple[str, str]] = []
    missing: List[Tuple[str, str]] = []

    manifests: Dict[str, Dict] = {}
    for rel in files:
        parts = rel.split("/")
        if len(parts) == 2 and parts[1] == naming.MANIFEST_FILE:
            try:
                manifests[parts[0]] = manifest_mod.require_manifest(
                    store, parts[0]
                )
            except CheckpointIntegrityError as exc:
                corrupt.append((rel, str(exc)))

    flagged: set = set()
    for tag in sorted(manifests):
        for diag in crosscheck_manifest(store, tag, manifests[tag], deep=deep):
            if diag.severity != "error":
                continue  # extra-file warnings are not integrity failures
            flagged.add(diag.location)
            if diag.rule_id == "UCP008":
                missing.append((diag.location, diag.message))
            else:
                corrupt.append((diag.location, diag.message))

    if deep:
        for rel in files:
            parts = rel.split("/")
            if len(parts) == 2 and parts[1] == naming.MANIFEST_FILE:
                continue  # verified (and CRC-checked) above
            if rel in flagged:
                continue  # already reported by the manifest cross-check
            try:
                data = (store.base / rel).read_bytes()
            except OSError as exc:
                corrupt.append((rel, str(exc)))
                continue
            try:
                validate_npt(data)
            except SerializationError as exc:
                corrupt.append((rel, str(exc)))

    if store.exists(naming.LATEST_FILE):
        tag = store.read_text(naming.LATEST_FILE).strip()
        if not (store.base / tag).is_dir():
            missing.append(
                (naming.LATEST_FILE,
                 f"points at tag {tag!r} which does not exist")
            )
        elif tag not in manifests:
            corrupt.append(
                (naming.LATEST_FILE,
                 f"points at tag {tag!r} which has no commit manifest")
            )

    return VerificationReport(
        total=len(files),
        corrupt=corrupt,
        missing=missing,
        manifests=len(manifests),
    )
