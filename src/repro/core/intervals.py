"""Interval machinery shared by provenance analysis and the IO planners.

A conversion or sliced load is, at its core, interval arithmetic over
each parameter's *consolidated* (padded logical) flat element space:

* :func:`shard_to_full_runs` — the symbolic shard -> consolidated map
  of one TP rank, as maximal contiguous :class:`MapRun` intervals,
  computed by executing the parameter's *real* fragmenter over an
  ``arange`` index tensor.  Because the map comes from the executable
  sharding code, plans lowered from it cannot drift from what
  ``union``/``Load`` actually do.
* :func:`data_intervals` — the consolidated sub-intervals holding real
  (non-padding) data; their complement is structural padding, which
  plans never read and loads fill with zeros.
* :func:`merge_intervals` / :func:`subtract_intervals` — sorted
  disjoint-interval set algebra.

Originally part of :mod:`repro.analysis.provenance` (which re-exports
these names unchanged); promoted here so the streaming read planner in
:mod:`repro.core.convert` and the sliced-atom reader in
:mod:`repro.core.ops` can lower the same interval maps the UCP017-022
theorems are proven over.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from repro.parallel.tp import PATTERN_FRAGMENT, ShardSpec


def numel(shape: Sequence[int]) -> int:
    """Element count of a shape."""
    n = 1
    for d in shape:
        n *= int(d)
    return n


@dataclasses.dataclass(frozen=True)
class MapRun:
    """One maximal contiguous run of a shard -> consolidated index map.

    Shard flat elements ``[shard_start, shard_start + length)`` map to
    consolidated flat elements ``[full_start, full_start + length)``.
    """

    full_start: int
    shard_start: int
    length: int

    @property
    def shard_end(self) -> int:
        return self.shard_start + self.length

    @property
    def full_end(self) -> int:
        return self.full_start + self.length


def shard_to_full_runs(
    spec: ShardSpec, degree: int, rank: int
) -> List[MapRun]:
    """The symbolic shard -> consolidated element map, as interval runs.

    Executes the parameter's *actual* fragmenter over an ``arange``
    index tensor (memory-only; no disk IO) and collapses the result to
    maximal contiguous runs, so downstream composition works purely on
    intervals while staying exactly faithful to the executable
    sharding semantics — including fused-section and expert layouts
    whose maps are not expressible as a single affine stride.
    """
    full_numel = numel(spec.logical_shape)
    if spec.pattern != PATTERN_FRAGMENT or degree == 1:
        return [MapRun(full_start=0, shard_start=0, length=full_numel)]
    idx = np.arange(full_numel, dtype=np.int64).reshape(spec.logical_shape)
    flat = np.ascontiguousarray(
        spec.fragmenter.shard(idx, degree, rank)
    ).reshape(-1)
    if flat.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(flat) != 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks + 1, [flat.size]))
    return [
        MapRun(
            full_start=int(flat[s]),
            shard_start=int(s),
            length=int(e - s),
        )
        for s, e in zip(starts, ends)
    ]


def data_intervals(spec: ShardSpec) -> List[Tuple[int, int]]:
    """Consolidated flat intervals holding real (non-padding) data.

    Structural padding (e.g. vocab rows added for TP divisibility) is
    the complement: it exists in source shards but must be stripped by
    the conversion, never copied into target data bytes.
    """
    total = numel(spec.logical_shape)
    if not spec.has_padding:
        return [(0, total)]
    shape = tuple(int(d) for d in spec.logical_shape)
    up = tuple(int(d) for d in spec.unpadded_shape)
    out: List[Tuple[int, int]] = []

    def rect(dim: int, base: int) -> None:
        if dim == len(shape) or shape[dim:] == up[dim:]:
            out.append((base, base + numel(shape[dim:])))
            return
        stride = numel(shape[dim + 1:])
        for i in range(up[dim]):
            rect(dim + 1, base + i * stride)

    rect(0, 0)
    return merge_intervals(out)


def merge_intervals(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Union of intervals as a sorted disjoint list."""
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(intervals):
        if start >= end:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def subtract_intervals(
    keep: List[Tuple[int, int]], remove: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """``keep \\ remove`` for sorted disjoint interval lists."""
    out: List[Tuple[int, int]] = []
    for start, end in keep:
        cursor = start
        for r_start, r_end in remove:
            if r_end <= cursor:
                continue
            if r_start >= end:
                break
            if r_start > cursor:
                out.append((cursor, r_start))
            cursor = max(cursor, r_end)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end))
    return out


def intersect_intervals(
    a: List[Tuple[int, int]], b: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """``a ∩ b`` for sorted disjoint interval lists."""
    out: List[Tuple[int, int]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out
