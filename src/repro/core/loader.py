"""Target-side UCP loading.

Fills a :class:`TrainingEngine`'s ZeRO partitions from atom checkpoints
under an *arbitrary* target parallelism strategy: ``gen_ucp_metadata``
computes the target partition map from the same layout code the engine
itself uses, then ``load`` streams atoms into every (mp, dp) partition.
After loading, the fp32 flat state is re-broadcast into the model's
working-precision weights (the paper's ``fp16_partitioned_groups_flat``
rebroadcast), so the target may even run a different mixed-precision
dtype than the source.
"""

from __future__ import annotations

from typing import Optional

from repro.core.atom import STATE_KINDS, AtomStore
from repro.core.errors import UCPIncompatibleError
from repro.core.metadata import UCPMetadata
from repro.core.ops import AtomShardCache, gen_ucp_metadata, load
from repro.models.configs import ModelConfig
from repro.storage.rangeio import DEFAULT_WINDOW_BYTES
from repro.storage.store import ObjectStore


def load_ucp_into_engine(
    engine,
    ucp_dir: str,
    max_cached_atoms: int = 64,
    sliced: bool = True,
    window_bytes: int = DEFAULT_WINDOW_BYTES,
    store: Optional[ObjectStore] = None,
) -> UCPMetadata:
    """Resume an engine (any topology) from a UCP checkpoint.

    Args:
        engine: target :class:`repro.parallel.engine.TrainingEngine`.
        ucp_dir: UCP directory produced by :func:`repro.core.convert.ucp_convert`.
        max_cached_atoms: working-memory bound for the atom cache.
        sliced: read each atom by byte-range slices — every rank pulls
            only its own partition's bytes of each atom file (default).
            ``False`` restores whole-atom reads.
        window_bytes: sliced only — maximum bytes per disk read.
        store: optional pre-built store over ``ucp_dir`` (shares byte
            accounting and fault policy with the caller).

    Returns:
        The UCP metadata that was loaded.

    Raises:
        UCPIncompatibleError: model architecture mismatch.
    """
    if store is None:
        store = ObjectStore(ucp_dir)
    metadata = UCPMetadata.load(store)
    saved_model = ModelConfig.from_dict(metadata.model_config)
    if saved_model != engine.model_cfg:
        raise UCPIncompatibleError(
            f"UCP checkpoint holds model {saved_model.name!r}; the target "
            f"engine runs {engine.model_cfg.name!r}"
        )

    expected = set(engine.layout.shard_specs)
    present = set(metadata.params)
    if expected - present:
        raise UCPIncompatibleError(
            f"UCP checkpoint is missing atoms for "
            f"{sorted(expected - present)[:5]}..."
        )

    plan = gen_ucp_metadata(engine.model_cfg, engine.parallel_cfg)
    atom_store = AtomStore(ucp_dir, store)
    cache = AtomShardCache(
        atom_store,
        plan,
        max_atoms=max_cached_atoms,
        sliced=sliced,
        window_bytes=window_bytes,
    )

    dp = engine.parallel_cfg.dp
    step = metadata.optimizer_step
    for coord in engine.layout.mp_coords():
        pp_stage, sp_rank, tp_rank = coord
        for d in range(dp):
            partition = engine.zero.partitions[coord][d]
            for kind in STATE_KINDS:
                values = load(
                    atom_store, plan, kind, pp_stage, sp_rank, tp_rank, d, cache=cache
                )
                target = engine.zero._partition_array(partition, kind)
                target[...] = values
            partition.state.step = step

    engine.iteration = metadata.iteration
    if metadata.loss_scaler is not None and engine.loss_scaler is not None:
        engine.loss_scaler.load_state_dict(metadata.loss_scaler)
    engine.sync_model_from_masters()

    # with a memory sanitizer active, prove the loaded state is isolated:
    # no partition may remain a writable alias of a cached atom (UCP028)
    # or share a base buffer with another simulated rank (UCP025)
    from repro.analysis import sanitizer as _sanitizer

    san = _sanitizer.current()
    if san is not None:
        san.check_engine(engine, context=f"load_ucp_into_engine({ucp_dir})")
    return metadata
