"""Global UCP metadata: everything a target needs besides the atoms."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.errors import UCPFormatError
from repro.storage.store import ObjectStore

UCP_VERSION = 1
UCP_META_FILE = "ucp_meta.npt"


@dataclasses.dataclass
class UCPMetadata:
    """The ``ucp_meta`` record written at conversion time.

    Attributes:
        iteration: global step the source checkpoint was taken at.
        optimizer_step: Adam step counter (usually == iteration).
        model_config: dict form of the :class:`ModelConfig`.
        source_parallel_config: the *Source* strategy (provenance only —
            targets never depend on it; that independence is UCP's
            point).
        params: parameter name -> {"shape": unpadded shape,
            "spec": shard-spec dict, "kinds": state kinds present}.
        adam: optimizer hyperparameters.
        training: seeds / batch geometry needed to continue the run.
        pattern_program: the rule program used for conversion
            (provenance + cross-framework reuse).
        loss_scaler: dynamic loss-scale state, if the source used fp16.
    """

    iteration: int
    optimizer_step: int
    model_config: Dict
    source_parallel_config: Dict
    params: Dict[str, Dict]
    adam: Dict
    training: Dict
    pattern_program: Dict
    loss_scaler: Optional[Dict] = None
    version: int = UCP_VERSION

    def param_names(self) -> List[str]:
        """All parameter names, sorted."""
        return sorted(self.params)

    def to_payload(self) -> Dict:
        """Serializable form."""
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: Dict) -> "UCPMetadata":
        """Inverse of :meth:`to_payload`, with version checking."""
        version = int(payload.get("version", -1))
        if version != UCP_VERSION:
            raise UCPFormatError(
                f"unsupported UCP version {version}; this build reads "
                f"version {UCP_VERSION}"
            )
        return cls(
            iteration=int(payload["iteration"]),
            optimizer_step=int(payload["optimizer_step"]),
            model_config=payload["model_config"],
            source_parallel_config=payload["source_parallel_config"],
            params=payload["params"],
            adam=payload["adam"],
            training=payload["training"],
            pattern_program=payload["pattern_program"],
            loss_scaler=payload.get("loss_scaler"),
            version=version,
        )

    def save(self, store: ObjectStore) -> int:
        """Write to a UCP directory; returns bytes written."""
        return store.save(UCP_META_FILE, self.to_payload())

    @classmethod
    def load(cls, store: ObjectStore) -> "UCPMetadata":
        """Read from a UCP directory."""
        if not store.exists(UCP_META_FILE):
            raise UCPFormatError(
                f"no {UCP_META_FILE} in {store.base}; not a UCP directory"
            )
        return cls.from_payload(store.load(UCP_META_FILE))
