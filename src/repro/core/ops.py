"""The UCP transformation operations (paper Table 2).

* :func:`extract`      — distributed checkpoint file -> parameter fragments
* :func:`union`        — fragments of one parameter -> consolidated tensor
* :func:`strip_padding`— remove structural padding from a consolidated tensor
* :func:`gen_ucp_metadata` — target strategy -> partition map (:class:`LoadPlan`)
* :func:`load`         — stream atoms into one target rank's flat partition
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.atom import STATE_KINDS, AtomStore
from repro.core.errors import AtomMissingError, PatternMatchError, UCPFormatError
from repro.core.intervals import (
    MapRun,
    data_intervals,
    numel as _interval_numel,
    shard_to_full_runs,
)
from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.parallel.layout import ModelParallelLayout, PartitionSlice
from repro.parallel.sp import average_param_copies
from repro.parallel.tp import (
    PATTERN_FRAGMENT,
    PATTERN_REPLICATED,
    PATTERN_TO_AVERAGE,
    PATTERN_UNIQUE,
    ShardSpec,
)
from repro.storage.rangeio import (
    DEFAULT_WINDOW_BYTES,
    BlockCache,
    RangeReader,
)

_KIND_TO_FIELD = {
    "fp32": "fp32_flat_partition",
    "exp_avg": "exp_avg_flat_partition",
    "exp_avg_sq": "exp_avg_sq_flat_partition",
}


@dataclasses.dataclass(frozen=True)
class ParamFragment:
    """One contiguous piece of one parameter state from one rank file.

    ``shard_start:shard_end`` locate the piece inside the *flattened TP
    shard* the owning model-parallel rank held; grid coordinates record
    where the piece came from.
    """

    name: str
    kind: str
    data: np.ndarray
    shard_start: int
    shard_end: int
    pp_stage: int
    sp_rank: int
    tp_rank: int
    dp_rank: int
    shard_shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.data.ndim != 1:
            raise UCPFormatError("fragment data must be 1-D")
        if self.shard_end - self.shard_start != self.data.size:
            raise UCPFormatError(
                f"fragment of {self.name!r}: range "
                f"[{self.shard_start}, {self.shard_end}) does not match "
                f"{self.data.size} elements"
            )


def extract(payload: Dict, kinds: Sequence[str] = STATE_KINDS) -> List[ParamFragment]:
    """Extract parameter-state fragments from one optimizer-states file.

    The paper's *Extract*: returns the list of parameter states
    contained in a distributed checkpoint file.  Runs independently per
    file, so a converter may call it in parallel across files.

    Dispatches on the file schema: DeepSpeed-style flattened ZeRO
    partitions (``fp32_flat_partition`` + partition metadata) and
    Megatron-classic per-parameter dictionaries (``param_states``) both
    extract into the same fragment representation — which is what lets
    one Union serve either source format.

    Args:
        payload: a deserialized ``zero_dp_rank_*_optim_states`` object.
        kinds: which state kinds to extract.
    """
    if "param_states" in payload:
        return _extract_per_param(payload, kinds)
    meta = payload["partition_meta"]
    dp_rank = int(meta["dp_rank"])
    partition_numel = int(meta["partition_numel"])
    part_start = dp_rank * partition_numel
    part_end = part_start + partition_numel
    pp_stage = int(payload.get("pp_stage", 0))
    sp_rank = int(payload.get("sp_rank", 0))
    tp_rank = int(payload.get("tp_rank", 0))

    fragments: List[ParamFragment] = []
    for kind in kinds:
        field = _KIND_TO_FIELD.get(kind)
        if field is None:
            raise KeyError(f"unknown state kind {kind!r}")
        flat = np.asarray(payload[field], dtype=np.float32)
        if flat.size != partition_numel:
            raise UCPFormatError(
                f"partition array has {flat.size} elements, metadata says "
                f"{partition_numel}"
            )
        for segment in meta["segments"]:
            seg_start = int(segment["offset"])
            seg_end = seg_start + int(segment["numel"])
            start = max(seg_start, part_start)
            end = min(seg_end, part_end)
            if start >= end:
                continue
            fragments.append(
                ParamFragment(
                    name=segment["name"],
                    kind=kind,
                    data=flat[start - part_start : end - part_start].copy(),
                    shard_start=start - seg_start,
                    shard_end=end - seg_start,
                    pp_stage=pp_stage,
                    sp_rank=sp_rank,
                    tp_rank=tp_rank,
                    dp_rank=dp_rank,
                    shard_shape=tuple(segment["shard_shape"]),
                )
            )
    return fragments


def _extract_per_param(payload: Dict, kinds: Sequence[str]) -> List[ParamFragment]:
    """Extract from a Megatron-classic per-parameter state file."""
    pp_stage = int(payload.get("pp_stage", 0))
    sp_rank = int(payload.get("sp_rank", 0))
    tp_rank = int(payload.get("tp_rank", 0))
    states = payload["param_states"]
    fragments: List[ParamFragment] = []
    for kind in kinds:
        if kind not in states:
            raise KeyError(f"state kind {kind!r} missing from param_states")
        for name, shard in states[kind].items():
            arr = np.asarray(shard, dtype=np.float32)
            fragments.append(
                ParamFragment(
                    name=name,
                    kind=kind,
                    data=arr.reshape(-1).copy(),
                    shard_start=0,
                    shard_end=int(arr.size),
                    pp_stage=pp_stage,
                    sp_rank=sp_rank,
                    tp_rank=tp_rank,
                    dp_rank=0,
                    shard_shape=tuple(arr.shape),
                )
            )
    return fragments


def _assemble_shard(pieces: List[ParamFragment]) -> np.ndarray:
    """Reassemble one rank's full TP shard from its dp-split pieces.

    The runtime twin of the static shard-assembly proof in
    :mod:`repro.analysis.provenance`: a gap here is what the checker
    reports as UCP017 and an over/under-run as UCP021 — both caught at
    header cost before this function ever materializes a tensor, so
    these raises only fire when the pre-flight was explicitly skipped.
    """
    pieces = sorted(pieces, key=lambda f: f.shard_start)
    expected = 1
    for d in pieces[0].shard_shape:
        expected *= d
    cursor = 0
    chunks = []
    for piece in pieces:
        if piece.shard_start != cursor:
            raise UCPFormatError(
                f"shard of {piece.name!r} has a gap: next piece starts at "
                f"{piece.shard_start}, expected {cursor} (static rule "
                f"UCP017/UCP018)"
            )
        chunks.append(piece.data)
        cursor = piece.shard_end
    if cursor != expected:
        raise UCPFormatError(
            f"shard of {pieces[0].name!r} incomplete: {cursor} of "
            f"{expected} elements (static rule UCP017/UCP021)"
        )
    return np.concatenate(chunks).reshape(pieces[0].shard_shape)


def union(
    fragments: List[ParamFragment],
    spec: ShardSpec,
    tp_degree: int,
    verify_replicas: bool = True,
) -> np.ndarray:
    """Consolidate all fragments of one (parameter, state) pair.

    The paper's *Union*: a pattern-specific merge.  Fragments first
    reassemble into per-rank TP shards (undoing the ZeRO dp-split), then
    the pattern decides: replicated -> first copy (others verified
    equal), params_to_average -> elementwise mean, fragment ->
    sub-pattern join across TP ranks, unique -> the single copy.
    """
    if not fragments:
        raise UCPFormatError("union of zero fragments")
    name = fragments[0].name
    kind = fragments[0].kind
    if any(f.name != name or f.kind != kind for f in fragments):
        raise UCPFormatError("union received fragments of mixed parameters")

    by_coord: Dict[Tuple[int, int, int], List[ParamFragment]] = {}
    for fragment in fragments:
        key = (fragment.pp_stage, fragment.sp_rank, fragment.tp_rank)
        by_coord.setdefault(key, []).append(fragment)
    shards = {
        coord: _assemble_shard(pieces) for coord, pieces in sorted(by_coord.items())
    }

    if spec.pattern == PATTERN_UNIQUE:
        if len(shards) != 1:
            raise PatternMatchError(
                f"{name!r} is unique_params but {len(shards)} ranks hold it"
            )
        return next(iter(shards.values()))

    if spec.pattern == PATTERN_REPLICATED:
        copies = list(shards.values())
        first = copies[0]
        if verify_replicas:
            for other in copies[1:]:
                if not np.array_equal(first, other):
                    raise PatternMatchError(
                        f"{name!r} is replicated_params but rank copies "
                        f"differ; use params_to_average for independently "
                        f"updated parameters"
                    )
        return first

    if spec.pattern == PATTERN_TO_AVERAGE:
        return average_param_copies(list(shards.values()))

    if spec.pattern == PATTERN_FRAGMENT:
        # per TP rank, fragments are replicated across SP and (for tied
        # embeddings) across PP; take the lowest-coordinate copy
        per_tp: Dict[int, np.ndarray] = {}
        for (pp, sp, tp), shard in sorted(shards.items()):
            per_tp.setdefault(tp, shard)
        observed = sorted(per_tp)
        if observed != list(range(tp_degree)):
            raise PatternMatchError(
                f"{name!r}: expected TP shards 0..{tp_degree - 1}, "
                f"got {observed}"
            )
        if tp_degree == 1:
            return per_tp[0]
        return spec.fragmenter.join([per_tp[tp] for tp in range(tp_degree)])

    raise PatternMatchError(f"unhandled pattern {spec.pattern!r}")


def strip_padding(values: np.ndarray, spec: ShardSpec) -> np.ndarray:
    """Remove structural padding from a consolidated tensor.

    The paper's *StripPadding*: atoms never store padding (vocab rows
    added for TP divisibility, alignment padding never reaches here
    because flat segments exclude it).
    """
    if tuple(values.shape) != spec.logical_shape:
        raise UCPFormatError(
            f"expected consolidated shape {spec.logical_shape}, got "
            f"{values.shape}"
        )
    if not spec.has_padding:
        return values
    slices = tuple(slice(0, dim) for dim in spec.unpadded_shape)
    return values[slices].copy()


def add_padding(values: np.ndarray, spec: ShardSpec) -> np.ndarray:
    """Inverse of :func:`strip_padding`: re-pad with zeros for a target.

    Zeros are exact for both weights and Adam moments: padding rows are
    never touched by forward/backward, so their true state is zero.
    """
    if tuple(values.shape) != spec.unpadded_shape:
        raise UCPFormatError(
            f"expected unpadded shape {spec.unpadded_shape}, got "
            f"{values.shape}"
        )
    if not spec.has_padding:
        return values
    out = np.zeros(spec.logical_shape, dtype=values.dtype)
    out[tuple(slice(0, dim) for dim in values.shape)] = values
    return out


@dataclasses.dataclass
class LoadPlan:
    """The target partition map produced by :func:`gen_ucp_metadata`.

    Wraps the target's :class:`ModelParallelLayout`: for every target
    rank and DP partition, which atom slices fill which flat ranges
    (padding re-introduced per the paper's *GenUcpMetadata*).
    """

    model_cfg: ModelConfig
    target_cfg: ParallelConfig
    layout: ModelParallelLayout

    def partition_assignment(
        self, pp_stage: int, sp_rank: int, tp_rank: int, dp_rank: int
    ) -> List[PartitionSlice]:
        """Atom slices composing one (mp rank, dp rank) flat partition."""
        return self.layout.rank_layout(pp_stage, sp_rank, tp_rank).slices_in_partition(
            dp_rank
        )

    def total_partitions(self) -> int:
        """Number of (mp, dp) partitions across the target job."""
        return len(self.layout.mp_coords()) * self.target_cfg.dp


def gen_ucp_metadata(
    model_cfg: ModelConfig, target_cfg: ParallelConfig
) -> LoadPlan:
    """Compute the target-side partition metadata (paper's GenUcpMetadata).

    Calculates, for the *Target* strategy, each parameter's new shape
    and location — TP shard shapes, flat offsets, alignment padding,
    and ZeRO partition boundaries.  The derived layout is validated
    (partition slices must tile every flat buffer exactly) before any
    load uses it, so an unsound target strategy fails here with typed
    diagnostics instead of corrupting a resume.
    """
    layout = ModelParallelLayout(model_cfg, target_cfg)
    layout.validate()
    return LoadPlan(
        model_cfg=model_cfg,
        target_cfg=target_cfg,
        layout=layout,
    )


DEFAULT_LOAD_CACHE_BYTES = 32 << 20
"""Default block-cache budget for sliced-atom loading."""


class AtomShardCache:
    """Caches consolidated atoms and their computed target TP shards.

    ``Load`` touches each atom once per (state kind, tp rank) instead of
    once per partition slice; ``max_atoms`` bounds working memory, the
    knob the paper describes as the parallelism/memory trade-off.

    With ``sliced=True`` the cache never reads a whole atom file:
    :meth:`shard_slice` lowers the request through the same interval
    maps the provenance theorems are proven over (shard -> consolidated
    runs, then the non-padding data intervals, which are exactly how
    atom file elements map onto consolidated space) and issues
    byte-range reads for just the requested partition slice — so a
    target rank reads only its own bytes of each atom, the paper's
    load-cost win for partial restores.
    """

    def __init__(
        self,
        atom_store: AtomStore,
        plan: LoadPlan,
        max_atoms: int = 64,
        parallel_reads: int = 8,
        sliced: bool = False,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
        cache_bytes: int = DEFAULT_LOAD_CACHE_BYTES,
    ) -> None:
        if max_atoms < 1:
            raise ValueError(f"max_atoms must be >= 1, got {max_atoms}")
        if parallel_reads < 1:
            raise ValueError(f"parallel_reads must be >= 1, got {parallel_reads}")
        self.atom_store = atom_store
        self.plan = plan
        self.max_atoms = max_atoms
        # queue depth for the storage cost model: DeepNVMe-style batched
        # reads amortize per-file latency across concurrent requests
        self.parallel_reads = parallel_reads
        self.sliced = sliced
        self._padded: Dict[Tuple[str, str], np.ndarray] = {}
        self._shards: Dict[Tuple[str, str, int], np.ndarray] = {}
        self.reader: Optional[RangeReader] = None
        if sliced:
            self.reader = RangeReader(
                atom_store.store,
                cache=BlockCache(cache_bytes),
                window_bytes=window_bytes,
                parallel=parallel_reads,
            )
        self._runs: Dict[Tuple[str, int], List[MapRun]] = {}
        # per parameter: [(data_lo, data_hi, atom element offset)] — the
        # order-preserving map from consolidated data intervals onto the
        # flat (unpadded) atom file
        self._data_map: Dict[str, List[Tuple[int, int, int]]] = {}
        self._entries: Dict[Tuple[str, str], object] = {}
        # atoms the plan assigns to more than one model-parallel coord
        # (tied embeddings under pp) are read whole and kept in the atom
        # LRU: re-slicing them per stage could re-read bytes the block
        # cache already evicted, so sliced mode would exceed whole-atom
        # bytes — this keeps sliced <= whole for any cache budget
        self._shared: set = set()
        if sliced:
            owners: Dict[str, set] = {}
            for coord in plan.layout.mp_coords():
                pp_stage, sp_rank, tp_rank = coord
                for d in range(plan.target_cfg.dp):
                    for piece in plan.partition_assignment(
                        pp_stage, sp_rank, tp_rank, d
                    ):
                        owners.setdefault(piece.name, set()).add(
                            (pp_stage, sp_rank)
                        )
            self._shared = {
                name for name, coords in owners.items() if len(coords) > 1
            }

    def _shard_runs(self, name: str, tp_rank: int) -> List[MapRun]:
        key = (name, tp_rank)
        runs = self._runs.get(key)
        if runs is None:
            spec = self.plan.layout.spec(name)
            runs = shard_to_full_runs(spec, self.plan.target_cfg.tp, tp_rank)
            self._runs[key] = runs
        return runs

    def _atom_data_map(self, name: str) -> List[Tuple[int, int, int]]:
        mapped = self._data_map.get(name)
        if mapped is None:
            spec = self.plan.layout.spec(name)
            mapped = []
            offset = 0
            for d_lo, d_hi in data_intervals(spec):
                mapped.append((d_lo, d_hi, offset))
                offset += d_hi - d_lo
            self._data_map[name] = mapped
        return mapped

    def _state_entry(self, name: str, kind: str):
        """Tensor index entry of one atom state file (header-only read)."""
        key = (name, kind)
        entry = self._entries.get(key)
        if entry is None:
            rel = self.atom_store._atom_path(name, f"{kind}.npt")
            if not self.atom_store.store.exists(rel):
                raise AtomMissingError(f"missing atom state {rel}")
            entry = self.atom_store.store.load_index(rel)["values"]
            spec = self.plan.layout.spec(name)
            expected = _interval_numel(spec.unpadded_shape)
            if np.dtype(entry.dtype) != np.float32 or entry.numel != expected:
                raise UCPFormatError(
                    f"atom {name!r} ({kind}) holds {entry.numel} "
                    f"{entry.dtype} elements; target expects unpadded "
                    f"shape {spec.unpadded_shape} ({expected} float32)"
                )
            self._entries[key] = entry
        return entry

    def _evict(self, cache: Dict) -> None:
        while len(cache) >= self.max_atoms:
            cache.pop(next(iter(cache)))

    def _padded_state(self, name: str, kind: str) -> np.ndarray:
        key = (name, kind)
        cached = self._padded.get(key)
        if cached is not None:
            return cached
        spec = self.plan.layout.spec(name)
        values = np.asarray(
            self.atom_store.read_state(name, kind, parallel=self.parallel_reads),
            dtype=np.float32,
        )
        if tuple(values.shape) != spec.unpadded_shape:
            raise UCPFormatError(
                f"atom {name!r} ({kind}) has shape {values.shape}; target "
                f"expects unpadded {spec.unpadded_shape}"
            )
        padded = add_padding(values, spec)
        self._freeze(f"atom:{name}:{kind}", padded)
        self._evict(self._padded)
        self._padded[key] = padded
        return padded

    def shard_flat(self, name: str, kind: str, tp_rank: int) -> np.ndarray:
        """The flattened target TP shard of one atom state."""
        key = (name, kind, tp_rank)
        cached = self._shards.get(key)
        if cached is not None:
            return cached
        spec = self.plan.layout.spec(name)
        padded = self._padded_state(name, kind)
        tp = self.plan.target_cfg.tp
        if spec.fragmenter is not None and tp > 1:
            shard = spec.fragmenter.shard(padded, tp, tp_rank)
        else:
            shard = padded
        flat = np.ascontiguousarray(shard, dtype=np.float32).reshape(-1)
        self._freeze(f"atom:{name}:{kind}:tp{tp_rank}", flat)
        self._evict(self._shards)
        self._shards[key] = flat
        return flat

    @staticmethod
    def _freeze(key: str, arr: np.ndarray) -> None:
        """Write-protect one cached array before it is shared.

        Callers get views of cached atoms (``shard_slice`` whole-atom
        mode returns ``shard_flat(...)[lo:hi]`` zero-copy); freezing
        turns an accidental in-place mutation — which would poison every
        later load from the cache — into an immediate ``ValueError``.
        With a memory sanitizer active the buffer is also registered, so
        integrity sweeps report poisoning (UCP027) and loaded-state
        aliasing (UCP028) under the atom's name.
        """
        from repro.analysis import sanitizer as _sanitizer

        san = _sanitizer.current()
        if san is not None:
            san.register_cache(key, arr)
        else:
            arr.setflags(write=False)

    def shard_slice(
        self, name: str, kind: str, tp_rank: int, lo: int, hi: int
    ) -> np.ndarray:
        """Elements ``[lo, hi)`` of one flattened target TP shard.

        Whole-atom mode slices :meth:`shard_flat`; sliced mode reads
        only the bytes backing the request: the shard range maps through
        the parameter's shard -> consolidated runs, intersects the
        non-padding data intervals (whose concatenation *is* the atom
        file), and the resulting atom byte ranges stream through the
        shared :class:`RangeReader`.  Padding positions stay zero —
        byte-identical to ``add_padding`` + fragment + slice, without
        materializing either the padded tensor or the shard.
        """
        if lo < 0 or hi < lo:
            raise ValueError(f"invalid shard slice [{lo}, {hi})")
        if not self.sliced or name in self._shared:
            return self.shard_flat(name, kind, tp_rank)[lo:hi]
        entry = self._state_entry(name, kind)
        out = np.zeros(hi - lo, dtype=np.float32)
        ranges: List[Tuple[int, int]] = []
        places: List[Tuple[int, int]] = []  # (out offset, length)
        for run in self._shard_runs(name, tp_rank):
            s_lo = max(run.shard_start, lo)
            s_hi = min(run.shard_end, hi)
            if s_lo >= s_hi:
                continue
            f_lo = run.full_start + (s_lo - run.shard_start)
            f_hi = f_lo + (s_hi - s_lo)
            for d_lo, d_hi, atom_off in self._atom_data_map(name):
                if d_hi <= f_lo:
                    continue
                if d_lo >= f_hi:
                    break
                seg_lo = max(f_lo, d_lo)
                seg_hi = min(f_hi, d_hi)
                ranges.append(entry.element_range(
                    atom_off + (seg_lo - d_lo), seg_hi - seg_lo
                ))
                places.append((
                    (s_lo - lo) + (seg_lo - f_lo), seg_hi - seg_lo
                ))
        rel = self.atom_store._atom_path(name, f"{kind}.npt")
        for (out_off, count), buf in zip(
            places, self.reader.read_multi(rel, ranges)
        ):
            out[out_off:out_off + count] = np.frombuffer(
                buf, dtype=np.float32, count=count
            )
        return out


def load(
    atom_store: AtomStore,
    plan: LoadPlan,
    kind: str,
    pp_stage: int,
    sp_rank: int,
    tp_rank: int,
    dp_rank: int,
    cache: Optional[AtomShardCache] = None,
) -> np.ndarray:
    """Materialize one target rank's flat partition of one state kind.

    The paper's *Load*: streams atom checkpoints into the rank's flat
    buffer in layer order, alignment padding re-added (zeros).  With a
    ``sliced`` cache, each partition slice reads only its own byte
    range of each atom file instead of the whole atom.
    """
    rank_layout = plan.layout.rank_layout(pp_stage, sp_rank, tp_rank)
    partition = np.zeros(rank_layout.partition_numel, dtype=np.float32)
    if cache is None:
        cache = AtomShardCache(atom_store, plan)
    for piece in rank_layout.slices_in_partition(dp_rank):
        partition[piece.local_start : piece.local_end] = cache.shard_slice(
            piece.name, kind, tp_rank, piece.shard_start, piece.shard_end
        )
    return partition
