"""The UCP language: declarative parameter-pattern programs.

A :class:`PatternProgram` is an ordered list of rules, each mapping a
parameter-name regex to one of the paper's Table 1 patterns
(``unique_params`` / ``replicated_params`` / ``fragment_params`` /
``params_to_average``), optionally with a fragment sub-pattern
(Fig 5: even, fused variable-size sections, expert tensors, padded
vocab).  The converter classifies every parameter through the program;
an unmatched parameter is an error, not a silent skip.

``program_for_config`` writes the program a developer would write for
this repo's transformer families — a dozen generic rules covering every
architecture in the paper's evaluation.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Tuple

from repro.core.errors import PatternMatchError
from repro.models.configs import ModelConfig
from repro.parallel.sharding import (
    EvenFragment,
    ExpertFragment,
    ExpertParallelFragment,
    Fragmenter,
    FusedSectionsFragment,
    VocabFragment,
)
from repro.parallel.tp import (
    ALL_PATTERNS,
    PATTERN_FRAGMENT,
    PATTERN_REPLICATED,
    PATTERN_TO_AVERAGE,
    ShardSpec,
)


@dataclasses.dataclass(frozen=True)
class PatternRule:
    """One rule: parameter-name regex -> pattern (+ sub-pattern)."""

    regex: str
    pattern: str
    fragmenter: Optional[Fragmenter] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.pattern not in ALL_PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.pattern == PATTERN_FRAGMENT and self.fragmenter is None:
            raise ValueError(
                f"rule {self.regex!r}: fragment_params needs a fragmenter"
            )
        object.__setattr__(self, "_compiled", re.compile(self.regex))

    def matches(self, name: str) -> bool:
        """Whether this rule applies to a parameter name."""
        return self._compiled.search(name) is not None

    def to_dict(self) -> Dict:
        """JSON form."""
        return {
            "regex": self.regex,
            "pattern": self.pattern,
            "fragmenter": None if self.fragmenter is None else self.fragmenter.to_dict(),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PatternRule":
        """Inverse of :meth:`to_dict`."""
        frag = payload.get("fragmenter")
        return cls(
            regex=payload["regex"],
            pattern=payload["pattern"],
            fragmenter=None if frag is None else Fragmenter.from_dict(frag),
            label=payload.get("label", ""),
        )


class PatternProgram:
    """An ordered rule list; first matching rule wins."""

    def __init__(self, rules: List[PatternRule]) -> None:
        if not rules:
            raise ValueError("a pattern program needs at least one rule")
        self.rules = list(rules)

    def match(self, name: str) -> PatternRule:
        """The first rule matching a parameter name.

        Raises:
            PatternMatchError: when no rule matches — every parameter
                must be classified explicitly.
        """
        for rule in self.rules:
            if rule.matches(name):
                return rule
        raise PatternMatchError(
            f"parameter {name!r} matched no pattern rule; add a rule to "
            f"the program (have {len(self.rules)} rules)"
        )

    def resolve_spec(
        self,
        name: str,
        logical_shape: Tuple[int, ...],
        unpadded_shape: Optional[Tuple[int, ...]] = None,
    ) -> ShardSpec:
        """Build a full :class:`ShardSpec` for one parameter.

        Shapes come from checkpoint metadata; the rule supplies the
        pattern and sub-pattern.
        """
        rule = self.match(name)
        unpadded = tuple(unpadded_shape) if unpadded_shape else tuple(logical_shape)
        if rule.pattern == PATTERN_FRAGMENT and isinstance(rule.fragmenter, VocabFragment):
            unpadded = (rule.fragmenter.logical_rows,) + tuple(logical_shape[1:])
        return ShardSpec(
            pattern=rule.pattern,
            logical_shape=tuple(logical_shape),
            unpadded_shape=unpadded,
            fragmenter=rule.fragmenter,
        )

    def to_dict(self) -> Dict:
        """JSON form (embedded in UCP metadata for provenance)."""
        return {"rules": [r.to_dict() for r in self.rules]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "PatternProgram":
        """Inverse of :meth:`to_dict`."""
        return cls([PatternRule.from_dict(r) for r in payload["rules"]])


def program_for_config(
    cfg: ModelConfig,
    average_replicas: bool = False,
    expert_parallel: bool = False,
) -> PatternProgram:
    """The pattern program for this repo's transformer families.

    Args:
        cfg: model configuration (supplies head/expert geometry for the
            variable-size sub-patterns).
        average_replicas: classify norm parameters as
            ``params_to_average`` instead of ``replicated_params`` —
            for SP/TP variants that update them independently per rank.
        expert_parallel: the source sharded MoE tensors along the
            expert axis (whole experts per rank) rather than inside
            each expert.
    """
    head_dim = cfg.head_dim
    q_size = cfg.num_heads * head_dim
    kv_size = cfg.num_kv_heads * head_dim
    qkv_sections = FusedSectionsFragment(dim=0, section_sizes=(q_size, kv_size, kv_size))
    vocab_frag = VocabFragment(logical_rows=cfg.vocab_size)
    norm_pattern = PATTERN_TO_AVERAGE if average_replicas else PATTERN_REPLICATED

    rules = [
        PatternRule(r"^embedding\.weight$", PATTERN_FRAGMENT, vocab_frag,
                    label="vocab-parallel embedding"),
        PatternRule(r"^lm_head$", PATTERN_FRAGMENT, vocab_frag,
                    label="vocab-parallel LM head"),
        PatternRule(r"^pos_embedding\.weight$", PATTERN_REPLICATED,
                    label="learned positions"),
        PatternRule(r"\.attn\.qkv\.(weight|bias)$", PATTERN_FRAGMENT, qkv_sections,
                    label="fused QKV (variable sections under GQA)"),
        PatternRule(r"\.attn\.out\.weight$", PATTERN_FRAGMENT, EvenFragment(dim=1),
                    label="row-parallel attention output"),
        PatternRule(r"\.attn\.out\.bias$", PATTERN_REPLICATED,
                    label="attention output bias"),
        PatternRule(r"\.ffn\.router\.proj\.weight$", PATTERN_REPLICATED,
                    label="MoE router"),
    ]
    if expert_parallel:
        rules += [
            PatternRule(r"\.ffn\.(gate|up|down)_weight$", PATTERN_FRAGMENT,
                        ExpertParallelFragment(expert_axis=0),
                        label="MoE expert-parallel (whole experts per rank)"),
        ]
    else:
        rules += [
            PatternRule(r"\.ffn\.(gate|up)_weight$", PATTERN_FRAGMENT,
                        ExpertFragment(expert_axis=0, shard_dim=1),
                        label="MoE expert up/gate (3-dim)"),
            PatternRule(r"\.ffn\.down_weight$", PATTERN_FRAGMENT,
                        ExpertFragment(expert_axis=0, shard_dim=2),
                        label="MoE expert down (3-dim)"),
        ]
    rules += [
        PatternRule(r"\.ffn\.(gate|up)\.weight$", PATTERN_FRAGMENT, EvenFragment(dim=0),
                    label="column-parallel FFN up/gate"),
        PatternRule(r"\.ffn\.up\.bias$", PATTERN_FRAGMENT, EvenFragment(dim=0),
                    label="column-parallel FFN bias"),
        PatternRule(r"\.ffn\.down\.weight$", PATTERN_FRAGMENT, EvenFragment(dim=1),
                    label="row-parallel FFN down"),
        PatternRule(r"\.ffn\.down\.bias$", PATTERN_REPLICATED,
                    label="FFN down bias"),
        PatternRule(r"norm", norm_pattern, label="normalization gains/biases"),
    ]
    return PatternProgram(rules)
