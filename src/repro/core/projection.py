"""Paper-scale projections from the analytic models.

The mini-scale benchmarks validate *behaviour*; this module projects
the same quantities to the paper's actual workloads (GPT-3 350M,
LLaMA-7B, BLOOM-176B, Mixtral-MoE 42B on multi-node clusters) using
the exact layout arithmetic plus the NVMe cost model — no weights are
instantiated, so projecting a 176B-parameter job takes milliseconds.

Projected per configuration:

* checkpoint footprint — bytes per rank file and total;
* save time — per-rank parallel writes (each rank owns its files);
* UCP conversion time — read everything, write atoms, I/O-bound model;
* load time — standard distributed load vs UCP atom load with
  DeepNVMe-style queue-depth amortization.
"""

from __future__ import annotations

import dataclasses

from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.parallel.layout import ModelParallelLayout
from repro.storage.nvme import DEFAULT_NVME, NVMeModel

_MASTER_AND_MOMENTS = 12  # fp32 + exp_avg + exp_avg_sq, bytes per element


@dataclasses.dataclass(frozen=True)
class CheckpointProjection:
    """Analytic checkpoint cost estimates for one configuration."""

    model_name: str
    parallel: str
    world_size: int
    total_state_bytes: int
    bytes_per_optim_file: int
    num_optim_files: int
    save_seconds: float
    standard_load_seconds: float
    ucp_convert_seconds: float
    ucp_load_seconds: float

    @property
    def total_state_tb(self) -> float:
        """Total optimizer-state footprint in terabytes."""
        return self.total_state_bytes / 1e12

    @property
    def ucp_overhead_ratio(self) -> float:
        """(convert + load) / standard load — the Fig 12 quantity."""
        if self.standard_load_seconds == 0:
            return float("inf")
        return (
            self.ucp_convert_seconds + self.ucp_load_seconds
        ) / self.standard_load_seconds


def project_checkpoint_costs(
    model_cfg: ModelConfig,
    parallel_cfg: ParallelConfig,
    nvme: NVMeModel = DEFAULT_NVME,
    nodes_share_nvme: int = 8,
) -> CheckpointProjection:
    """Project checkpoint costs for one (model, topology) pair.

    Args:
        model_cfg / parallel_cfg: the configuration to project.
        nvme: storage device profile.
        nodes_share_nvme: ranks per node sharing one NVMe device —
            writes from co-located ranks serialize on the device.
    """
    layout = ModelParallelLayout(model_cfg, parallel_cfg)
    dp = parallel_cfg.dp

    per_mp_payloads = [
        layout.rank_layout(*coord).payload_numel for coord in layout.mp_coords()
    ]
    total_state = sum(per_mp_payloads) * _MASTER_AND_MOMENTS
    worst_mp_payload = max(per_mp_payloads)
    per_optim_file = worst_mp_payload * _MASTER_AND_MOMENTS // dp
    num_optim_files = len(per_mp_payloads) * dp

    world = parallel_cfg.world_size
    ranks_per_device = min(max(nodes_share_nvme, 1), world)
    # saving: every rank writes its own file; co-located ranks share
    # the device's write bandwidth
    save_seconds = nvme.write_time(
        per_optim_file * ranks_per_device, parallel=ranks_per_device
    )
    standard_load_seconds = nvme.read_time(
        per_optim_file * ranks_per_device, parallel=ranks_per_device
    )
    # conversion: one pass reads the full state and writes it back as
    # atoms, spread across the job's devices
    devices = max(1, world // ranks_per_device)
    per_device_bytes = total_state // devices
    ucp_convert_seconds = nvme.read_time(
        per_device_bytes, parallel=nvme.max_parallel
    ) + nvme.write_time(per_device_bytes, parallel=nvme.max_parallel)
    # UCP load: each rank streams its partition's atoms at queue depth
    ucp_load_seconds = nvme.read_time(
        per_optim_file * ranks_per_device, parallel=nvme.max_parallel
    )

    return CheckpointProjection(
        model_name=model_cfg.name,
        parallel=parallel_cfg.describe(),
        world_size=world,
        total_state_bytes=int(total_state),
        bytes_per_optim_file=int(per_optim_file),
        num_optim_files=num_optim_files,
        save_seconds=save_seconds,
        standard_load_seconds=standard_load_seconds,
        ucp_convert_seconds=ucp_convert_seconds,
        ucp_load_seconds=ucp_load_seconds,
    )
