"""High-level resume flows: lazy conversion and elastic failover.

``resume_training`` is the user-facing entry point matching the paper's
Fig 3 flow: it loads a distributed checkpoint directly when the target
strategy matches the source, and otherwise converts to UCP *lazily, on
demand* before loading — existing save logic never changes.

:class:`ElasticResumeManager` implements the headline use cases from
the introduction: continuing on remaining healthy hardware after a
failure, and opportunistically growing onto elastic capacity.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.ckpt.loader import read_job_config, resolve_tag
from repro.core.convert import ucp_convert
from repro.core.errors import UCPError
from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.parallel.engine import TrainingEngine
from repro.storage.store import ObjectStore


def _engine_from_job_config(
    job_config: Dict, target_cfg: ParallelConfig, **overrides
) -> TrainingEngine:
    kwargs = dict(
        model_cfg=ModelConfig.from_dict(job_config["model_config"]),
        parallel_cfg=target_cfg,
        seed=job_config["seed"],
        data_seed=job_config["data_seed"],
        global_batch_size=job_config["global_batch_size"],
        seq_len=job_config["seq_len"],
    )
    kwargs.update(overrides)
    return TrainingEngine(**kwargs)


def resume_training(
    ckpt_dir: str,
    target_cfg: ParallelConfig,
    tag: Optional[str] = None,
    ucp_dir: Optional[str] = None,
    workers: int = 0,
    **engine_overrides,
) -> TrainingEngine:
    """Resume a training job under an arbitrary target strategy.

    If ``target_cfg`` equals the source strategy, this is a plain
    distributed load (no conversion).  Otherwise the checkpoint is
    converted to UCP (cached next to the checkpoint as
    ``<ckpt_dir>/ucp_<tag>``) and loaded under the new strategy.

    Args:
        ckpt_dir: the job's checkpoint directory.
        target_cfg: the new parallelism strategy / hardware shape.
        tag: source tag; defaults to latest.
        ucp_dir: where to place converted atoms.
        workers: conversion thread count.
        **engine_overrides: forwarded to :class:`TrainingEngine`
            (e.g. a new LR schedule or mixed-precision policy).
    """
    store = ObjectStore(ckpt_dir)
    src_tag = resolve_tag(store, tag)
    job_config = read_job_config(ckpt_dir, src_tag)
    source_cfg = ParallelConfig.from_dict(job_config["parallel_config"])

    engine = _engine_from_job_config(job_config, target_cfg, **engine_overrides)
    if source_cfg == target_cfg:
        engine.load_checkpoint(ckpt_dir, tag=src_tag)
        return engine

    if ucp_dir is None:
        ucp_dir = f"{ckpt_dir}/ucp_{src_tag}"
    ucp_store = ObjectStore(ucp_dir)
    if not ucp_store.exists("ucp_meta.npt"):
        ucp_convert(ckpt_dir, ucp_dir, tag=src_tag, workers=workers)
    engine.load_universal(ucp_dir)
    return engine


@dataclasses.dataclass(frozen=True)
class ResizePlan:
    """A chosen target strategy for a new world size."""

    target: ParallelConfig
    reason: str


class ElasticResumeManager:
    """Chooses and executes topology changes when capacity changes.

    Policy: keep the model-parallel shape (TP × PP × SP) if the new
    world size still fits it, adjusting only DP; shrink PP (then TP) to
    the largest divisor that fits otherwise.  DP is additionally
    constrained to divide the global batch size.

    Two objectives are available: ``"ranks"`` maximizes ranks used
    (the default), ``"throughput"`` scores candidates by estimated
    useful compute — ranks × (1 − pipeline bubble) — using the 1F1B
    bubble model, which prefers shallower pipelines when micro-batch
    counts are small.
    """

    def __init__(
        self,
        ckpt_dir: str,
        global_batch_size: int,
        micro_batches: int = 4,
        memory_budget_gb: Optional[float] = None,
        model_cfg: Optional[ModelConfig] = None,
        seq_len: int = 2048,
    ) -> None:
        if micro_batches < 1:
            raise ValueError(f"micro_batches must be >= 1, got {micro_batches}")
        if memory_budget_gb is not None and model_cfg is None:
            raise ValueError(
                "a memory budget requires model_cfg to size the candidates"
            )
        self.ckpt_dir = ckpt_dir
        self.global_batch_size = global_batch_size
        self.micro_batches = micro_batches
        self.memory_budget_gb = memory_budget_gb
        self.model_cfg = model_cfg
        self.seq_len = seq_len

    def _fits_memory(self, target: ParallelConfig) -> bool:
        if self.memory_budget_gb is None:
            return True
        from repro.parallel.memory import fits_budget

        micro_size = max(
            1, self.global_batch_size // (target.dp * self.micro_batches)
        )
        return fits_budget(
            self.model_cfg,
            target,
            self.memory_budget_gb,
            micro_batch_size=micro_size,
            seq_len=self.seq_len,
            micro_batches=self.micro_batches,
        )

    def estimated_throughput(self, target: ParallelConfig) -> float:
        """Useful ranks after pipeline bubble, for candidate scoring."""
        from repro.parallel.schedule import analytic_bubble_fraction

        bubble = analytic_bubble_fraction(target.pp, self.micro_batches)
        return target.world_size * (1.0 - bubble)

    def _dp_for(self, world: int, mp_size: int) -> int:
        if world < mp_size or world % mp_size != 0:
            return 0
        dp = world // mp_size
        while dp > 0 and self.global_batch_size % dp != 0:
            dp -= 1
        return dp

    def plan_resize(
        self,
        source: ParallelConfig,
        new_world: int,
        objective: str = "ranks",
    ) -> ResizePlan:
        """Pick a target strategy for ``new_world`` ranks.

        Args:
            source: the strategy the checkpoint was written under.
            new_world: available rank count.
            objective: "ranks" (most ranks used) or "throughput"
                (bubble-adjusted useful compute).

        Raises:
            UCPError: no feasible configuration exists.
        """
        if objective not in ("ranks", "throughput"):
            raise ValueError(f"unknown objective {objective!r}")
        if new_world < 1:
            raise UCPError("cannot resume with zero healthy ranks")

        candidates: List[ResizePlan] = []
        mp = source.tp * source.pp * source.sp
        dp = self._dp_for(new_world, mp)
        if dp:
            candidates.append(
                ResizePlan(
                    ParallelConfig(tp=source.tp, pp=source.pp, dp=dp, sp=source.sp,
                                   zero_stage=source.zero_stage),
                    reason=f"kept model-parallel shape, dp {source.dp} -> {dp}",
                )
            )
        for pp in range(source.pp, 0, -1):
            for tp in range(source.tp, 0, -1):
                mp = tp * pp * source.sp
                dp = self._dp_for(new_world, mp)
                if dp:
                    candidates.append(
                        ResizePlan(
                            ParallelConfig(tp=tp, pp=pp, dp=dp, sp=source.sp,
                                           zero_stage=source.zero_stage),
                            reason=f"resized to tp={tp} pp={pp} dp={dp}",
                        )
                    )
        if not candidates:
            raise UCPError(
                f"no parallel configuration fits {new_world} ranks with "
                f"global batch {self.global_batch_size}"
            )
        if self.memory_budget_gb is not None:
            fitting = [c for c in candidates if self._fits_memory(c.target)]
            if not fitting:
                raise UCPError(
                    f"no candidate for {new_world} ranks fits the "
                    f"{self.memory_budget_gb} GB/GPU budget; best "
                    f"candidate was {candidates[0].target.describe()}"
                )
            candidates = fitting
        if objective == "throughput":
            return max(
                candidates, key=lambda plan: self.estimated_throughput(plan.target)
            )
        # "ranks": prefer the plan using the most ranks; earlier
        # candidates (closer to the source shape) win ties
        return max(candidates, key=lambda plan: plan.target.world_size)

    def resume_after_failure(
        self,
        source: ParallelConfig,
        healthy_ranks: int,
        tag: Optional[str] = None,
        **engine_overrides,
    ) -> TrainingEngine:
        """Plan a downsize and resume from the latest checkpoint."""
        plan = self.plan_resize(source, healthy_ranks)
        return resume_training(
            self.ckpt_dir, plan.target, tag=tag, **engine_overrides
        )

    def resume_with_capacity(
        self,
        source: ParallelConfig,
        new_world: int,
        tag: Optional[str] = None,
        **engine_overrides,
    ) -> TrainingEngine:
        """Grow (or shrink) onto a new world size — elastic capacity."""
        plan = self.plan_resize(source, new_world)
        return resume_training(
            self.ckpt_dir, plan.target, tag=tag, **engine_overrides
        )
