"""Synthetic training data (the Pile substitute).

A deterministic token stream whose *global batch at step t* is a pure
function of (seed, step, sample index) — independent of topology — so a
run resumed under a different parallelism strategy sees exactly the
training data it would have seen without the resume.
"""

from repro.data.corpus import SyntheticCorpus
from repro.data.dataloader import Batch, DataLoader

__all__ = ["SyntheticCorpus", "Batch", "DataLoader"]
