"""Deterministic synthetic corpus with a Zipf-like token distribution.

Real text corpora (the paper uses a Pile subset) have heavy-tailed
unigram statistics and local correlations; a language model's loss
decreases as it learns them.  The synthetic stream reproduces both: a
Zipf unigram prior plus a first-order Markov "topic" structure, which
gives tiny models a smoothly decreasing loss curve — what Figs 6-10
plot across resume boundaries.
"""

from __future__ import annotations

import hashlib

import numpy as np


class SyntheticCorpus:
    """Generates token sequences keyed by (seed, step, sample)."""

    def __init__(self, vocab_size: int, seq_len: int, seed: int = 0, zipf_a: float = 1.3) -> None:
        if vocab_size < 4:
            raise ValueError(f"vocab_size must be >= 4, got {vocab_size}")
        if seq_len < 2:
            raise ValueError(f"seq_len must be >= 2, got {seq_len}")
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        self.seed = seed
        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        weights = ranks ** (-zipf_a)
        self._unigram = (weights / weights.sum()).astype(np.float64)
        # a fixed "grammar": each token prefers a few successors
        gen = np.random.default_rng(seed ^ 0x5EED)
        self._successors = gen.integers(0, vocab_size, size=(vocab_size, 4))

    def _generator(self, step: int, sample: int) -> np.random.Generator:
        digest = hashlib.sha256(f"{self.seed}:{step}:{sample}".encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def sequence(self, step: int, sample: int) -> np.ndarray:
        """One token sequence of length seq_len + 1 (inputs + shifted target)."""
        gen = self._generator(step, sample)
        tokens = np.empty(self.seq_len + 1, dtype=np.int64)
        tokens[0] = gen.choice(self.vocab_size, p=self._unigram)
        for i in range(1, self.seq_len + 1):
            if gen.random() < 0.7:
                # follow the grammar: pick one of the preferred successors
                choices = self._successors[tokens[i - 1]]
                tokens[i] = choices[gen.integers(0, choices.shape[0])]
            else:
                tokens[i] = gen.choice(self.vocab_size, p=self._unigram)
        return tokens

    def batch(self, step: int, first_sample: int, count: int) -> np.ndarray:
        """Stacked sequences [count, seq_len + 1] for one step."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        return np.stack(
            [self.sequence(step, first_sample + i) for i in range(count)]
        )
