"""Topology-aware data loader.

The *global* batch for step t is fixed; each data-parallel replica reads
the contiguous slice of samples its DP rank owns.  Changing DP width
across a resume re-slices the same global batch, so the training data
stream is invariant to the parallelism strategy (required for the
paper's loss-continuity experiments).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.corpus import SyntheticCorpus


@dataclasses.dataclass(frozen=True)
class Batch:
    """One micro-batch: inputs and next-token targets."""

    inputs: np.ndarray  # [samples, seq_len] int64
    targets: np.ndarray  # [samples, seq_len] int64

    @property
    def num_samples(self) -> int:
        """Sample count in this batch."""
        return int(self.inputs.shape[0])


class DataLoader:
    """Deterministic per-step batch slicing over a synthetic corpus."""

    def __init__(
        self,
        corpus: SyntheticCorpus,
        global_batch_size: int,
        dp_world: int = 1,
    ) -> None:
        if global_batch_size <= 0:
            raise ValueError(f"global_batch_size must be > 0, got {global_batch_size}")
        if dp_world <= 0 or global_batch_size % dp_world != 0:
            raise ValueError(
                f"global batch {global_batch_size} must divide evenly across "
                f"dp={dp_world} replicas"
            )
        self.corpus = corpus
        self.global_batch_size = global_batch_size
        self.dp_world = dp_world

    @property
    def per_replica(self) -> int:
        """Samples each DP replica processes per step."""
        return self.global_batch_size // self.dp_world

    def global_batch(self, step: int) -> Batch:
        """The full step batch, as a DP=1 run would see it."""
        data = self.corpus.batch(step, first_sample=0, count=self.global_batch_size)
        return Batch(inputs=data[:, :-1], targets=data[:, 1:])

    def replica_batch(self, step: int, dp_rank: int) -> Batch:
        """The slice of the step batch that one DP replica consumes."""
        if not 0 <= dp_rank < self.dp_world:
            raise IndexError(f"dp_rank {dp_rank} out of range for dp={self.dp_world}")
        first = dp_rank * self.per_replica
        data = self.corpus.batch(step, first_sample=first, count=self.per_replica)
        return Batch(inputs=data[:, :-1], targets=data[:, 1:])
