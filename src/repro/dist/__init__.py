"""Simulated distributed runtime.

Replaces NCCL + multi-process launch with an in-process cluster: a rank
grid (:class:`Topology`) mapping global ranks to (TP, PP, DP, SP)
coordinates, process groups over that grid, and deterministic collectives
with byte-level traffic accounting.  Determinism (fixed reduction order)
is what lets the reproduction assert bit-equality where the paper could
only assert a 0.02 loss band.
"""

from repro.dist.topology import AxisName, ParallelConfig, RankCoord, Topology
from repro.dist.process_group import ProcessGroup
from repro.dist.collectives import (
    CommRecord,
    CommTracker,
    all_gather,
    all_reduce,
    broadcast,
    reduce_scatter,
)
from repro.dist.cluster import Cluster, RankFailure
from repro.dist.supervisor import (
    RecoveryEvent,
    RecoveryReport,
    StageTimings,
    Supervisor,
    TopologyRejectedError,
    supervise,
)

__all__ = [
    "AxisName",
    "ParallelConfig",
    "RankCoord",
    "Topology",
    "ProcessGroup",
    "CommRecord",
    "CommTracker",
    "all_gather",
    "all_reduce",
    "broadcast",
    "reduce_scatter",
    "Cluster",
    "RankFailure",
    "RecoveryEvent",
    "RecoveryReport",
    "StageTimings",
    "Supervisor",
    "TopologyRejectedError",
    "supervise",
]
