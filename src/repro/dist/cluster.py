"""Simulated cluster: topology + process groups + failure injection.

A :class:`Cluster` owns the :class:`Topology` for a parallelism config,
builds the standard TP/PP/DP/SP process groups, and supports marking
ranks as failed — the hook the elastic-resume examples use to model the
paper's "continue on remaining healthy hardware" scenario.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.dist.collectives import CommTracker
from repro.dist.process_group import ProcessGroup
from repro.dist.topology import AxisName, ParallelConfig, Topology


class RankFailure(RuntimeError):
    """Raised when an operation touches a failed rank."""


class Cluster:
    """An in-process simulation of a GPU cluster running one job."""

    def __init__(
        self,
        config: ParallelConfig,
        tracker: Optional[CommTracker] = None,
        trace=None,
    ) -> None:
        self.config = config
        self.topology = Topology(config)
        self.tracker = tracker if tracker is not None else CommTracker()
        # shared per-rank collective log; the race detector
        # (repro.analysis.collective_trace) checks it for cross-rank
        # ordering divergence after training/save paths run.  Imported
        # lazily: repro.analysis sits above repro.dist in the layering
        # and importing it here at module scope would be circular.
        if trace is None:
            from repro.analysis.collective_trace import CollectiveTraceRecorder

            trace = CollectiveTraceRecorder()
        self.trace = trace
        self._failed: Set[int] = set()
        self._groups: Dict[str, ProcessGroup] = {}
        for axis in ("tp", "pp", "dp", "sp"):
            for members in self.topology.groups(axis):
                name = f"{axis}:{','.join(map(str, members))}"
                self._groups[name] = ProcessGroup(
                    name, members, tracker=self.tracker, trace=self.trace
                )

    @property
    def world_size(self) -> int:
        """Total rank count."""
        return self.topology.world_size

    def group_for(self, axis: AxisName, rank: int) -> ProcessGroup:
        """The ``axis`` process group containing ``rank``."""
        self.check_alive(rank)
        members = self.topology.group_ranks(axis, rank)
        name = f"{axis}:{','.join(map(str, members))}"
        return self._groups[name]

    def groups(self, axis: AxisName) -> List[ProcessGroup]:
        """All process groups along one axis."""
        return [g for name, g in self._groups.items() if name.startswith(f"{axis}:")]

    def barrier(self, label: str) -> None:
        """Trace a world-wide synchronization point.

        Barriers move no payload, so nothing is charged to the
        :class:`CommTracker`; the event only enters the collective
        trace, where the race detector proves every rank reached the
        same labelled sync points in the same order (e.g. the save
        path's entry and commit barriers).
        """
        self.trace.record(
            f"barrier:{label}",
            "world",
            list(self.topology.ranks()),
            0,
            dtype="none",
        )

    def fail_rank(self, rank: int) -> None:
        """Mark a rank as failed (simulated hardware failure)."""
        if not 0 <= rank < self.world_size:
            raise IndexError(f"rank {rank} out of range")
        self._failed.add(rank)

    def heal_rank(self, rank: int) -> None:
        """Bring a failed rank back (e.g. node replaced)."""
        self._failed.discard(rank)

    @property
    def failed_ranks(self) -> Set[int]:
        """Currently failed ranks."""
        return set(self._failed)

    @property
    def healthy_ranks(self) -> List[int]:
        """Ranks that are still alive."""
        return [r for r in self.topology.ranks() if r not in self._failed]

    def check_alive(self, rank: int) -> None:
        """Raise :class:`RankFailure` if ``rank`` has failed."""
        if rank in self._failed:
            raise RankFailure(f"rank {rank} has failed")

    def check_world_alive(self) -> None:
        """Raise if any rank in the world has failed (job-level check)."""
        if self._failed:
            raise RankFailure(
                f"ranks {sorted(self._failed)} have failed; "
                f"{len(self.healthy_ranks)} healthy ranks remain"
            )
