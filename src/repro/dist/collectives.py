"""Deterministic in-process collectives with traffic accounting.

Each collective takes the per-rank arrays of one process group and
returns the per-rank results, reducing in fixed (rank) order so results
are bit-reproducible.  A :class:`CommTracker` records ring-algorithm
byte volumes so benchmarks can report communication costs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np


def sanitize_boundary(
    op: str,
    inputs: Sequence[np.ndarray],
    outputs: Sequence[np.ndarray],
    group: Optional[Tuple[str, Sequence[int]]] = None,
) -> Sequence[np.ndarray]:
    """Hand a collective's per-rank results to the active memory sanitizer.

    Every collective calls this just before returning: with a sanitizer
    active (``repro.analysis.sanitizer.sanitize`` /``REPRO_SANITIZE=1``)
    the results are checked for writable cross-rank aliasing (UCP025);
    with none, the cost is one function call.  ``group`` carries
    ``(name, ranks)`` when the caller is a :class:`ProcessGroup`, so
    violations name real global ranks; direct module-level calls (e.g.
    sequence parallelism's ``all_to_all``) fall back to local indices.

    Imported lazily so ``repro.dist`` stays free of analysis imports at
    module scope (same layering rule as the trace recorder).
    """
    from repro.analysis import sanitizer as _sanitizer

    san = _sanitizer.current()
    if san is not None:
        name, ranks = group if group is not None else (op, range(len(outputs)))
        san.on_collective(op, name, list(ranks), inputs, outputs)
    return outputs


@dataclasses.dataclass(frozen=True)
class CommRecord:
    """One collective call's accounting entry."""

    op: str
    group_size: int
    bytes_per_rank: int


class CommTracker:
    """Accumulates communication volume across collective calls."""

    def __init__(self) -> None:
        self.records: List[CommRecord] = []

    def record(self, op: str, group_size: int, bytes_per_rank: int) -> None:
        """Append one accounting entry."""
        self.records.append(CommRecord(op, group_size, bytes_per_rank))

    @property
    def total_bytes(self) -> int:
        """Sum of per-rank traffic over all recorded collectives."""
        return sum(r.bytes_per_rank * r.group_size for r in self.records)

    def count(self, op: Optional[str] = None) -> int:
        """Number of recorded calls, optionally filtered by op name."""
        if op is None:
            return len(self.records)
        return sum(1 for r in self.records if r.op == op)

    def reset(self) -> None:
        """Drop all records."""
        self.records.clear()


def _ring_allreduce_bytes(numel: int, itemsize: int, group_size: int) -> int:
    """Per-rank bytes moved by a ring all-reduce."""
    if group_size <= 1:
        return 0
    return 2 * (group_size - 1) * numel * itemsize // group_size


def all_reduce(
    shards: Sequence[np.ndarray],
    op: str = "sum",
    tracker: Optional[CommTracker] = None,
    *,
    group: Optional[Tuple[str, Sequence[int]]] = None,
) -> List[np.ndarray]:
    """All-reduce across a group: every rank receives the reduction.

    Reduction is performed in ascending rank order (deterministic).

    Args:
        shards: one array per rank, identical shapes.
        op: "sum" or "avg".
        tracker: optional traffic accounting sink.
    """
    if not shards:
        raise ValueError("all_reduce over an empty group")
    shapes = {s.shape for s in shards}
    if len(shapes) != 1:
        raise ValueError(f"all_reduce shape mismatch across ranks: {shapes}")
    total = shards[0].astype(np.float32, copy=True)
    for shard in shards[1:]:
        total = total + shard.astype(np.float32)
    if op == "avg":
        total = total / np.float32(len(shards))
    elif op != "sum":
        raise ValueError(f"unsupported all_reduce op {op!r}")
    if tracker is not None:
        tracker.record(
            "all_reduce",
            len(shards),
            _ring_allreduce_bytes(total.size, total.itemsize, len(shards)),
        )
    results = [total.copy() for _ in shards]
    sanitize_boundary("all_reduce", shards, results, group=group)
    return results


def all_gather(
    shards: Sequence[np.ndarray],
    axis: int = 0,
    tracker: Optional[CommTracker] = None,
    *,
    group: Optional[Tuple[str, Sequence[int]]] = None,
) -> List[np.ndarray]:
    """All-gather: every rank receives the rank-order concatenation."""
    if not shards:
        raise ValueError("all_gather over an empty group")
    gathered = np.concatenate([np.asarray(s) for s in shards], axis=axis)
    if tracker is not None:
        per_rank = sum(int(np.asarray(s).nbytes) for s in shards)
        tracker.record("all_gather", len(shards), per_rank)
    results = [gathered.copy() for _ in shards]
    sanitize_boundary("all_gather", shards, results, group=group)
    return results


def reduce_scatter(
    shards: Sequence[np.ndarray],
    op: str = "sum",
    tracker: Optional[CommTracker] = None,
    *,
    group: Optional[Tuple[str, Sequence[int]]] = None,
) -> List[np.ndarray]:
    """Reduce-scatter: sum (or average) then split equally by rank.

    Each input must be 1-D with length divisible by the group size.
    """
    if not shards:
        raise ValueError("reduce_scatter over an empty group")
    width = len(shards)
    reduced = all_reduce(shards, op=op)[0]
    if reduced.ndim != 1 or reduced.size % width != 0:
        raise ValueError(
            f"reduce_scatter needs 1-D arrays with length divisible by "
            f"{width}, got shape {reduced.shape}"
        )
    if tracker is not None:
        per_rank = (width - 1) * reduced.size * reduced.itemsize // width
        tracker.record("reduce_scatter", width, per_rank)
    size = reduced.size // width
    results = [reduced[i * size : (i + 1) * size].copy() for i in range(width)]
    sanitize_boundary("reduce_scatter", shards, results, group=group)
    return results


def all_to_all(
    shards: Sequence[np.ndarray],
    tracker: Optional[CommTracker] = None,
    *,
    group: Optional[Tuple[str, Sequence[int]]] = None,
) -> List[np.ndarray]:
    """All-to-all: rank r sends chunk j of its input to rank j.

    The collective behind DeepSpeed-Ulysses sequence parallelism
    (switching activations between sequence-split and head-split
    layouts).  Each input must be 1-D with length divisible by the
    group size; rank j receives the concatenation of every rank's
    j-th chunk, in rank order.
    """
    if not shards:
        raise ValueError("all_to_all over an empty group")
    width = len(shards)
    arrays = [np.asarray(s) for s in shards]
    shapes = {a.shape for a in arrays}
    if len(shapes) != 1:
        raise ValueError(f"all_to_all shape mismatch across ranks: {shapes}")
    first = arrays[0]
    if first.ndim != 1 or first.size % width != 0:
        raise ValueError(
            f"all_to_all needs 1-D arrays with length divisible by "
            f"{width}, got shape {first.shape}"
        )
    chunk = first.size // width
    outputs = []
    for receiver in range(width):
        outputs.append(
            np.concatenate(
                [a[receiver * chunk : (receiver + 1) * chunk] for a in arrays]
            )
        )
    if tracker is not None:
        per_rank = (width - 1) * chunk * first.itemsize
        tracker.record("all_to_all", width, per_rank)
    sanitize_boundary("all_to_all", shards, outputs, group=group)
    return outputs


def broadcast(
    value: np.ndarray,
    group_size: int,
    tracker: Optional[CommTracker] = None,
    *,
    group: Optional[Tuple[str, Sequence[int]]] = None,
) -> List[np.ndarray]:
    """Broadcast one rank's array to the whole group."""
    if group_size < 1:
        raise ValueError("broadcast to an empty group")
    arr = np.asarray(value)
    if tracker is not None:
        tracker.record("broadcast", group_size, int(arr.nbytes))
    results = [arr.copy() for _ in range(group_size)]
    sanitize_boundary("broadcast", [arr], results, group=group)
    return results
