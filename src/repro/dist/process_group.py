"""Process groups over the simulated topology."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.dist import collectives
from repro.dist.collectives import CommTracker


class ProcessGroup:
    """A named group of global ranks participating in collectives.

    The simulated runtime executes collectives as group-wide functions:
    callers supply the per-member arrays at once (the simulation has all
    ranks in-process), and the group returns the per-member results.
    """

    def __init__(
        self,
        name: str,
        ranks: Sequence[int],
        tracker: Optional[CommTracker] = None,
        trace=None,
    ) -> None:
        if not ranks:
            raise ValueError(f"process group {name!r} has no members")
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"process group {name!r} has duplicate ranks: {ranks}")
        self.name = name
        self.ranks: List[int] = list(ranks)
        self.tracker = tracker
        # CollectiveTraceRecorder feeding the static race detector;
        # duck-typed to keep repro.dist free of analysis imports
        self.trace = trace

    @property
    def size(self) -> int:
        """Number of member ranks."""
        return len(self.ranks)

    def local_rank(self, global_rank: int) -> int:
        """Index of a global rank within this group."""
        try:
            return self.ranks.index(global_rank)
        except ValueError:
            raise KeyError(
                f"rank {global_rank} not in group {self.name!r} ({self.ranks})"
            ) from None

    def all_reduce(self, shards: Sequence[np.ndarray], op: str = "sum") -> List[np.ndarray]:
        """All-reduce over the group (see :func:`collectives.all_reduce`)."""
        self._check_width(shards, "all_reduce")
        self._trace("all_reduce", shards, reduce_op=op)
        return collectives.all_reduce(
            shards, op=op, tracker=self.tracker, group=(self.name, self.ranks)
        )

    def all_gather(self, shards: Sequence[np.ndarray], axis: int = 0) -> List[np.ndarray]:
        """All-gather over the group."""
        self._check_width(shards, "all_gather")
        self._trace("all_gather", shards)
        return collectives.all_gather(
            shards, axis=axis, tracker=self.tracker, group=(self.name, self.ranks)
        )

    def reduce_scatter(self, shards: Sequence[np.ndarray], op: str = "sum") -> List[np.ndarray]:
        """Reduce-scatter over the group."""
        self._check_width(shards, "reduce_scatter")
        self._trace("reduce_scatter", shards, reduce_op=op)
        return collectives.reduce_scatter(
            shards, op=op, tracker=self.tracker, group=(self.name, self.ranks)
        )

    def broadcast(self, value: np.ndarray) -> List[np.ndarray]:
        """Broadcast one array to every member."""
        self._trace("broadcast", [value])
        return collectives.broadcast(
            value, self.size, tracker=self.tracker, group=(self.name, self.ranks)
        )

    def _trace(
        self, op: str, arrays: Sequence[np.ndarray], reduce_op: str = ""
    ) -> None:
        if self.trace is None:
            return
        # record each member's own shape/dtype (argument-mismatch lint
        # needs the per-rank view); older recorders without record_call
        # keep the fan-copied single-sample behavior
        if hasattr(self.trace, "record_call"):
            self.trace.record_call(
                op, self.name, self.ranks, arrays, reduce_op=reduce_op
            )
        else:
            arr = np.asarray(arrays[0])
            self.trace.record(
                op, self.name, self.ranks, int(arr.size), str(arr.dtype)
            )

    def _check_width(self, shards: Sequence[np.ndarray], op: str) -> None:
        if len(shards) != self.size:
            raise ValueError(
                f"{op} on group {self.name!r} expected {self.size} shards, "
                f"got {len(shards)}"
            )
