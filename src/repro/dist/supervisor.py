"""Elastic failure recovery: the supervised kill→reshard→resume loop.

The paper's reconfigurable parallelism is exercised elsewhere in this
repo as an *offline* ``ucp_convert`` call.  This module closes the
loop the introduction motivates: a :class:`Supervisor` drives a
simulated training job toward a step horizon while a
:class:`~repro.storage.faults.KillSchedule` strikes ranks at the
interesting points of the step/save/convert lifecycle.  Each failure
triggers the production recovery sequence:

1. **detect** — the engine's next health check (or the save/convert
   fault itself) surfaces the dead ranks;
2. **replan** — :class:`~repro.core.resume.ElasticResumeManager`
   picks a feasible surviving :class:`ParallelConfig` for the reduced
   capacity, and the interchange pre-flight linter proves the
   source→target conversion well-formed *before any tensor is read*
   (an infeasible requested topology is rejected with UCP
   diagnostics via :class:`TopologyRejectedError`, never a crash);
3. **convert** — the streamed resumable ``ucp_convert`` reshards the
   newest *committed* tag (:func:`~repro.ckpt.loader.latest_committed_tag`
   — never a torn save) into universal atoms, reusing every atom a
   previously interrupted conversion already committed;
4. **resume** — a fresh engine is rebuilt from the checkpoint's job
   config under the new topology and loads the atoms.

Every stage is charged deterministic simulated seconds (fixed costs
for compute/detection/replan, the object stores' NVMe accounting for
IO), so the emitted :class:`RecoveryReport` — stage timings, MTTR,
goodput, bytes reconverted vs reused — is bit-reproducible for a
given schedule and seed.  ``repro supervise`` exposes the loop on the
command line; the chaos matrix in ``tests/test_supervisor_chaos.py``
is its correctness proof.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

# repro.core must initialize before repro.analysis: the analysis
# package's diagnostics module imports repro.core.errors mid-cycle and
# only survives when repro.core started first (the same entry order
# repro/__init__ establishes) — so UCPError is pulled ahead of the
# continuity import here, deliberately out of alphabetical order.
from repro.core.errors import UCPError
from repro.analysis.continuity import (
    PAPER_LOSS_BAND,
    ContinuityReport,
    check_loss_continuity,
)
from repro.ckpt import naming
from repro.ckpt.loader import latest_committed_tag, read_job_config
from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.storage.faults import (
    KillEvent,
    KillSchedule,
    PHASE_SAVE_PRE_COMMIT,
    RankKillAtWrite,
    RankKilled,
)
from repro.storage.store import ObjectStore


class TopologyRejectedError(UCPError):
    """A requested target topology failed the interchange pre-flight.

    Raised during replan, before any tensor is read.  Carries the
    offending target and the linter's :class:`LintReport`, so callers
    see *which* UCP rule (e.g. UCP007 fragment divisibility) rejected
    the topology.
    """

    def __init__(self, target: ParallelConfig, report) -> None:
        rules = ", ".join(
            sorted({d.rule_id for d in report.errors})
        ) or "no diagnostics"
        super().__init__(
            f"target topology {target.describe()} rejected by interchange "
            f"pre-flight ({rules}): "
            + "; ".join(d.message for d in report.errors[:2])
        )
        self.target = target
        self.report = report


@dataclasses.dataclass(frozen=True)
class StageTimings:
    """Simulated seconds spent in each stage of one recovery."""

    detection_s: float
    replan_s: float
    convert_s: float
    resume_s: float

    @property
    def total_s(self) -> float:
        """End-to-end repair time of this recovery."""
        return self.detection_s + self.replan_s + self.convert_s + self.resume_s

    def to_dict(self) -> Dict:
        """JSON-ready dict with rounded floats."""
        return {
            "detection_s": round(self.detection_s, 6),
            "replan_s": round(self.replan_s, 6),
            "convert_s": round(self.convert_s, 6),
            "resume_s": round(self.resume_s, 6),
            "total_s": round(self.total_s, 6),
        }


@dataclasses.dataclass(frozen=True)
class RecoveryEvent:
    """One recovery attempt: a failure and the path back to training.

    ``completed`` is False when the recovery itself was struck by a
    mid-convert kill — the follow-up attempt appears as the next event
    and reuses every atom this one committed.
    """

    index: int
    trigger_phase: str
    trigger_step: int
    killed_ranks: Tuple[int, ...]
    capacity_after: int
    source_config: str
    target_config: str
    resume_tag: str
    resume_step: int
    lost_steps: int
    atoms_reused: int
    bytes_read: int
    bytes_written: int
    timings: StageTimings
    completed: bool
    integrity_ok: bool
    plan_reason: str

    def to_dict(self) -> Dict:
        """JSON-ready dict of this recovery attempt."""
        return {
            "index": self.index,
            "trigger_phase": self.trigger_phase,
            "trigger_step": self.trigger_step,
            "killed_ranks": list(self.killed_ranks),
            "capacity_after": self.capacity_after,
            "source_config": self.source_config,
            "target_config": self.target_config,
            "resume_tag": self.resume_tag,
            "resume_step": self.resume_step,
            "lost_steps": self.lost_steps,
            "atoms_reused": self.atoms_reused,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "timings": self.timings.to_dict(),
            "completed": self.completed,
            "integrity_ok": self.integrity_ok,
            "plan_reason": self.plan_reason,
        }


@dataclasses.dataclass
class RecoveryReport:
    """The supervisor's structured account of one supervised run.

    Attributes:
        model: model name.
        initial_config / final_config: ``describe()`` strings of the
            topology the job started and finished under.
        horizon: the step count the job was asked to reach.
        useful_steps: steps whose results survived to the end (== the
            horizon when the run finished).
        wall_steps: train steps actually executed, including work a
            rollback discarded — the goodput denominator.
        goodput: ``useful_steps / wall_steps`` (1.0 = no lost work).
        interruptions: kill events that fired.
        mttr_s: mean simulated repair time over completed recoveries.
        committed_tags: every tag that ever committed, in commit order.
        lost_committed_tags: committed tags whose manifest is gone or
            broken at the end of the run — must always be empty.
        events: per-recovery detail.
        losses: the final per-step loss curve (replays overwrite).
        continuity: loss-continuity check against a golden curve, when
            one was supplied.
        sim_time_s: total simulated wall-clock of the run.
    """

    model: str
    initial_config: str
    final_config: str
    horizon: int
    useful_steps: int
    wall_steps: int
    goodput: float
    interruptions: int
    mttr_s: float
    committed_tags: List[str]
    lost_committed_tags: List[str]
    events: List[RecoveryEvent]
    losses: List[float]
    continuity: Optional[ContinuityReport]
    sim_time_s: float

    def to_dict(self) -> Dict:
        """JSON-ready dict of the whole run (rounded floats)."""
        return {
            "model": self.model,
            "initial_config": self.initial_config,
            "final_config": self.final_config,
            "horizon": self.horizon,
            "useful_steps": self.useful_steps,
            "wall_steps": self.wall_steps,
            "goodput": round(self.goodput, 6),
            "interruptions": self.interruptions,
            "recoveries": len([e for e in self.events if e.completed]),
            "mttr_s": round(self.mttr_s, 6),
            "committed_tags": list(self.committed_tags),
            "lost_committed_tags": list(self.lost_committed_tags),
            "events": [e.to_dict() for e in self.events],
            "losses": [round(x, 6) for x in self.losses],
            "continuity": (
                self.continuity.to_dict() if self.continuity else None
            ),
            "sim_time_s": round(self.sim_time_s, 6),
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, rounded floats — byte-stable
        across runs of the same schedule and seed."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        """Human-readable multi-line summary of the run."""
        lines = [
            f"supervised run: {self.model} @ {self.initial_config} "
            f"-> {self.final_config}",
            f"  steps: {self.useful_steps}/{self.horizon} useful, "
            f"{self.wall_steps} executed (goodput {self.goodput:.3f})",
            f"  interruptions: {self.interruptions}, "
            f"mttr {self.mttr_s:.4f}s, sim time {self.sim_time_s:.4f}s",
            f"  committed tags: {', '.join(self.committed_tags) or '-'}",
        ]
        if self.lost_committed_tags:
            lines.append(
                f"  LOST committed tags: {', '.join(self.lost_committed_tags)}"
            )
        for e in self.events:
            status = "ok" if e.completed else "interrupted"
            lines.append(
                f"  recovery {e.index}: {e.trigger_phase}@step"
                f"{e.trigger_step} killed {list(e.killed_ranks)} -> "
                f"{e.target_config} from {e.resume_tag} "
                f"(lost {e.lost_steps} steps, reused {e.atoms_reused} "
                f"atoms, {e.timings.total_s:.4f}s, {status})"
            )
        if self.continuity is not None:
            c = self.continuity
            lines.append(
                f"  continuity: max |Δloss| {c.max_delta:.6f} over "
                f"{c.num_steps} steps (band {c.tolerance}) -> "
                f"{'ok' if c.ok else 'VIOLATED'}"
            )
        return "\n".join(lines)


class Supervisor:
    """Drives one simulated job to a horizon across injected failures.

    Args:
        model_cfg: the model to train.
        parallel_cfg: the initial topology (defines initial capacity).
        workdir: directory for the job's checkpoints and conversions.
        horizon: target step count.
        save_every: checkpoint cadence in steps (saves fire when the
            iteration count is a positive multiple).
        schedule: the kill schedule; empty means an uninterrupted
            (golden) run.
        target_overrides: optional queue of topologies to force, one
            per recovery, instead of the planner's choice — still
            validated by the pre-flight linter.
        seed / data_seed / global_batch_size / seq_len / micro_batches:
            forwarded to :class:`~repro.parallel.engine.TrainingEngine`.
        step_time_s / detection_time_s / replan_time_s: fixed simulated
            costs; convert/resume stages are charged from the object
            stores' NVMe accounting instead.
        tolerance: loss-continuity band used when a golden curve is
            supplied to :meth:`run`.
    """

    def __init__(
        self,
        model_cfg: ModelConfig,
        parallel_cfg: ParallelConfig,
        workdir: str,
        horizon: int = 16,
        save_every: int = 4,
        schedule: Optional[KillSchedule] = None,
        target_overrides: Optional[Sequence[ParallelConfig]] = None,
        seed: int = 7,
        data_seed: int = 1234,
        global_batch_size: int = 8,
        seq_len: int = 16,
        micro_batches: int = 1,
        step_time_s: float = 0.05,
        detection_time_s: float = 0.01,
        replan_time_s: float = 0.002,
        tolerance: float = PAPER_LOSS_BAND,
    ) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if save_every < 1:
            raise ValueError("save_every must be >= 1")
        self.model_cfg = model_cfg
        self.parallel_cfg = parallel_cfg
        self.workdir = workdir
        self.horizon = horizon
        self.save_every = save_every
        self.schedule = schedule if schedule is not None else KillSchedule()
        self._overrides: List[ParallelConfig] = list(target_overrides or [])
        self.seed = seed
        self.data_seed = data_seed
        self.global_batch_size = global_batch_size
        self.seq_len = seq_len
        self.micro_batches = micro_batches
        self.step_time_s = step_time_s
        self.detection_time_s = detection_time_s
        self.replan_time_s = replan_time_s
        self.tolerance = tolerance

        self.capacity = parallel_cfg.world_size
        self.committed_tags: List[str] = []
        self.loss_by_step: Dict[int, float] = {}
        self.events: List[RecoveryEvent] = []
        self.wall_steps = 0
        self.sim_time_s = 0.0
        self.interruptions = 0

    # --- engine construction -------------------------------------------------

    def _initial_engine(self):
        from repro.parallel.engine import TrainingEngine

        return TrainingEngine(
            self.model_cfg,
            self.parallel_cfg,
            seed=self.seed,
            data_seed=self.data_seed,
            global_batch_size=self.global_batch_size,
            seq_len=self.seq_len,
            micro_batches=self.micro_batches,
        )

    def _map_ranks(self, engine, ranks: Sequence[int]) -> List[int]:
        """Clamp scheduled ranks into the engine's current world.

        Kill schedules are written against the *initial* topology; after
        a reshard the world is smaller, so a scheduled rank is folded
        onto the surviving world (rank mod world size) — the chaos
        equivalent of "some currently-running rank dies".
        """
        world = engine.cluster.world_size
        return sorted({r % world for r in ranks})

    def _kill_engine_ranks(self, engine, ranks: Sequence[int]) -> List[int]:
        """Mark ranks dead on the cluster; returns the newly dead."""
        fresh = []
        for rank in self._map_ranks(engine, ranks):
            if rank not in engine.cluster.failed_ranks:
                engine.cluster.fail_rank(rank)
                fresh.append(rank)
        self.capacity = max(1, self.capacity - len(fresh))
        return fresh

    # --- save path -----------------------------------------------------------

    def _save(self, engine, kill: Optional[KillEvent]) -> None:
        """Checkpoint the engine, optionally dying at a commit boundary.

        A ``save_pre_commit`` kill strikes the manifest write — the tag
        never commits; a ``save_post_commit`` kill strikes the
        ``latest`` pointer write — the tag *is* committed even though
        the pointer still names its predecessor.
        """
        from repro.ckpt.saver import save_distributed_checkpoint

        faults = None
        if kill is not None:
            match = (
                naming.MANIFEST_FILE
                if kill.phase == PHASE_SAVE_PRE_COMMIT
                else naming.LATEST_FILE
            )
            faults = RankKillAtWrite(
                ranks=kill.ranks,
                match=match,
                torn=kill.torn,
                on_kill=lambda ranks: self._kill_engine_ranks(engine, ranks),
            )
        store = ObjectStore(self.workdir, faults=faults)
        tag = naming.tag_for_step(engine.iteration)
        try:
            info = save_distributed_checkpoint(engine, self.workdir, store=store)
            self.committed_tags.append(info.tag)
        except RankKilled:
            self.interruptions += 1
            # manifest write happens before `latest`: a post-commit
            # kill leaves the tag durably committed despite the death
            if kill is not None and kill.phase != PHASE_SAVE_PRE_COMMIT:
                self.committed_tags.append(tag)
            raise
        finally:
            self.sim_time_s += store.simulated_write_s

    # --- replan --------------------------------------------------------------

    def _plan_target(
        self, source_cfg: ParallelConfig
    ) -> Tuple[ParallelConfig, str]:
        """Choose (and pre-flight validate) the surviving topology."""
        from repro.analysis.interchange import lint_plan
        from repro.core.resume import ElasticResumeManager

        if self._overrides:
            target = self._overrides.pop(0)
            reason = f"operator override -> {target.describe()}"
        else:
            manager = ElasticResumeManager(
                self.workdir,
                global_batch_size=self.global_batch_size,
                micro_batches=self.micro_batches,
                seq_len=self.seq_len,
            )
            plan = manager.plan_resize(source_cfg, self.capacity)
            target, reason = plan.target, plan.reason
        report = lint_plan(self.model_cfg, source_cfg, target)
        if not report.ok:
            raise TopologyRejectedError(target, report)
        return target, reason

    # --- recovery ------------------------------------------------------------

    def _recover(self, engine, trigger_phase: str, trigger_step: int):
        """Run detect→replan→convert→resume until an attempt survives.

        A mid-convert kill aborts the attempt (recorded as an
        incomplete :class:`RecoveryEvent`) and loops back to replan
        with the further-reduced capacity; the next attempt's
        conversion reuses every atom the dead one committed.  A
        failure before any tag ever committed cold-restarts the job
        from step 0 under the replanned topology — there is no
        checkpoint to lose, so nothing is converted or loaded.
        """
        from repro.ckpt.errors import CheckpointNotFoundError
        from repro.core.convert import ucp_convert
        from repro.core.inspect import verify_directory
        from repro.core.loader import load_ucp_into_engine
        from repro.core.resume import _engine_from_job_config

        killed = tuple(sorted(engine.cluster.failed_ranks))
        while True:
            detection_s = self.detection_time_s
            replan_s = self.replan_time_s

            try:
                tag = latest_committed_tag(self.workdir)
            except CheckpointNotFoundError:
                return self._cold_restart(
                    engine, trigger_phase, trigger_step, killed,
                    detection_s, replan_s,
                )
            job_config = read_job_config(self.workdir, tag)
            source_cfg = ParallelConfig.from_dict(job_config["parallel_config"])
            target, reason = self._plan_target(source_cfg)

            ucp_dir = f"{self.workdir}/ucp_{tag}"
            kill = self.schedule.take_convert_kill(trigger_step)
            faults = None
            if kill is not None:
                faults = RankKillAtWrite(
                    ranks=kill.ranks, at=kill.at_write, torn=kill.torn
                )
            dst_store = ObjectStore(ucp_dir, faults=faults)
            resume_step = int(job_config["iteration"])
            lost = max(0, engine.iteration - resume_step)
            try:
                conv = ucp_convert(
                    self.workdir, ucp_dir, tag=tag, dst_store=dst_store
                )
            except RankKilled as exc:
                self.interruptions += 1
                self.capacity = max(1, self.capacity - len(exc.ranks))
                convert_s = (
                    dst_store.simulated_write_s + dst_store.simulated_read_s
                )
                self.sim_time_s += detection_s + replan_s + convert_s
                self.events.append(
                    RecoveryEvent(
                        index=len(self.events),
                        trigger_phase=trigger_phase,
                        trigger_step=trigger_step,
                        killed_ranks=killed,
                        capacity_after=self.capacity,
                        source_config=source_cfg.describe(),
                        target_config=target.describe(),
                        resume_tag=tag,
                        resume_step=resume_step,
                        lost_steps=lost,
                        atoms_reused=0,
                        bytes_read=dst_store.bytes_read,
                        bytes_written=dst_store.bytes_written,
                        timings=StageTimings(
                            detection_s, replan_s, convert_s, 0.0
                        ),
                        completed=False,
                        integrity_ok=True,
                        plan_reason=reason,
                    )
                )
                killed = exc.ranks
                trigger_phase = "convert"
                continue

            convert_s = conv.simulated_read_s + conv.simulated_write_s
            fresh = _engine_from_job_config(
                job_config, target, micro_batches=self.micro_batches
            )
            load_store = ObjectStore(ucp_dir)
            load_ucp_into_engine(fresh, ucp_dir, store=load_store)
            resume_s = load_store.simulated_read_s
            self.sim_time_s += detection_s + replan_s + convert_s + resume_s
            integrity_ok = verify_directory(self.workdir).ok
            self.events.append(
                RecoveryEvent(
                    index=len(self.events),
                    trigger_phase=trigger_phase,
                    trigger_step=trigger_step,
                    killed_ranks=killed,
                    capacity_after=self.capacity,
                    source_config=source_cfg.describe(),
                    target_config=target.describe(),
                    resume_tag=tag,
                    resume_step=resume_step,
                    lost_steps=lost,
                    atoms_reused=conv.num_reused,
                    bytes_read=conv.bytes_read,
                    bytes_written=conv.bytes_written,
                    timings=StageTimings(
                        detection_s, replan_s, convert_s, resume_s
                    ),
                    completed=True,
                    integrity_ok=integrity_ok,
                    plan_reason=reason,
                )
            )
            return fresh

    def _cold_restart(
        self,
        engine,
        trigger_phase: str,
        trigger_step: int,
        killed: Tuple[int, ...],
        detection_s: float,
        replan_s: float,
    ):
        """Restart from step 0: a failure struck before the first
        commit, so there is no checkpoint to resume — the job rebuilds
        under the replanned topology with its original seeds."""
        from repro.core.inspect import verify_directory
        from repro.parallel.engine import TrainingEngine

        source_cfg = engine.parallel_cfg
        target, reason = self._plan_target(source_cfg)
        fresh = TrainingEngine(
            self.model_cfg,
            target,
            seed=self.seed,
            data_seed=self.data_seed,
            global_batch_size=self.global_batch_size,
            seq_len=self.seq_len,
            micro_batches=self.micro_batches,
        )
        self.sim_time_s += detection_s + replan_s
        self.events.append(
            RecoveryEvent(
                index=len(self.events),
                trigger_phase=trigger_phase,
                trigger_step=trigger_step,
                killed_ranks=killed,
                capacity_after=self.capacity,
                source_config=source_cfg.describe(),
                target_config=target.describe(),
                resume_tag="",
                resume_step=0,
                lost_steps=engine.iteration,
                atoms_reused=0,
                bytes_read=0,
                bytes_written=0,
                timings=StageTimings(detection_s, replan_s, 0.0, 0.0),
                completed=True,
                integrity_ok=(
                    verify_directory(self.workdir).ok
                    if self.committed_tags
                    else True
                ),
                plan_reason=f"cold restart (no committed tag): {reason}",
            )
        )
        return fresh

    # --- main loop -----------------------------------------------------------

    def run(self, golden: Optional[Sequence[float]] = None) -> RecoveryReport:
        """Drive the job to the horizon; returns the structured report.

        Args:
            golden: per-step losses of an uninterrupted run of the
                same job, to fold a loss-continuity verdict into the
                report.

        Raises:
            TopologyRejectedError: a forced target failed pre-flight.
            UCPError: no feasible topology exists for the survivors.
        """
        from repro.dist.cluster import RankFailure

        engine = self._initial_engine()
        while engine.iteration < self.horizon:
            step = engine.iteration
            step_kills = self.schedule.take_step_kills(step)
            if step_kills:
                self.interruptions += len(step_kills)
                for event in step_kills:
                    self._kill_engine_ranks(engine, event.ranks)
            try:
                result = engine.train_step()
            except RankFailure:
                engine = self._recover(engine, "step", step)
                continue
            self.wall_steps += 1
            self.sim_time_s += self.step_time_s
            self.loss_by_step[result.step] = result.loss
            if engine.iteration % self.save_every == 0:
                kill = self.schedule.take_save_kill(engine.iteration)
                try:
                    self._save(engine, kill)
                except RankKilled:
                    phase = kill.phase if kill is not None else "save"
                    engine = self._recover(engine, phase, engine.iteration)

        if engine.iteration % self.save_every != 0:
            self._save(engine, None)
        self.final_config = engine.parallel_cfg.describe()

        losses = [self.loss_by_step[s] for s in sorted(self.loss_by_step)]
        continuity = None
        if golden is not None:
            continuity = check_loss_continuity(
                golden, losses, tolerance=self.tolerance
            )
        completed = [e for e in self.events if e.completed]
        mttr = (
            sum(e.timings.total_s for e in completed) / len(completed)
            if completed
            else 0.0
        )
        return RecoveryReport(
            model=self.model_cfg.name,
            initial_config=self.parallel_cfg.describe(),
            final_config=self.final_config,
            horizon=self.horizon,
            useful_steps=engine.iteration,
            wall_steps=self.wall_steps,
            goodput=(
                engine.iteration / self.wall_steps if self.wall_steps else 0.0
            ),
            interruptions=self.interruptions,
            mttr_s=mttr,
            committed_tags=list(self.committed_tags),
            lost_committed_tags=self._lost_committed_tags(),
            events=list(self.events),
            losses=losses,
            continuity=continuity,
            sim_time_s=self.sim_time_s,
        )

    def _lost_committed_tags(self) -> List[str]:
        """Committed tags whose manifest is no longer intact on disk."""
        from repro.ckpt import manifest as manifest_mod

        store = ObjectStore(self.workdir)
        lost = []
        for tag in self.committed_tags:
            if manifest_mod.read_manifest(store, tag) is None:
                lost.append(tag)
        return lost


def supervise(
    model_cfg: ModelConfig,
    parallel_cfg: ParallelConfig,
    workdir: str,
    golden: bool = True,
    **kwargs,
) -> RecoveryReport:
    """One-call convenience: run a supervised job, optionally preceded
    by an uninterrupted golden run (in ``<workdir>/golden``) whose loss
    curve feeds the report's continuity verdict."""
    golden_curve = None
    if golden:
        golden_sup = Supervisor(
            model_cfg,
            parallel_cfg,
            f"{workdir}/golden",
            **{**kwargs, "schedule": KillSchedule(), "target_overrides": None},
        )
        golden_curve = golden_sup.run().losses
    sup = Supervisor(model_cfg, parallel_cfg, f"{workdir}/run", **kwargs)
    return sup.run(golden=golden_curve)
