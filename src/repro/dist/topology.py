"""Rank topology: mapping global ranks onto the (TP, PP, DP, SP) grid.

Follows the Megatron-LM/DeepSpeed convention of rank-order nesting:
tensor-parallel ranks are innermost (adjacent global ranks share a TP
group), then sequence-parallel, then pipeline, then data-parallel
outermost.  Checkpoint file naming and UCP metadata both key off these
coordinates.
"""

from __future__ import annotations

import dataclasses
import itertools
import re
from typing import Dict, Iterator, List, Tuple

AxisName = str

_AXES: Tuple[AxisName, ...] = ("dp", "pp", "sp", "tp")
"""Axis nesting order, outermost first."""


@dataclasses.dataclass(frozen=True)
class ParallelConfig:
    """A parallelism strategy: degrees along each axis plus the ZeRO stage.

    ``tp * pp * dp * sp`` is the world size (GPU count).  ``zero_stage``
    in {0, 1, 2, 3} selects how optimizer state (and, for stage 3, the
    parameters themselves) shard across the DP axis.

    ``expert_parallel`` switches MoE expert tensors from tensor-slicing
    (every rank holds a slice of every expert) to expert parallelism
    (each TP-group rank holds whole experts, split along the expert
    axis) — the DeepSpeed-MoE layout, and this reproduction's example
    of the paper's "easily add new patterns" extensibility claim.
    """

    tp: int = 1
    pp: int = 1
    dp: int = 1
    sp: int = 1
    zero_stage: int = 1
    expert_parallel: bool = False

    def __post_init__(self) -> None:
        for axis in ("tp", "pp", "dp", "sp"):
            degree = getattr(self, axis)
            if degree < 1:
                raise ValueError(f"{axis} degree must be >= 1, got {degree}")
        if self.zero_stage not in (0, 1, 2, 3):
            raise ValueError(f"zero_stage must be in 0..3, got {self.zero_stage}")
        if self.zero_stage == 3 and (self.tp > 1 or self.pp > 1):
            raise ValueError(
                "ZeRO-3 fully shards parameters across DP and does not "
                "compose with TP/PP in this reproduction (matching the "
                "paper's evaluated configurations)"
            )

    @property
    def world_size(self) -> int:
        """Total number of ranks (simulated GPUs)."""
        return self.tp * self.pp * self.dp * self.sp

    def degree(self, axis: AxisName) -> int:
        """Parallel degree along one axis."""
        if axis not in _AXES:
            raise KeyError(f"unknown axis {axis!r}; expected one of {_AXES}")
        return int(getattr(self, axis))

    def describe(self) -> str:
        """Short human-readable tag, e.g. ``tp2.pp2.dp2.sp1.zero1``
        (suffixed ``.ep`` under expert parallelism)."""
        base = (
            f"tp{self.tp}.pp{self.pp}.dp{self.dp}.sp{self.sp}"
            f".zero{self.zero_stage}"
        )
        return f"{base}.ep" if self.expert_parallel else base

    def to_dict(self) -> Dict[str, int]:
        """JSON-friendly representation."""
        return {
            "tp": self.tp,
            "pp": self.pp,
            "dp": self.dp,
            "sp": self.sp,
            "zero_stage": self.zero_stage,
            "expert_parallel": self.expert_parallel,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, int]) -> "ParallelConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(
            tp=int(payload["tp"]),
            pp=int(payload["pp"]),
            dp=int(payload["dp"]),
            sp=int(payload.get("sp", 1)),
            zero_stage=int(payload.get("zero_stage", 1)),
            expert_parallel=bool(payload.get("expert_parallel", False)),
        )

    @classmethod
    def from_describe(cls, text: str) -> "ParallelConfig":
        """Inverse of :meth:`describe`, e.g. ``"tp2.pp1.dp4.sp1.zero1"``.

        Axes may appear in any order and be omitted (defaults apply);
        a trailing ``.ep`` turns on expert parallelism.  This is the
        compact strategy syntax CLI verbs accept for a *target* that
        has no checkpoint directory to read a config from.
        """
        kwargs: Dict[str, object] = {}
        fields = {"tp": "tp", "pp": "pp", "dp": "dp", "sp": "sp",
                  "zero": "zero_stage"}
        for part in text.strip().split("."):
            if not part:
                raise ValueError(f"malformed parallel description {text!r}")
            if part == "ep":
                kwargs["expert_parallel"] = True
                continue
            match = re.fullmatch(r"([a-z]+)(\d+)", part)
            if match is None or match.group(1) not in fields:
                raise ValueError(
                    f"malformed axis {part!r} in parallel description "
                    f"{text!r}; expected e.g. 'tp2.pp1.dp4.sp1.zero1[.ep]'"
                )
            field = fields[match.group(1)]
            if field in kwargs:
                raise ValueError(
                    f"axis {match.group(1)!r} given twice in {text!r}"
                )
            kwargs[field] = int(match.group(2))
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True)
class RankCoord:
    """A rank's coordinates on the parallelism grid."""

    tp: int
    pp: int
    dp: int
    sp: int

    def axis(self, name: AxisName) -> int:
        """Coordinate along one axis."""
        if name not in _AXES:
            raise KeyError(f"unknown axis {name!r}")
        return int(getattr(self, name))


class Topology:
    """Bidirectional map between global ranks and grid coordinates."""

    def __init__(self, config: ParallelConfig) -> None:
        self.config = config
        self._coord_of: List[RankCoord] = []
        self._rank_of: Dict[RankCoord, int] = {}
        axes_degrees = [config.degree(a) for a in _AXES]
        for rank, idx in enumerate(itertools.product(*(range(d) for d in axes_degrees))):
            coord_kwargs = dict(zip(_AXES, idx))
            coord = RankCoord(**coord_kwargs)
            self._coord_of.append(coord)
            self._rank_of[coord] = rank

    @property
    def world_size(self) -> int:
        """Number of ranks."""
        return self.config.world_size

    def ranks(self) -> Iterator[int]:
        """All global ranks in order."""
        return iter(range(self.world_size))

    def coord(self, rank: int) -> RankCoord:
        """Grid coordinates of a global rank."""
        if not 0 <= rank < self.world_size:
            raise IndexError(f"rank {rank} out of range for world {self.world_size}")
        return self._coord_of[rank]

    def rank(self, coord: RankCoord) -> int:
        """Global rank of grid coordinates."""
        try:
            return self._rank_of[coord]
        except KeyError:
            raise IndexError(f"coordinate {coord} not on grid {self.config.describe()}") from None

    def group_ranks(self, axis: AxisName, rank: int) -> List[int]:
        """Global ranks of the ``axis`` group containing ``rank``.

        E.g. ``group_ranks("tp", r)`` is r's tensor-parallel group, in
        increasing coordinate order along that axis.
        """
        base = self.coord(rank)
        members = []
        for i in range(self.config.degree(axis)):
            coord = dataclasses.replace(base, **{axis: i})
            members.append(self.rank(coord))
        return members

    def groups(self, axis: AxisName) -> List[List[int]]:
        """All distinct groups along one axis."""
        seen = set()
        out: List[List[int]] = []
        for rank in self.ranks():
            group = tuple(self.group_ranks(axis, rank))
            if group not in seen:
                seen.add(group)
                out.append(list(group))
        return out

    def model_parallel_rank(self, rank: int) -> int:
        """Combined (tp, pp, sp) index, ignoring the DP coordinate.

        Ranks sharing a model-parallel rank hold identical model shards
        (they are DP replicas of each other); distributed checkpoints are
        keyed by this index (DeepSpeed's ``mp_rank_XX`` files).
        """
        coord = self.coord(rank)
        cfg = self.config
        return (coord.pp * cfg.sp + coord.sp) * cfg.tp + coord.tp

    def model_parallel_size(self) -> int:
        """Number of distinct model-parallel ranks."""
        return self.config.tp * self.config.pp * self.config.sp
