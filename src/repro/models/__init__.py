"""Model zoo: the four architectures from the paper's evaluation.

Each family builds a :class:`repro.nn.TransformerLM`; the paper-scale
configurations from Table 4 are registered alongside scaled-down "mini"
configurations used by tests and benchmarks.
"""

from repro.models.configs import ModelConfig
from repro.models.registry import (
    MODEL_REGISTRY,
    available_models,
    build_model,
    get_config,
    register_model,
)

__all__ = [
    "ModelConfig",
    "MODEL_REGISTRY",
    "available_models",
    "build_model",
    "get_config",
    "register_model",
]
