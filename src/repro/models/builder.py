"""Construct a :class:`TransformerLM` from a :class:`ModelConfig`.

All weights are initialized by (seed, dotted-parameter-name), so two
builds with the same seed produce identical tensors regardless of the
parallelism strategy they will later be sharded under — the property
the paper's multiple-Source experiment (Fig 7) relies on.
"""

from __future__ import annotations

import numpy as np

from repro.models.configs import ModelConfig
from repro.nn.attention import CausalSelfAttention
from repro.nn.block import TransformerBlock
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding, LearnedPositionalEmbedding, padded_vocab_size
from repro.nn.init import normal_init, zeros_init
from repro.nn.mlp import MLP, SwiGLUMLP
from repro.nn.moe import MoELayer
from repro.nn.norm import LayerNorm, RMSNorm
from repro.nn.transformer import TransformerLM


def _make_norm(cfg: ModelConfig):
    if cfg.norm == "layernorm":
        return LayerNorm(cfg.hidden)
    if cfg.norm == "rmsnorm":
        return RMSNorm(cfg.hidden)
    raise ValueError(f"unknown norm {cfg.norm!r}")


def _make_attention(cfg: ModelConfig, seed: int, layer: int) -> CausalSelfAttention:
    prefix = f"blocks.{layer}.attn"
    qkv_out = (cfg.num_heads + 2 * cfg.num_kv_heads) * cfg.head_dim
    use_bias = cfg.family in ("gpt3", "bloom")
    return CausalSelfAttention(
        hidden=cfg.hidden,
        num_heads=cfg.num_heads,
        num_kv_heads=cfg.num_kv_heads,
        qkv_weight=normal_init(seed, f"{prefix}.qkv.weight", (qkv_out, cfg.hidden)),
        out_weight=normal_init(
            seed,
            f"{prefix}.out.weight",
            (cfg.hidden, cfg.num_heads * cfg.head_dim),
            std=0.02 / np.sqrt(2.0 * cfg.num_layers),
        ),
        use_rope=cfg.positional == "rope",
        use_alibi=cfg.positional == "alibi",
        qkv_bias=zeros_init((qkv_out,)) if use_bias else None,
        out_bias=zeros_init((cfg.hidden,)) if use_bias else None,
    )


def _make_ffn(cfg: ModelConfig, seed: int, layer: int):
    prefix = f"blocks.{layer}.ffn"
    residual_std = 0.02 / np.sqrt(2.0 * cfg.num_layers)
    if cfg.is_moe:
        e, i, h = cfg.num_experts, cfg.intermediate, cfg.hidden
        return MoELayer(
            hidden=h,
            intermediate=i,
            num_experts=e,
            top_k=cfg.top_k,
            router_weight=normal_init(seed, f"{prefix}.router.proj.weight", (e, h)),
            gate_weight=normal_init(seed, f"{prefix}.gate_weight", (e, i, h)),
            up_weight=normal_init(seed, f"{prefix}.up_weight", (e, i, h)),
            down_weight=normal_init(
                seed, f"{prefix}.down_weight", (e, h, i), std=residual_std
            ),
        )
    if cfg.activation == "swiglu":
        return SwiGLUMLP(
            hidden=cfg.hidden,
            intermediate=cfg.intermediate,
            gate_weight=normal_init(seed, f"{prefix}.gate.weight", (cfg.intermediate, cfg.hidden)),
            up_weight=normal_init(seed, f"{prefix}.up.weight", (cfg.intermediate, cfg.hidden)),
            down_weight=normal_init(
                seed, f"{prefix}.down.weight", (cfg.hidden, cfg.intermediate), std=residual_std
            ),
        )
    use_bias = cfg.family in ("gpt3", "bloom")
    return MLP(
        hidden=cfg.hidden,
        intermediate=cfg.intermediate,
        up_weight=normal_init(seed, f"{prefix}.up.weight", (cfg.intermediate, cfg.hidden)),
        down_weight=normal_init(
            seed, f"{prefix}.down.weight", (cfg.hidden, cfg.intermediate), std=residual_std
        ),
        up_bias=zeros_init((cfg.intermediate,)) if use_bias else None,
        down_bias=zeros_init((cfg.hidden,)) if use_bias else None,
    )


def build_transformer(cfg: ModelConfig, seed: int = 0) -> TransformerLM:
    """Build a fully initialized model for one config."""
    padded = padded_vocab_size(cfg.vocab_size, cfg.vocab_pad_to)
    embedding = Embedding(
        cfg.vocab_size,
        cfg.hidden,
        normal_init(seed, "embedding.weight", (padded, cfg.hidden)),
    )
    pos = None
    if cfg.positional == "learned":
        pos = LearnedPositionalEmbedding(
            cfg.max_seq,
            cfg.hidden,
            normal_init(seed, "pos_embedding.weight", (cfg.max_seq, cfg.hidden)),
        )
    def _make_block(layer: int) -> TransformerBlock:
        attn_drop = ffn_drop = None
        if cfg.dropout > 0.0:
            attn_drop = Dropout(cfg.dropout, name=f"blocks.{layer}.attn")
            ffn_drop = Dropout(cfg.dropout, name=f"blocks.{layer}.ffn")
        return TransformerBlock(
            norm1=_make_norm(cfg),
            attn=_make_attention(cfg, seed, layer),
            norm2=_make_norm(cfg),
            ffn=_make_ffn(cfg, seed, layer),
            attn_dropout=attn_drop,
            ffn_dropout=ffn_drop,
        )

    blocks = [_make_block(layer) for layer in range(cfg.num_layers)]
    head = None
    if not cfg.tied_head:
        head = normal_init(seed, "lm_head", (padded, cfg.hidden))
    return TransformerLM(
        embedding=embedding,
        blocks=blocks,
        final_norm=_make_norm(cfg),
        pos_embedding=pos,
        lm_head_weight=head,
    )
