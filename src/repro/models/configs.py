"""Model configuration dataclass."""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass(frozen=True)
class ModelConfig:
    """Architecture hyperparameters for one model.

    Attributes:
        name: registry key.
        family: "gpt3" | "llama" | "bloom" | "moe".
        num_layers / hidden / num_heads: transformer dimensions.
        num_kv_heads: key/value heads (< num_heads enables GQA).
        intermediate: FFN inner width.
        vocab_size: logical vocabulary.
        vocab_pad_to: pad the embedding table height to a multiple of
            this (Megatron's make-divisible-by-TP convention); 1 disables.
        max_seq: maximum sequence length (learned-positional families).
        num_experts / top_k: MoE settings (num_experts == 1 means dense).
        tied_head: share embedding and LM head weights.
        norm: "layernorm" | "rmsnorm".
        positional: "learned" | "rope" | "alibi".
        activation: "gelu" | "swiglu".
        dropout: residual dropout rate (0 disables; masks are keyed by
            (seed, step, layer) so resumes stay exact).
    """

    name: str
    family: str
    num_layers: int
    hidden: int
    num_heads: int
    num_kv_heads: int
    intermediate: int
    vocab_size: int
    vocab_pad_to: int
    max_seq: int
    num_experts: int = 1
    top_k: int = 1
    tied_head: bool = True
    norm: str = "layernorm"
    positional: str = "learned"
    activation: str = "gelu"
    dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.hidden % self.num_heads != 0:
            raise ValueError(
                f"hidden {self.hidden} not divisible by heads {self.num_heads}"
            )
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError(
                f"heads {self.num_heads} not divisible by kv heads "
                f"{self.num_kv_heads}"
            )
        if self.family == "moe" and self.num_experts < 2:
            raise ValueError("moe family requires num_experts >= 2")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden // self.num_heads

    @property
    def is_moe(self) -> bool:
        """Whether FFN layers are mixture-of-experts."""
        return self.num_experts > 1

    @property
    def uses_gqa(self) -> bool:
        """Whether attention uses grouped-query heads."""
        return self.num_kv_heads != self.num_heads

    def to_dict(self) -> Dict:
        """JSON-friendly representation."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "ModelConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)
