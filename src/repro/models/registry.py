"""Named model configurations: Table 4 scales plus mini test scales."""

from __future__ import annotations

from typing import Dict, List

from repro.models.builder import build_transformer
from repro.models.configs import ModelConfig
from repro.nn.transformer import TransformerLM

MODEL_REGISTRY: Dict[str, ModelConfig] = {}


def register_model(config: ModelConfig) -> ModelConfig:
    """Add a config to the registry (name must be unique)."""
    if config.name in MODEL_REGISTRY:
        raise ValueError(f"model {config.name!r} already registered")
    MODEL_REGISTRY[config.name] = config
    return config


def get_config(name: str) -> ModelConfig:
    """Look up a registered config by name."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None


def available_models() -> List[str]:
    """Sorted registry keys."""
    return sorted(MODEL_REGISTRY)


def build_model(name: str, seed: int = 0) -> TransformerLM:
    """Build a registered model with deterministic initialization."""
    return build_transformer(get_config(name), seed=seed)


# --- Paper Table 4 configurations (full scale, for reference/analysis) ---

register_model(ModelConfig(
    name="gpt3-350m", family="gpt3", num_layers=24, hidden=1024,
    num_heads=16, num_kv_heads=16, intermediate=4096, vocab_size=50257,
    vocab_pad_to=128, max_seq=2048,
    norm="layernorm", positional="learned", activation="gelu",
))
register_model(ModelConfig(
    name="llama-7b", family="llama", num_layers=32, hidden=4096,
    num_heads=32, num_kv_heads=32, intermediate=11008, vocab_size=32000,
    vocab_pad_to=128, max_seq=2048, tied_head=False,
    norm="rmsnorm", positional="rope", activation="swiglu",
))
register_model(ModelConfig(
    name="bloom-176b", family="bloom", num_layers=70, hidden=14336,
    num_heads=112, num_kv_heads=112, intermediate=57344, vocab_size=250880,
    vocab_pad_to=128, max_seq=2048,
    norm="layernorm", positional="alibi", activation="gelu",
))
register_model(ModelConfig(
    name="mixtral-moe-42b", family="moe", num_layers=32, hidden=4096,
    num_heads=32, num_kv_heads=8, intermediate=14336, vocab_size=32000,
    vocab_pad_to=128, max_seq=2048, num_experts=8, top_k=2, tied_head=False,
    norm="rmsnorm", positional="rope", activation="swiglu",
))

# --- Mini configurations: same structure, laptop scale ---
# Layer counts are multiples of 4 so PP in {1, 2, 4} divides evenly;
# heads are multiples of 4 so TP in {1, 2, 4} divides evenly.

register_model(ModelConfig(
    name="gpt3-mini", family="gpt3", num_layers=4, hidden=64,
    num_heads=4, num_kv_heads=4, intermediate=256, vocab_size=211,
    vocab_pad_to=16, max_seq=64,
    norm="layernorm", positional="learned", activation="gelu",
))
register_model(ModelConfig(
    name="llama-mini", family="llama", num_layers=4, hidden=64,
    num_heads=4, num_kv_heads=2, intermediate=176, vocab_size=211,
    vocab_pad_to=16, max_seq=64, tied_head=False,
    norm="rmsnorm", positional="rope", activation="swiglu",
))
register_model(ModelConfig(
    name="bloom-mini", family="bloom", num_layers=8, hidden=64,
    num_heads=4, num_kv_heads=4, intermediate=256, vocab_size=211,
    vocab_pad_to=16, max_seq=64,
    norm="layernorm", positional="alibi", activation="gelu",
))
register_model(ModelConfig(
    name="moe-mini", family="moe", num_layers=4, hidden=64,
    num_heads=4, num_kv_heads=2, intermediate=128, vocab_size=211,
    vocab_pad_to=16, max_seq=64, num_experts=4, top_k=2, tied_head=False,
    norm="rmsnorm", positional="rope", activation="swiglu",
))

# Medium configurations for the cost benchmarks (Fig 11 / Fig 12), where
# checkpoint byte volume must differ meaningfully across "model sizes".
register_model(ModelConfig(
    name="gpt3-small-bench", family="gpt3", num_layers=4, hidden=128,
    num_heads=4, num_kv_heads=4, intermediate=512, vocab_size=503,
    vocab_pad_to=16, max_seq=64,
))
register_model(ModelConfig(
    name="gpt3-medium-bench", family="gpt3", num_layers=8, hidden=256,
    num_heads=8, num_kv_heads=8, intermediate=1024, vocab_size=1009,
    vocab_pad_to=16, max_seq=64,
))
register_model(ModelConfig(
    name="gpt3-large-bench", family="gpt3", num_layers=12, hidden=384,
    num_heads=12, num_kv_heads=12, intermediate=1536, vocab_size=2003,
    vocab_pad_to=16, max_seq=64,
))
