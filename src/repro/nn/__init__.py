"""Mini DNN training framework (numpy, manual backprop).

Implements the model architectures the paper evaluates — GPT-3-style
decoders, LLaMA-style (RMSNorm / SwiGLU / GQA / RoPE), BLOOM-style, and
Mixtral-style MoE — with exact manual backward passes, so the
reproduction trains real models whose checkpoints have the same
structural features (fused variable-size QKV, 3-dim expert tensors,
padded vocab embeddings) that make UCP's transformation problem hard.
"""

from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.linear import Linear
from repro.nn.embedding import Embedding, LearnedPositionalEmbedding
from repro.nn.norm import LayerNorm, RMSNorm
from repro.nn.attention import CausalSelfAttention
from repro.nn.mlp import MLP, SwiGLUMLP
from repro.nn.moe import MoELayer, TopKRouter
from repro.nn.block import TransformerBlock
from repro.nn.transformer import TransformerLM
from repro.nn.functional import (
    cross_entropy,
    cross_entropy_grad,
    gelu,
    gelu_grad,
    silu,
    silu_grad,
    softmax,
)

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Linear",
    "Embedding",
    "LearnedPositionalEmbedding",
    "LayerNorm",
    "RMSNorm",
    "CausalSelfAttention",
    "MLP",
    "SwiGLUMLP",
    "MoELayer",
    "TopKRouter",
    "TransformerBlock",
    "TransformerLM",
    "cross_entropy",
    "cross_entropy_grad",
    "gelu",
    "gelu_grad",
    "silu",
    "silu_grad",
    "softmax",
]
