"""Causal self-attention: multi-head and grouped-query (GQA).

The QKV projection is stored as one fused weight of shape
``[(num_q_heads + 2 * num_kv_heads) * head_dim, hidden]`` — the layout
the paper's Fig 5 highlights: under tensor parallelism the fused tensor
splits into *variable-size* Q/K/V fragments, which UCP handles with a
dedicated fragment sub-pattern.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.linear import Linear
from repro.nn.module import Module


class CausalSelfAttention(Module):
    """Fused-QKV causal attention with optional GQA and RoPE.

    Args:
        hidden: model hidden size.
        num_heads: number of query heads.
        num_kv_heads: number of key/value heads (== num_heads for MHA;
            a divisor of num_heads for GQA).
        qkv_weight: fused projection, [(nq + 2*nkv) * head_dim, hidden].
        out_weight: output projection, [hidden, nq * head_dim].
        use_rope: apply rotary embeddings to q/k (LLaMA/Mixtral style).
        qkv_bias / out_bias: optional biases (GPT/BLOOM style).
    """

    def __init__(
        self,
        hidden: int,
        num_heads: int,
        num_kv_heads: int,
        qkv_weight: np.ndarray,
        out_weight: np.ndarray,
        use_rope: bool = False,
        use_alibi: bool = False,
        qkv_bias: Optional[np.ndarray] = None,
        out_bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        if hidden % num_heads != 0:
            raise ValueError(f"hidden {hidden} not divisible by heads {num_heads}")
        if num_heads % num_kv_heads != 0:
            raise ValueError(
                f"num_heads {num_heads} not divisible by num_kv_heads {num_kv_heads}"
            )
        self.hidden = hidden
        self.num_heads = num_heads
        self.num_kv_heads = num_kv_heads
        if use_rope and use_alibi:
            raise ValueError("RoPE and ALiBi are mutually exclusive")
        self.head_dim = hidden // num_heads
        self.group_size = num_heads // num_kv_heads
        self.use_rope = use_rope
        self.use_alibi = use_alibi
        qkv_out = (num_heads + 2 * num_kv_heads) * self.head_dim
        self.qkv = Linear(hidden, qkv_out, qkv_weight, qkv_bias)
        self.out = Linear(num_heads * self.head_dim, hidden, out_weight, out_bias)
        self._cache: Optional[tuple] = None

    @property
    def q_size(self) -> int:
        """Rows of the fused weight belonging to Q."""
        return self.num_heads * self.head_dim

    @property
    def kv_size(self) -> int:
        """Rows of the fused weight belonging to each of K and V."""
        return self.num_kv_heads * self.head_dim

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Attention over [batch, seq, hidden]."""
        batch, seq, _ = x.shape
        hd, nq, nkv, g = self.head_dim, self.num_heads, self.num_kv_heads, self.group_size

        qkv = self.qkv(x)
        q = qkv[..., : self.q_size].reshape(batch, seq, nq, hd)
        k = qkv[..., self.q_size : self.q_size + self.kv_size].reshape(batch, seq, nkv, hd)
        v = qkv[..., self.q_size + self.kv_size :].reshape(batch, seq, nkv, hd)

        if self.use_rope:
            cos, sin = F.rope_tables(seq, hd)
            q = F.apply_rope(q, cos, sin)
            k = F.apply_rope(k, cos, sin)
        else:
            cos = sin = None

        # expand kv heads to match query heads (GQA repeat)
        k_exp = np.repeat(k, g, axis=2)
        v_exp = np.repeat(v, g, axis=2)

        # [batch, heads, seq, head_dim]
        qt = q.transpose(0, 2, 1, 3)
        kt = k_exp.transpose(0, 2, 1, 3)
        vt = v_exp.transpose(0, 2, 1, 3)

        scale = np.float32(1.0 / np.sqrt(hd))
        scores = (qt @ kt.transpose(0, 1, 3, 2)) * scale + F.causal_mask(seq)
        if self.use_alibi:
            # constant additive bias: backward is unchanged
            scores = scores + F.alibi_bias(seq, nq)[None]
        probs = F.softmax(scores, axis=-1)
        context = probs @ vt  # [batch, heads, seq, head_dim]
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, nq * hd)
        y = self.out(merged)
        self._cache = (qt, kt, vt, probs, scale, cos, sin, (batch, seq))
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward through projection, softmax-attention, RoPE, QKV."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        qt, kt, vt, probs, scale, cos, sin, (batch, seq) = self._cache
        hd, nq, nkv, g = self.head_dim, self.num_heads, self.num_kv_heads, self.group_size

        grad_merged = self.out.backward(grad_out)
        grad_context = grad_merged.reshape(batch, seq, nq, hd).transpose(0, 2, 1, 3)

        grad_probs = grad_context @ vt.transpose(0, 1, 3, 2)
        grad_vt = probs.transpose(0, 1, 3, 2) @ grad_context

        # softmax backward (rows of probs sum to 1)
        tmp = (grad_probs * probs).sum(axis=-1, keepdims=True)
        grad_scores = probs * (grad_probs - tmp)

        grad_qt = (grad_scores @ kt) * scale
        grad_kt = (grad_scores.transpose(0, 1, 3, 2) @ qt) * scale

        # [batch, seq, heads, head_dim]
        grad_q = grad_qt.transpose(0, 2, 1, 3)
        grad_k_exp = grad_kt.transpose(0, 2, 1, 3)
        grad_v_exp = grad_vt.transpose(0, 2, 1, 3)

        # GQA repeat backward: sum gradients within each query-head group
        grad_k = grad_k_exp.reshape(batch, seq, nkv, g, hd).sum(axis=3)
        grad_v = grad_v_exp.reshape(batch, seq, nkv, g, hd).sum(axis=3)

        if self.use_rope:
            grad_q = F.apply_rope_grad(grad_q, cos, sin)
            grad_k = F.apply_rope_grad(grad_k, cos, sin)

        grad_qkv = np.concatenate(
            [
                grad_q.reshape(batch, seq, self.q_size),
                grad_k.reshape(batch, seq, self.kv_size),
                grad_v.reshape(batch, seq, self.kv_size),
            ],
            axis=-1,
        )
        grad_in = self.qkv.backward(grad_qkv)
        self._cache = None
        return grad_in
