"""Pre-norm transformer block: attention + (MLP | MoE) with residuals."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


class TransformerBlock(Module):
    """``x + attn(norm1(x))`` then ``h + ffn(norm2(h))``.

    The norm layers, attention, and FFN are injected so the same block
    serves GPT (LayerNorm + GELU MLP), LLaMA (RMSNorm + SwiGLU + GQA),
    BLOOM, and Mixtral (RMSNorm + MoE) architectures.
    """

    def __init__(
        self,
        norm1: Module,
        attn: Module,
        norm2: Module,
        ffn: Module,
        attn_dropout: Optional[Module] = None,
        ffn_dropout: Optional[Module] = None,
    ) -> None:
        super().__init__()
        self.norm1 = norm1
        self.attn = attn
        self.norm2 = norm2
        self.ffn = ffn
        if attn_dropout is not None:
            self.attn_dropout = attn_dropout
        else:
            object.__setattr__(self, "attn_dropout", None)
        if ffn_dropout is not None:
            self.ffn_dropout = ffn_dropout
        else:
            object.__setattr__(self, "ffn_dropout", None)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the block over [batch, seq, hidden]."""
        branch = self.attn(self.norm1(x))
        if self.attn_dropout is not None:
            branch = self.attn_dropout(branch)
        h = x + branch
        branch = self.ffn(self.norm2(h))
        if self.ffn_dropout is not None:
            branch = self.ffn_dropout(branch)
        return h + branch

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward through both residual branches."""
        grad_branch = grad_out
        if self.ffn_dropout is not None:
            grad_branch = self.ffn_dropout.backward(grad_branch)
        grad_h = grad_out + self.norm2.backward(self.ffn.backward(grad_branch))
        grad_branch = grad_h
        if self.attn_dropout is not None:
            grad_branch = self.attn_dropout.backward(grad_branch)
        grad_x = grad_h + self.norm1.backward(self.attn.backward(grad_branch))
        return grad_x
