"""Deterministic dropout, keyed by (seed, global step, layer name).

Real frameworks must checkpoint RNG state to make resumes exact; this
framework sidesteps the problem the same way it does for data order —
the mask is a pure function of (seed, step, layer), so resuming at
step *t* regenerates exactly the masks the uninterrupted run would
have used, and checkpoints carry no RNG state at all.

The engine advances the shared step context before each forward; eval
paths disable dropout via :func:`dropout_disabled`.
"""

from __future__ import annotations

import contextlib
from typing import Optional

import numpy as np

from repro.nn.init import generator_for
from repro.nn.module import Module

_context = {"seed": 0, "step": 0, "enabled": True}


def set_dropout_context(seed: int, step: int) -> None:
    """Bind the mask stream for the upcoming forward passes."""
    _context["seed"] = seed
    _context["step"] = step


@contextlib.contextmanager
def dropout_disabled():
    """Temporarily disable dropout (evaluation passes)."""
    previous = _context["enabled"]
    _context["enabled"] = False
    try:
        yield
    finally:
        _context["enabled"] = previous


class Dropout(Module):
    """Inverted dropout with a deterministic per-(step, layer) mask."""

    def __init__(self, rate: float, name: str) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.name = name
        self._cache_mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Zero a ``rate`` fraction of elements, scaling the survivors."""
        if self.rate == 0.0 or not _context["enabled"]:
            self._cache_mask = None
            return x
        gen = generator_for(
            _context["seed"], f"dropout:{self.name}:{_context['step']}"
        )
        keep = np.float32(1.0 - self.rate)
        mask = (gen.random(x.shape) < keep).astype(np.float32) / keep
        self._cache_mask = mask
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Gradients flow only through the kept elements."""
        if self._cache_mask is None:
            return grad_out
        grad = grad_out * self._cache_mask
        self._cache_mask = None
        return grad
