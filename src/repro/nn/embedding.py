"""Token and learned positional embeddings.

Vocabulary embeddings are padded to a multiple of ``vocab_pad_to`` (the
Megatron convention that makes the table divisible by any TP degree) —
one of the padding sources UCP's ``StripPadding`` must remove.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter


def padded_vocab_size(vocab_size: int, pad_to: int) -> int:
    """Round vocab up to a multiple of ``pad_to`` (0 disables padding)."""
    if pad_to <= 1:
        return vocab_size
    return ((vocab_size + pad_to - 1) // pad_to) * pad_to


class Embedding(Module):
    """Token embedding lookup with scatter-add backward.

    Attributes:
        vocab_size: the *logical* vocabulary (token ids range over this).
        padded_size: the stored table height, >= vocab_size.
    """

    def __init__(self, vocab_size: int, hidden: int, weight: np.ndarray) -> None:
        super().__init__()
        weight = np.asarray(weight, dtype=np.float32)
        if weight.ndim != 2 or weight.shape[1] != hidden or weight.shape[0] < vocab_size:
            raise ValueError(
                f"embedding weight shape {weight.shape} incompatible with "
                f"vocab {vocab_size}, hidden {hidden}"
            )
        self.vocab_size = vocab_size
        self.hidden = hidden
        self.padded_size = int(weight.shape[0])
        self.weight = Parameter(weight)
        self._cache_ids: Optional[np.ndarray] = None

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Lookup rows for [batch, seq] int ids -> [batch, seq, hidden]."""
        ids = np.asarray(token_ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.vocab_size:
            raise IndexError(
                f"token id out of range [0, {self.vocab_size}) in input"
            )
        self._cache_ids = ids
        return self.weight.data[ids]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Scatter-add gradients into the table; embeddings have no input grad."""
        if self._cache_ids is None:
            raise RuntimeError("backward called before forward")
        ids = self._cache_ids
        grad = np.zeros_like(self.weight.data)
        np.add.at(grad, ids.reshape(-1), grad_out.reshape(-1, self.hidden))
        self.weight.accumulate_grad(grad)
        self._cache_ids = None
        return np.zeros(grad_out.shape[:-1] + (0,), dtype=np.float32)


class LearnedPositionalEmbedding(Module):
    """GPT-style learned absolute position embedding."""

    def __init__(self, max_positions: int, hidden: int, weight: np.ndarray) -> None:
        super().__init__()
        weight = np.asarray(weight, dtype=np.float32)
        if weight.shape != (max_positions, hidden):
            raise ValueError(
                f"positional weight shape {weight.shape} != "
                f"({max_positions}, {hidden})"
            )
        self.max_positions = max_positions
        self.hidden = hidden
        self.weight = Parameter(weight)
        self._cache_shape: Optional[tuple] = None

    def forward(self, batch: int, seq_len: int) -> np.ndarray:
        """Positions 0..seq_len-1 broadcast over the batch."""
        if seq_len > self.max_positions:
            raise ValueError(
                f"sequence length {seq_len} exceeds max positions "
                f"{self.max_positions}"
            )
        self._cache_shape = (batch, seq_len)
        return np.broadcast_to(
            self.weight.data[:seq_len], (batch, seq_len, self.hidden)
        ).copy()

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Sum gradients over the batch into the first seq_len rows."""
        if self._cache_shape is None:
            raise RuntimeError("backward called before forward")
        _, seq_len = self._cache_shape
        grad = np.zeros_like(self.weight.data)
        grad[:seq_len] = grad_out.sum(axis=0)
        self.weight.accumulate_grad(grad)
        self._cache_shape = None
        return np.zeros((0,), dtype=np.float32)
