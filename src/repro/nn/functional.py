"""Stateless tensor functions with matching gradient functions.

All math is float32; reductions follow numpy's deterministic order so a
given (seed, topology) training run is bit-reproducible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_SQRT_2_OVER_PI = np.float32(np.sqrt(2.0 / np.pi))
_GELU_COEF = np.float32(0.044715)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU (the GPT-2/3 variant)."""
    x = np.asarray(x, dtype=np.float32)
    inner = _SQRT_2_OVER_PI * (x + _GELU_COEF * x * x * x)
    return np.float32(0.5) * x * (np.float32(1.0) + np.tanh(inner))


def gelu_grad(x: np.ndarray) -> np.ndarray:
    """d gelu(x) / dx for the tanh approximation."""
    x = np.asarray(x, dtype=np.float32)
    x3 = x * x * x
    inner = _SQRT_2_OVER_PI * (x + _GELU_COEF * x3)
    tanh_inner = np.tanh(inner)
    sech2 = np.float32(1.0) - tanh_inner * tanh_inner
    d_inner = _SQRT_2_OVER_PI * (np.float32(1.0) + np.float32(3.0) * _GELU_COEF * x * x)
    return np.float32(0.5) * (np.float32(1.0) + tanh_inner) + np.float32(0.5) * x * sech2 * d_inner


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation, used by LLaMA's gated MLP."""
    x = np.asarray(x, dtype=np.float32)
    return x / (np.float32(1.0) + np.exp(-x))


def silu_grad(x: np.ndarray) -> np.ndarray:
    """d silu(x) / dx."""
    x = np.asarray(x, dtype=np.float32)
    sig = np.float32(1.0) / (np.float32(1.0) + np.exp(-x))
    return sig * (np.float32(1.0) + x * (np.float32(1.0) - sig))


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    logits = np.asarray(logits, dtype=np.float32)
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean token-level cross-entropy (LM loss).

    Args:
        logits: [batch, seq, vocab] float32.
        targets: [batch, seq] int token ids.
    """
    probs = softmax(logits, axis=-1)
    batch, seq, _ = probs.shape
    flat = probs.reshape(batch * seq, -1)
    idx = np.asarray(targets, dtype=np.int64).reshape(-1)
    picked = flat[np.arange(flat.shape[0]), idx]
    # clip to avoid log(0) from fp32 underflow on confident wrong tokens
    picked = np.maximum(picked, np.float32(1e-30))
    return float(np.mean(-np.log(picked)))


def cross_entropy_grad(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Gradient of mean cross-entropy w.r.t. logits: (softmax - onehot)/N."""
    probs = softmax(logits, axis=-1)
    batch, seq, vocab = probs.shape
    grad = probs.reshape(batch * seq, vocab)
    idx = np.asarray(targets, dtype=np.int64).reshape(-1)
    grad[np.arange(grad.shape[0]), idx] -= np.float32(1.0)
    grad /= np.float32(batch * seq)
    return grad.reshape(batch, seq, vocab)


def rope_tables(seq_len: int, head_dim: int, base: float = 10000.0) -> Tuple[np.ndarray, np.ndarray]:
    """Rotary position embedding cos/sin tables.

    Returns:
        (cos, sin), each [seq_len, head_dim // 2] float32.
    """
    if head_dim % 2 != 0:
        raise ValueError(f"RoPE needs an even head_dim, got {head_dim}")
    half = head_dim // 2
    inv_freq = np.float32(1.0) / (
        np.float32(base) ** (np.arange(0, half, dtype=np.float32) / np.float32(half))
    )
    angles = np.outer(np.arange(seq_len, dtype=np.float32), inv_freq)
    return np.cos(angles, dtype=np.float32), np.sin(angles, dtype=np.float32)


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Apply rotary embedding to [batch, seq, heads, head_dim] tensors."""
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    c = cos[None, :, None, :]
    s = sin[None, :, None, :]
    return np.concatenate([x1 * c - x2 * s, x1 * s + x2 * c], axis=-1)


def apply_rope_grad(grad: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Backward of :func:`apply_rope` (rotation by the negative angle)."""
    return apply_rope(grad, cos, -sin)


def causal_mask(seq_len: int) -> np.ndarray:
    """Additive causal mask: 0 on/below the diagonal, -inf above."""
    mask = np.zeros((seq_len, seq_len), dtype=np.float32)
    mask[np.triu_indices(seq_len, k=1)] = -np.float32(np.inf)
    return mask


def alibi_slopes(num_heads: int) -> np.ndarray:
    """ALiBi head slopes: the geometric sequence 2^(-8h/H).

    BLOOM's positional scheme — instead of position embeddings, each
    attention head penalizes distant keys linearly with a head-specific
    slope.  Parameter-free, so checkpoints carry no positional state.
    """
    if num_heads < 1:
        raise ValueError(f"num_heads must be >= 1, got {num_heads}")
    exponents = np.arange(1, num_heads + 1, dtype=np.float32)
    return np.float32(2.0) ** (-np.float32(8.0) * exponents / np.float32(num_heads))


def alibi_bias(seq_len: int, num_heads: int) -> np.ndarray:
    """Additive attention bias [heads, seq, seq]: -slope * distance.

    Zero on the diagonal, increasingly negative toward older keys;
    future positions are handled by the causal mask, not here.
    """
    slopes = alibi_slopes(num_heads)
    positions = np.arange(seq_len, dtype=np.float32)
    distance = positions[:, None] - positions[None, :]  # i - j
    return -slopes[:, None, None] * np.maximum(distance, 0.0)
