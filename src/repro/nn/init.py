"""Deterministic parameter initialization.

Every tensor draws from a `numpy.random.Generator` derived from a global
seed and the parameter's dotted name, so initialization is identical
regardless of construction order or topology — a prerequisite for the
paper's multiple-Source experiments (Fig 7), where differently-sharded
runs must start from the same weights.
"""

from __future__ import annotations

import hashlib

import numpy as np


def generator_for(seed: int, name: str) -> np.random.Generator:
    """A Generator uniquely determined by (seed, name)."""
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def normal_init(seed: int, name: str, shape, std: float = 0.02) -> np.ndarray:
    """N(0, std^2) init keyed by name."""
    gen = generator_for(seed, name)
    return (gen.standard_normal(shape) * std).astype(np.float32)


def zeros_init(shape) -> np.ndarray:
    """All-zeros init (biases)."""
    return np.zeros(shape, dtype=np.float32)


def ones_init(shape) -> np.ndarray:
    """All-ones init (norm gains)."""
    return np.ones(shape, dtype=np.float32)
