"""Fully connected layer with manual backward."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter


class Linear(Module):
    """``y = x @ W.T + b`` with weight shape [out_features, in_features].

    The [out, in] orientation matches Megatron/PyTorch so row/column
    tensor-parallel sharding dims line up with the paper's description.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        weight = np.asarray(weight, dtype=np.float32)
        if weight.shape != (out_features, in_features):
            raise ValueError(
                f"weight shape {weight.shape} != ({out_features}, {in_features})"
            )
        self.weight = Parameter(weight)
        self.bias: Optional[Parameter]
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float32)
            if bias.shape != (out_features,):
                raise ValueError(f"bias shape {bias.shape} != ({out_features},)")
            self.bias = Parameter(bias)
        else:
            object.__setattr__(self, "bias", None)
        self._cache_x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the affine map over the last axis of ``x``."""
        x = np.asarray(x, dtype=np.float32)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"input last dim {x.shape[-1]} != in_features {self.in_features}"
            )
        self._cache_x = x
        y = x @ self.weight.data.T
        if self.bias is not None:
            y = y + self.bias.data
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate weight/bias grads; return grad w.r.t. the input."""
        if self._cache_x is None:
            raise RuntimeError("backward called before forward")
        x = self._cache_x
        grad_out = np.asarray(grad_out, dtype=np.float32)
        flat_x = x.reshape(-1, self.in_features)
        flat_g = grad_out.reshape(-1, self.out_features)
        self.weight.accumulate_grad(flat_g.T @ flat_x)
        if self.bias is not None:
            self.bias.accumulate_grad(flat_g.sum(axis=0))
        grad_in = grad_out @ self.weight.data
        self._cache_x = None
        return grad_in
