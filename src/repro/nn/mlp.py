"""Feed-forward blocks: GELU MLP (GPT/BLOOM) and SwiGLU (LLaMA)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.linear import Linear
from repro.nn.module import Module


class MLP(Module):
    """Two-layer GELU MLP: ``down(gelu(up(x)))``."""

    def __init__(
        self,
        hidden: int,
        intermediate: int,
        up_weight: np.ndarray,
        down_weight: np.ndarray,
        up_bias: Optional[np.ndarray] = None,
        down_bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.intermediate = intermediate
        self.up = Linear(hidden, intermediate, up_weight, up_bias)
        self.down = Linear(intermediate, hidden, down_weight, down_bias)
        self._cache_pre: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the MLP over the last axis."""
        pre = self.up(x)
        self._cache_pre = pre
        return self.down(F.gelu(pre))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward through down-proj, GELU, up-proj."""
        if self._cache_pre is None:
            raise RuntimeError("backward called before forward")
        grad_act = self.down.backward(grad_out)
        grad_pre = grad_act * F.gelu_grad(self._cache_pre)
        self._cache_pre = None
        return self.up.backward(grad_pre)


class SwiGLUMLP(Module):
    """LLaMA-style gated MLP: ``down(silu(gate(x)) * up(x))``."""

    def __init__(
        self,
        hidden: int,
        intermediate: int,
        gate_weight: np.ndarray,
        up_weight: np.ndarray,
        down_weight: np.ndarray,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.intermediate = intermediate
        self.gate = Linear(hidden, intermediate, gate_weight)
        self.up = Linear(hidden, intermediate, up_weight)
        self.down = Linear(intermediate, hidden, down_weight)
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the gated MLP over the last axis."""
        g = self.gate(x)
        u = self.up(x)
        act = F.silu(g)
        self._cache = (g, u, act)
        return self.down(act * u)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward through the gated product."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        g, u, act = self._cache
        grad_prod = self.down.backward(grad_out)
        grad_u = grad_prod * act
        grad_act = grad_prod * u
        grad_g = grad_act * F.silu_grad(g)
        grad_in = self.up.backward(grad_u) + self.gate.backward(grad_g)
        self._cache = None
        return grad_in
