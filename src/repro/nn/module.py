"""Module / Parameter base classes for the manual-backprop framework.

Modules own named :class:`Parameter` objects and child modules; names
compose hierarchically (``blocks.3.attn.qkv.weight``) exactly like
PyTorch state-dict keys, because those dotted names are what distributed
checkpoints record and what UCP atom checkpoints are keyed by.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None

    @property
    def shape(self) -> Tuple[int, ...]:
        """Tensor shape."""
        return tuple(self.data.shape)

    @property
    def numel(self) -> int:
        """Element count."""
        return int(self.data.size)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add a gradient contribution (sums across micro-batches)."""
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None


class Module:
    """Base class: tracks parameters and children in definition order."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}

    def __setattr__(self, name: str, value: object) -> None:
        params = self.__dict__.get("_parameters")
        modules = self.__dict__.get("_modules")
        if isinstance(value, Parameter):
            if params is None:
                raise AttributeError(
                    "call Module.__init__() before assigning parameters"
                )
            params[name] = value
        elif isinstance(value, Module):
            if modules is None:
                raise AttributeError(
                    "call Module.__init__() before assigning submodules"
                )
            modules[name] = value
        object.__setattr__(self, name, value)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield (dotted name, parameter) pairs in definition order."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """All parameters, in definition order."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total trainable element count."""
        return sum(p.numel for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameter tensors, keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter tensors by dotted name.

        Args:
            state: name -> array mapping.
            strict: when True, missing or unexpected keys raise.
        """
        own = dict(self.named_parameters())
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise KeyError(
                    f"state_dict mismatch: missing={missing}, "
                    f"unexpected={unexpected}"
                )
        for name, values in state.items():
            if name not in own:
                continue
            param = own[name]
            values = np.asarray(values, dtype=np.float32)
            if values.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: parameter is "
                    f"{param.data.shape}, checkpoint has {values.shape}"
                )
            param.data[...] = values

    def forward(self, *args, **kwargs):
        """Compute outputs; subclasses cache what backward needs."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate gradients; accumulates into parameter ``.grad``."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable list of child modules (e.g. transformer blocks)."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        """Add a child module at the next index."""
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)
