"""Mixture-of-Experts layer (Mixtral-style top-k routing).

Expert weights are stored as single 3-D tensors of shape
``[n_experts, out, in]`` — the layout the paper's Fig 5 uses to motivate
UCP's expert fragment sub-pattern (TP shards these tensors along the
``out`` dimension *within each expert*).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter


class TopKRouter(Module):
    """Softmax-over-experts router with deterministic top-k selection."""

    def __init__(self, hidden: int, num_experts: int, top_k: int, weight: np.ndarray) -> None:
        super().__init__()
        if not 1 <= top_k <= num_experts:
            raise ValueError(f"top_k {top_k} out of range for {num_experts} experts")
        self.num_experts = num_experts
        self.top_k = top_k
        self.proj = Linear(hidden, num_experts, weight)
        self._cache: Optional[tuple] = None

    def forward(self, x_flat: np.ndarray):
        """Route [tokens, hidden] -> (expert ids, gates, full probs).

        Returns:
            topk_idx: [tokens, top_k] selected expert indices
                (descending probability, index as tie-break).
            gates: [tokens, top_k] renormalized gate weights.
            probs: [tokens, num_experts] full softmax, for backward.
        """
        logits = self.proj(x_flat)
        probs = F.softmax(logits, axis=-1)
        order = np.argsort(-probs, axis=-1, kind="stable")
        topk_idx = order[:, : self.top_k]
        rows = np.arange(probs.shape[0])[:, None]
        topk_probs = probs[rows, topk_idx]
        denom = topk_probs.sum(axis=-1, keepdims=True)
        gates = topk_probs / denom
        self._cache = (probs, topk_idx, topk_probs, denom)
        return topk_idx, gates, probs

    def backward(self, grad_gates: np.ndarray) -> np.ndarray:
        """Backward from gate-weight grads to the router input.

        Args:
            grad_gates: [tokens, top_k] gradient w.r.t. the renormalized
                gate values.
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, topk_idx, topk_probs, denom = self._cache
        tokens = probs.shape[0]
        rows = np.arange(tokens)[:, None]

        # renormalization backward: gates = topk_probs / denom
        dot = (grad_gates * topk_probs).sum(axis=-1, keepdims=True)
        grad_topk_probs = grad_gates / denom - dot / (denom * denom)

        grad_probs = np.zeros_like(probs)
        grad_probs[rows, topk_idx] = grad_topk_probs

        # softmax backward
        tmp = (grad_probs * probs).sum(axis=-1, keepdims=True)
        grad_logits = probs * (grad_probs - tmp)
        self._cache = None
        return self.proj.backward(grad_logits)


class MoELayer(Module):
    """Sparse MoE FFN: top-k routed SwiGLU experts.

    Args:
        hidden: model hidden size.
        intermediate: per-expert FFN intermediate size.
        num_experts: expert count E.
        top_k: experts activated per token.
        router_weight: [E, hidden].
        gate_weight / up_weight: [E, intermediate, hidden].
        down_weight: [E, hidden, intermediate].
    """

    def __init__(
        self,
        hidden: int,
        intermediate: int,
        num_experts: int,
        top_k: int,
        router_weight: np.ndarray,
        gate_weight: np.ndarray,
        up_weight: np.ndarray,
        down_weight: np.ndarray,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.intermediate = intermediate
        self.num_experts = num_experts
        self.top_k = top_k
        self.router = TopKRouter(hidden, num_experts, top_k, router_weight)

        def _check(name: str, arr: np.ndarray, shape) -> np.ndarray:
            arr = np.asarray(arr, dtype=np.float32)
            if arr.shape != shape:
                raise ValueError(f"{name} shape {arr.shape} != {shape}")
            return arr

        e, i, h = num_experts, intermediate, hidden
        self.gate_weight = Parameter(_check("gate_weight", gate_weight, (e, i, h)))
        self.up_weight = Parameter(_check("up_weight", up_weight, (e, i, h)))
        self.down_weight = Parameter(_check("down_weight", down_weight, (e, h, i)))
        self._cache: Optional[tuple] = None

    def _expert_forward(self, expert: int, x_tok: np.ndarray):
        """SwiGLU forward for one expert over its routed tokens."""
        g = x_tok @ self.gate_weight.data[expert].T
        u = x_tok @ self.up_weight.data[expert].T
        act = F.silu(g)
        y = (act * u) @ self.down_weight.data[expert].T
        return y, (g, u, act)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Route and mix: [batch, seq, hidden] -> same shape."""
        batch, seq, hidden = x.shape
        x_flat = x.reshape(-1, hidden)
        topk_idx, gates, _ = self.router(x_flat)

        y_flat = np.zeros_like(x_flat)
        expert_caches = {}
        expert_outputs = {}
        for expert in range(self.num_experts):
            tok_rows, k_slots = np.nonzero(topk_idx == expert)
            if tok_rows.size == 0:
                continue
            x_tok = x_flat[tok_rows]
            y_tok, cache = self._expert_forward(expert, x_tok)
            w = gates[tok_rows, k_slots][:, None]
            np.add.at(y_flat, tok_rows, w * y_tok)
            expert_caches[expert] = (tok_rows, k_slots, x_tok, cache)
            expert_outputs[expert] = y_tok

        self._cache = (x.shape, topk_idx, gates, expert_caches, expert_outputs)
        return y_flat.reshape(batch, seq, hidden)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward through experts, gating, and the router."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, topk_idx, gates, expert_caches, expert_outputs = self._cache
        grad_flat = grad_out.reshape(-1, self.hidden)
        grad_x = np.zeros((grad_flat.shape[0], self.hidden), dtype=np.float32)
        grad_gates = np.zeros_like(gates)

        grad_gate_w = np.zeros_like(self.gate_weight.data)
        grad_up_w = np.zeros_like(self.up_weight.data)
        grad_down_w = np.zeros_like(self.down_weight.data)

        for expert, (tok_rows, k_slots, x_tok, cache) in expert_caches.items():
            g, u, act = cache
            y_tok = expert_outputs[expert]
            g_out = grad_flat[tok_rows]
            w = gates[tok_rows, k_slots][:, None]

            # gate-weight gradient: d/d gate of (gate * y_tok) . grad
            grad_gates[tok_rows, k_slots] += (g_out * y_tok).sum(axis=-1)

            grad_y_tok = g_out * w
            # down projection backward
            grad_prod = grad_y_tok @ self.down_weight.data[expert]
            grad_down_w[expert] += grad_y_tok.T @ (act * u)
            # gated product backward
            grad_u = grad_prod * act
            grad_act = grad_prod * u
            grad_g = grad_act * F.silu_grad(g)
            grad_up_w[expert] += grad_u.T @ x_tok
            grad_gate_w[expert] += grad_g.T @ x_tok
            grad_x_tok = grad_u @ self.up_weight.data[expert] + grad_g @ self.gate_weight.data[expert]
            np.add.at(grad_x, tok_rows, grad_x_tok)

        self.gate_weight.accumulate_grad(grad_gate_w)
        self.up_weight.accumulate_grad(grad_up_w)
        self.down_weight.accumulate_grad(grad_down_w)

        grad_x += self.router.backward(grad_gates)
        self._cache = None
        return grad_x.reshape(x_shape)
