"""LayerNorm (GPT/BLOOM) and RMSNorm (LLaMA/Mixtral) with backward."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter


class LayerNorm(Module):
    """Per-token layer normalization over the hidden dimension."""

    def __init__(self, hidden: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.hidden = hidden
        self.eps = np.float32(eps)
        self.weight = Parameter(np.ones(hidden, dtype=np.float32))
        self.bias = Parameter(np.zeros(hidden, dtype=np.float32))
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Normalize the last axis, then scale and shift."""
        x = np.asarray(x, dtype=np.float32)
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        inv_std = np.float32(1.0) / np.sqrt(var + self.eps)
        norm = centered * inv_std
        self._cache = (norm, inv_std)
        return norm * self.weight.data + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Standard layernorm backward."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        norm, inv_std = self._cache
        grad_out = np.asarray(grad_out, dtype=np.float32)
        axes = tuple(range(grad_out.ndim - 1))
        self.weight.accumulate_grad((grad_out * norm).sum(axis=axes))
        self.bias.accumulate_grad(grad_out.sum(axis=axes))
        g = grad_out * self.weight.data
        grad_in = (
            g - g.mean(axis=-1, keepdims=True)
            - norm * (g * norm).mean(axis=-1, keepdims=True)
        ) * inv_std
        self._cache = None
        return grad_in


class RMSNorm(Module):
    """Root-mean-square norm (no centering, no bias) as in LLaMA."""

    def __init__(self, hidden: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.hidden = hidden
        self.eps = np.float32(eps)
        self.weight = Parameter(np.ones(hidden, dtype=np.float32))
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Scale by 1/rms(x) then apply the gain."""
        x = np.asarray(x, dtype=np.float32)
        ms = (x * x).mean(axis=-1, keepdims=True)
        inv_rms = np.float32(1.0) / np.sqrt(ms + self.eps)
        norm = x * inv_rms
        self._cache = (x, norm, inv_rms)
        return norm * self.weight.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """RMSNorm backward."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, norm, inv_rms = self._cache
        grad_out = np.asarray(grad_out, dtype=np.float32)
        axes = tuple(range(grad_out.ndim - 1))
        self.weight.accumulate_grad((grad_out * norm).sum(axis=axes))
        g = grad_out * self.weight.data
        # d/dx [ x * inv_rms ] = inv_rms * (g - norm * mean(g * norm))
        grad_in = inv_rms * (g - norm * (g * norm).mean(axis=-1, keepdims=True))
        del x
        self._cache = None
        return grad_in
