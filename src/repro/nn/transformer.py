"""Decoder-only transformer language model.

Supports the architectural axes the paper evaluates: learned positional
embeddings (GPT/BLOOM) vs RoPE (LLaMA/Mixtral), tied vs untied LM head,
LayerNorm vs RMSNorm, dense MLP vs MoE FFN, MHA vs GQA — all behind one
class so checkpoints from every model family flow through the same
save/convert/load pipeline.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.embedding import Embedding, LearnedPositionalEmbedding
from repro.nn.module import Module, ModuleList, Parameter


class TransformerLM(Module):
    """Embedding -> blocks -> final norm -> LM head.

    Args:
        embedding: token embedding (vocab possibly padded).
        blocks: transformer blocks in layer order.
        final_norm: the output norm module.
        pos_embedding: optional learned positional embedding.
        lm_head_weight: untied head weight [padded_vocab, hidden];
            None ties the head to the embedding table.
    """

    def __init__(
        self,
        embedding: Embedding,
        blocks: List[Module],
        final_norm: Module,
        pos_embedding: Optional[LearnedPositionalEmbedding] = None,
        lm_head_weight: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.embedding = embedding
        if pos_embedding is not None:
            self.pos_embedding = pos_embedding
        else:
            object.__setattr__(self, "pos_embedding", None)
        self.blocks = ModuleList(blocks)
        self.final_norm = final_norm
        self.tied_head = lm_head_weight is None
        if lm_head_weight is not None:
            self.lm_head = Parameter(np.asarray(lm_head_weight, dtype=np.float32))
        else:
            object.__setattr__(self, "lm_head", None)
        self._cache_hidden: Optional[np.ndarray] = None

    @property
    def vocab_size(self) -> int:
        """Logical vocabulary size (token-id range)."""
        return self.embedding.vocab_size

    @property
    def num_layers(self) -> int:
        """Transformer block count."""
        return len(self.blocks)

    def _head_weight(self) -> np.ndarray:
        """The (possibly tied) LM head matrix, padded rows included."""
        if self.tied_head:
            return self.embedding.weight.data
        return self.lm_head.data

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Token ids [batch, seq] -> logits [batch, seq, vocab]."""
        ids = np.asarray(token_ids, dtype=np.int64)
        batch, seq = ids.shape
        h = self.embedding(ids)
        if self.pos_embedding is not None:
            h = h + self.pos_embedding(batch, seq)
        for block in self.blocks:
            h = block(h)
        h = self.final_norm(h)
        self._cache_hidden = h
        # padded vocab rows are excluded from the logits
        logits = h @ self._head_weight()[: self.vocab_size].T
        return logits

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backward from logits gradient through the whole network."""
        if self._cache_hidden is None:
            raise RuntimeError("backward called before forward")
        h = self._cache_hidden
        batch, seq, _ = grad_logits.shape
        head = self._head_weight()

        flat_g = grad_logits.reshape(batch * seq, self.vocab_size)
        flat_h = h.reshape(batch * seq, -1)
        grad_head = np.zeros_like(head)
        grad_head[: self.vocab_size] = flat_g.T @ flat_h
        if self.tied_head:
            self.embedding.weight.accumulate_grad(grad_head)
        else:
            self.lm_head.accumulate_grad(grad_head)

        grad_h = (flat_g @ head[: self.vocab_size]).reshape(h.shape)
        grad_h = self.final_norm.backward(grad_h)
        for block in reversed(list(self.blocks)):
            grad_h = block.backward(grad_h)
        if self.pos_embedding is not None:
            self.pos_embedding.backward(grad_h)
        self.embedding.backward(grad_h)
        self._cache_hidden = None

    def loss(self, token_ids: np.ndarray, targets: np.ndarray) -> float:
        """Forward + mean cross-entropy (no backward)."""
        logits = self.forward(token_ids)
        return F.cross_entropy(logits, targets)

    def loss_and_backward(self, token_ids: np.ndarray, targets: np.ndarray) -> float:
        """One full training step's math: forward, loss, backward."""
        logits = self.forward(token_ids)
        loss = F.cross_entropy(logits, targets)
        self.backward(F.cross_entropy_grad(logits, targets))
        return loss

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        temperature: float = 0.0,
        seed: int = 0,
    ) -> np.ndarray:
        """Autoregressive decoding from a prompt.

        Greedy when ``temperature`` is 0; otherwise samples from the
        temperature-scaled distribution with a seeded generator, so
        generation is reproducible — the property the resume tests use
        to show a UCP-resharded model is behaviourally identical.

        Args:
            prompt: [seq] or [batch, seq] int token ids.
            max_new_tokens: tokens to append.
            temperature: 0 = greedy; > 0 = sampled.
            seed: sampling seed (ignored when greedy).
        """
        if max_new_tokens < 1:
            raise ValueError(f"max_new_tokens must be >= 1, got {max_new_tokens}")
        if temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {temperature}")
        tokens = np.asarray(prompt, dtype=np.int64)
        squeeze = tokens.ndim == 1
        if squeeze:
            tokens = tokens[None, :]
        gen = np.random.default_rng(seed)
        for _ in range(max_new_tokens):
            logits = self.forward(tokens)[:, -1, :]
            if temperature == 0.0:
                next_tokens = logits.argmax(axis=-1)
            else:
                probs = F.softmax(logits / np.float32(temperature), axis=-1)
                next_tokens = np.array(
                    [gen.choice(self.vocab_size, p=row) for row in probs]
                )
            tokens = np.concatenate(
                [tokens, next_tokens[:, None].astype(np.int64)], axis=1
            )
        return tokens[0] if squeeze else tokens
