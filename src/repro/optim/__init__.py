"""Optimizers and mixed-precision training substrate.

Adam keeps fp32 master weights plus ``exp_avg`` / ``exp_avg_sq`` moments
— the exact three per-parameter states UCP's atom checkpoints persist
(``fp32.pt``, ``exp_avg.pt``, ``exp_avg_sq.pt`` in the paper §3.1).
"""

from repro.optim.adam import Adam, AdamParamState
from repro.optim.grad_clip import clip_grad_norm, global_grad_norm
from repro.optim.lr_schedule import CosineLRSchedule, ConstantLRSchedule
from repro.optim.mixed_precision import LossScaler, MixedPrecisionPolicy

__all__ = [
    "Adam",
    "AdamParamState",
    "clip_grad_norm",
    "global_grad_norm",
    "CosineLRSchedule",
    "ConstantLRSchedule",
    "LossScaler",
    "MixedPrecisionPolicy",
]
