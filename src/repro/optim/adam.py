"""Adam optimizer with fp32 master state.

The optimizer operates on *flat 1-D buffers*, not on model parameters
directly: ZeRO partitions hand each rank a slice of the flattened fp32
master weights and its matching moment slices, and updates must be
computable on any such slice.  Keeping the update elementwise (which
Adam is) makes the sliced update bit-identical to the unsliced one —
the property that lets UCP repartition optimizer state freely.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np


@dataclasses.dataclass
class AdamParamState:
    """Adam state for one flat buffer (or one slice of one)."""

    exp_avg: np.ndarray
    exp_avg_sq: np.ndarray
    step: int = 0

    @classmethod
    def zeros(cls, numel: int) -> "AdamParamState":
        """Fresh state for a buffer of ``numel`` elements."""
        return cls(
            exp_avg=np.zeros(numel, dtype=np.float32),
            exp_avg_sq=np.zeros(numel, dtype=np.float32),
        )

    def clone(self) -> "AdamParamState":
        """Deep copy."""
        return AdamParamState(
            exp_avg=self.exp_avg.copy(),
            exp_avg_sq=self.exp_avg_sq.copy(),
            step=self.step,
        )


class Adam:
    """Elementwise Adam with decoupled weight decay (AdamW-style).

    Hyperparameters default to the paper's Table 4 values
    (beta1=0.9, beta2=0.95, weight_decay=0.1).
    """

    def __init__(
        self,
        lr: float = 3e-4,
        beta1: float = 0.9,
        beta2: float = 0.95,
        eps: float = 1e-8,
        weight_decay: float = 0.1,
    ) -> None:
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.lr = lr
        self.beta1 = np.float32(beta1)
        self.beta2 = np.float32(beta2)
        self.eps = np.float32(eps)
        self.weight_decay = np.float32(weight_decay)

    def step(
        self,
        params: np.ndarray,
        grads: np.ndarray,
        state: AdamParamState,
        lr: float = None,
    ) -> None:
        """Update ``params`` in place from ``grads``, advancing ``state``.

        Args:
            params: flat fp32 master weights (mutated).
            grads: flat fp32 gradients, same length.
            state: the buffer's Adam state (mutated).
            lr: per-step learning rate override (LR schedules).
        """
        if params.shape != grads.shape:
            raise ValueError(
                f"params shape {params.shape} != grads shape {grads.shape}"
            )
        if params.shape != state.exp_avg.shape:
            raise ValueError(
                f"params shape {params.shape} != state shape "
                f"{state.exp_avg.shape}"
            )
        effective_lr = np.float32(self.lr if lr is None else lr)
        state.step += 1
        t = state.step
        state.exp_avg *= self.beta1
        state.exp_avg += (np.float32(1.0) - self.beta1) * grads
        state.exp_avg_sq *= self.beta2
        state.exp_avg_sq += (np.float32(1.0) - self.beta2) * grads * grads
        bias1 = np.float32(1.0) - self.beta1 ** np.float32(t)
        bias2 = np.float32(1.0) - self.beta2 ** np.float32(t)
        m_hat = state.exp_avg / bias1
        v_hat = state.exp_avg_sq / bias2
        if self.weight_decay > 0:
            params -= effective_lr * self.weight_decay * params
        params -= effective_lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def hyperparameters(self) -> Dict[str, float]:
        """JSON-friendly hyperparameter record (stored in checkpoints)."""
        return {
            "lr": float(self.lr),
            "beta1": float(self.beta1),
            "beta2": float(self.beta2),
            "eps": float(self.eps),
            "weight_decay": float(self.weight_decay),
        }

    @classmethod
    def from_hyperparameters(cls, payload: Dict[str, float]) -> "Adam":
        """Inverse of :meth:`hyperparameters`."""
        return cls(
            lr=payload["lr"],
            beta1=payload["beta1"],
            beta2=payload["beta2"],
            eps=payload["eps"],
            weight_decay=payload["weight_decay"],
        )
