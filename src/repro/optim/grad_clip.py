"""Global gradient-norm clipping.

The global norm is computed over *all* shards of the model — under any
parallelism strategy each rank contributes its local sum of squares and
the total is all-reduced — so clipping is identical across topologies
(up to float accumulation order), keeping loss curves comparable.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np


def global_grad_norm(grads: Iterable[np.ndarray]) -> float:
    """L2 norm over the concatenation of all gradient arrays."""
    total = np.float64(0.0)
    for grad in grads:
        g = np.asarray(grad, dtype=np.float32)
        total += np.float64(np.sum(g.astype(np.float64) ** 2))
    return float(np.sqrt(total))


def clip_grad_norm(grads: List[np.ndarray], max_norm: float) -> float:
    """Scale gradients in place so their global norm is <= ``max_norm``.

    Returns:
        The pre-clip global norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    norm = global_grad_norm(grads)
    if norm > max_norm:
        scale = np.float32(max_norm / (norm + 1e-6))
        for grad in grads:
            grad *= scale
    return norm
