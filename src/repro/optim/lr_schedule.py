"""Learning-rate schedules.

The schedule is a pure function of the global step, which checkpoints
record; resuming from UCP at step *t* therefore continues the schedule
exactly where the source run left off.
"""

from __future__ import annotations

import math


class ConstantLRSchedule:
    """A fixed learning rate."""

    def __init__(self, lr: float) -> None:
        self.lr = lr

    def lr_at(self, step: int) -> float:
        """LR for a global step (0-based)."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        return self.lr


class CosineLRSchedule:
    """Linear warmup followed by cosine decay to a floor (Table 4 style)."""

    def __init__(
        self,
        max_lr: float,
        min_lr: float,
        warmup_steps: int,
        total_steps: int,
    ) -> None:
        if warmup_steps < 0 or total_steps <= 0:
            raise ValueError("warmup_steps must be >= 0 and total_steps > 0")
        if warmup_steps >= total_steps:
            raise ValueError(
                f"warmup ({warmup_steps}) must be shorter than total "
                f"({total_steps})"
            )
        if min_lr > max_lr:
            raise ValueError(f"min_lr {min_lr} > max_lr {max_lr}")
        self.max_lr = max_lr
        self.min_lr = min_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps

    def lr_at(self, step: int) -> float:
        """LR for a global step (0-based)."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.max_lr * (step + 1) / self.warmup_steps
        if step >= self.total_steps:
            return self.min_lr
        progress = (step - self.warmup_steps) / max(
            1, self.total_steps - self.warmup_steps
        )
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.max_lr - self.min_lr) * cosine
