"""Mixed-precision training policy and dynamic loss scaling.

The model computes with fp16/bf16 *working copies* of the fp32 master
weights; UCP checkpoints only the fp32 masters, which is why a run can
switch between fp16 and bf16 MPT across a resume (paper §3.1).  After a
UCP load, the updated fp32 flat buffer is re-broadcast into the working
copies (the paper's ``fp16_partitioned_groups_flat`` rebroadcast).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.tensor.dtypes import DType, FP32, cast, dtype_from_name


@dataclasses.dataclass
class MixedPrecisionPolicy:
    """Which dtype the model computes in; masters are always fp32."""

    compute_dtype: DType = FP32

    def working_copy(self, master: np.ndarray) -> np.ndarray:
        """Produce the model-side copy of a master tensor."""
        return cast(master, self.compute_dtype)

    def to_dict(self) -> Dict[str, str]:
        """JSON-friendly record for checkpoints."""
        return {"compute_dtype": self.compute_dtype.name}

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "MixedPrecisionPolicy":
        """Inverse of :meth:`to_dict`."""
        return cls(compute_dtype=dtype_from_name(payload["compute_dtype"]))


class LossScaler:
    """Dynamic loss scaling for fp16 training.

    Scales the loss before backward; if any gradient overflows (inf/nan),
    the step is skipped and the scale halves.  After ``growth_interval``
    clean steps the scale doubles.  bf16/fp32 runs use scale 1.
    """

    def __init__(
        self,
        init_scale: float = 2.0**16,
        growth_interval: int = 2000,
        min_scale: float = 1.0,
        max_scale: float = 2.0**24,
    ) -> None:
        if init_scale < min_scale:
            raise ValueError("init_scale below min_scale")
        self.scale = float(init_scale)
        self.growth_interval = growth_interval
        self.min_scale = min_scale
        self.max_scale = max_scale
        self._clean_steps = 0

    def scale_loss_grad(self, grad: np.ndarray) -> np.ndarray:
        """Scale the loss gradient before backward."""
        return grad * np.float32(self.scale)

    def unscale(self, grad: np.ndarray) -> np.ndarray:
        """Remove the scale from accumulated gradients."""
        return grad / np.float32(self.scale)

    def check_overflow(self, grad: np.ndarray) -> bool:
        """True if the gradient contains inf or nan."""
        return not bool(np.isfinite(grad).all())

    def update(self, found_overflow: bool) -> None:
        """Advance the dynamic scale after a step attempt."""
        if found_overflow:
            self.scale = max(self.min_scale, self.scale / 2.0)
            self._clean_steps = 0
        else:
            self._clean_steps += 1
            if self._clean_steps >= self.growth_interval:
                self.scale = min(self.max_scale, self.scale * 2.0)
                self._clean_steps = 0

    def state_dict(self) -> Dict[str, float]:
        """Checkpointable state."""
        return {"scale": self.scale, "clean_steps": self._clean_steps}

    def load_state_dict(self, payload: Dict[str, float]) -> None:
        """Inverse of :meth:`state_dict`."""
        self.scale = float(payload["scale"])
        self._clean_steps = int(payload["clean_steps"])
