"""Parallelism strategies over the simulated cluster.

Implements the four axes the paper transforms between — tensor-slicing
parallelism (TP), pipeline parallelism (PP), ZeRO-style data parallelism
(stages 0-3), and sequence parallelism (SP) — with checkpoint-accurate
state layouts: fused variable-size QKV fragments, expert-tensor
fragments, vocab-padded embeddings, and aligned flat fp32 partitions.
"""

from repro.parallel.sharding import (
    EvenFragment,
    ExpertFragment,
    ExpertParallelFragment,
    Fragmenter,
    FusedSectionsFragment,
    VocabFragment,
)
from repro.parallel.tp import ShardSpec, build_shard_specs
from repro.parallel.pp import StagePlan, build_stage_plan
from repro.parallel.layout import ModelParallelLayout, RankShardLayout
from repro.parallel.zero import ZeroOptimizer, ZeroPartition
from repro.parallel.engine import TrainingEngine, TrainStepResult
from repro.parallel.schedule import (
    ScheduleReport,
    analytic_bubble_fraction,
    simulate_1f1b,
    simulate_gpipe,
)
from repro.parallel.memory import MemoryEstimate, estimate_rank_memory, fits_budget

__all__ = [
    "EvenFragment",
    "ExpertFragment",
    "ExpertParallelFragment",
    "Fragmenter",
    "FusedSectionsFragment",
    "VocabFragment",
    "ShardSpec",
    "build_shard_specs",
    "StagePlan",
    "build_stage_plan",
    "ModelParallelLayout",
    "RankShardLayout",
    "ZeroOptimizer",
    "ZeroPartition",
    "TrainingEngine",
    "TrainStepResult",
    "ScheduleReport",
    "analytic_bubble_fraction",
    "simulate_1f1b",
    "simulate_gpipe",
    "MemoryEstimate",
    "estimate_rank_memory",
    "fits_budget",
]
