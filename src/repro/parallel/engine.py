"""The 3D-parallel training engine.

One :class:`TrainingEngine` simulates a complete distributed training
job: a model replicated/sharded over the (TP, PP, DP, SP) grid, a
ZeRO-partitioned Adam, mixed precision, LR schedule, gradient clipping,
and a deterministic data stream.  Compute executes once on the logical
model (the simulation holds all ranks in-process); *state* — the thing
checkpoints persist — is maintained in the exact per-rank sharded
layouts the real systems use.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.data.corpus import SyntheticCorpus
from repro.data.dataloader import DataLoader
from repro.dist.cluster import Cluster
from repro.dist.topology import ParallelConfig, RankCoord
from repro.models.builder import build_transformer
from repro.models.configs import ModelConfig
from repro.optim.adam import Adam
from repro.optim.grad_clip import clip_grad_norm
from repro.optim.lr_schedule import ConstantLRSchedule
from repro.optim.mixed_precision import LossScaler, MixedPrecisionPolicy
from repro.parallel.layout import ModelParallelLayout
from repro.parallel.zero import ZeroOptimizer


@dataclasses.dataclass(frozen=True)
class TrainStepResult:
    """Outcome of one training step."""

    step: int
    loss: float
    grad_norm: float
    lr: float
    skipped: bool = False


class TrainingEngine:
    """A distributed training job under one parallelism strategy."""

    def __init__(
        self,
        model_cfg: ModelConfig,
        parallel_cfg: ParallelConfig,
        seed: int = 0,
        data_seed: int = 1234,
        global_batch_size: int = 8,
        seq_len: int = 32,
        adam: Optional[Adam] = None,
        lr_schedule=None,
        mp_policy: Optional[MixedPrecisionPolicy] = None,
        grad_clip: float = 1.0,
        micro_batches: int = 1,
    ) -> None:
        if global_batch_size % parallel_cfg.dp != 0:
            raise ValueError(
                f"global batch {global_batch_size} must divide across "
                f"dp={parallel_cfg.dp}"
            )
        per_replica = global_batch_size // parallel_cfg.dp
        if micro_batches < 1 or per_replica % micro_batches != 0:
            raise ValueError(
                f"per-replica batch {per_replica} must split into "
                f"micro_batches={micro_batches} equal micro-batches"
            )
        self.micro_batches = micro_batches
        self.model_cfg = model_cfg
        self.parallel_cfg = parallel_cfg
        self.seed = seed
        self.data_seed = data_seed
        self.global_batch_size = global_batch_size
        self.seq_len = seq_len
        self.grad_clip = grad_clip

        self.cluster = Cluster(parallel_cfg)
        self.model = build_transformer(model_cfg, seed=seed)
        self.layout = ModelParallelLayout(model_cfg, parallel_cfg)
        self._check_layout_covers_model()
        # static proof that every rank's ZeRO partition slices tile its
        # flat buffer exactly (raises LayoutLintError otherwise) — the
        # same invariant gen_ucp_metadata asserts on the target side
        self.layout.validate()

        self.adam = adam if adam is not None else Adam()
        self.zero = ZeroOptimizer(self.layout, self.adam)
        self.zero.initialize_from(self.model.state_dict())
        self.lr_schedule = (
            lr_schedule if lr_schedule is not None else ConstantLRSchedule(self.adam.lr)
        )
        self.mp_policy = mp_policy if mp_policy is not None else MixedPrecisionPolicy()
        self.loss_scaler = LossScaler() if self.mp_policy.compute_dtype.name == "fp16" else None

        corpus = SyntheticCorpus(model_cfg.vocab_size, seq_len, seed=data_seed)
        self.loader = DataLoader(corpus, global_batch_size, dp_world=parallel_cfg.dp)

        self.iteration = 0
        self.loss_history: List[float] = []
        self.sync_model_from_masters()

    def _check_layout_covers_model(self) -> None:
        """Every model parameter must have a shard spec, and vice versa."""
        model_names = {name for name, _ in self.model.named_parameters()}
        spec_names = set(self.layout.shard_specs)
        if model_names != spec_names:
            missing = sorted(model_names - spec_names)
            extra = sorted(spec_names - model_names)
            raise RuntimeError(
                f"shard specs out of sync with model: missing={missing}, "
                f"extra={extra}"
            )
        for name, param in self.model.named_parameters():
            spec = self.layout.spec(name)
            if tuple(param.shape) != spec.logical_shape:
                raise RuntimeError(
                    f"spec shape {spec.logical_shape} != model shape "
                    f"{param.shape} for {name!r}"
                )

    def _trace_dp_collective(self, op: str, coord, numel: int) -> None:
        """Log an accounted DP collective into the race-detector trace.

        The engine accounts DP traffic analytically (one record per
        model-parallel coordinate) rather than through ProcessGroup
        calls, so those collectives must be mirrored into the trace by
        hand for the ordering check to see them.
        """
        pp_stage, sp_rank, tp_rank = coord
        rank = self.cluster.topology.rank(
            RankCoord(tp=tp_rank, pp=pp_stage, dp=0, sp=sp_rank)
        )
        group = self.cluster.group_for("dp", rank)
        self.cluster.trace.record(op, group.name, group.ranks, numel)

    def _sanitize_dp_boundary(self, op: str, coord, arrays) -> None:
        """Run the analytically-modelled DP collective's per-rank result
        buffers through the memory sanitizer (UCP025).

        The engine never routes DP traffic through ProcessGroup, so its
        gradient/parameter sync would otherwise be invisible to the
        sanitizer: each dp rank's persistent partition arrays stand in
        for the buffers the collective would land in.
        """
        from repro.dist.collectives import sanitize_boundary

        pp_stage, sp_rank, tp_rank = coord
        rank = self.cluster.topology.rank(
            RankCoord(tp=tp_rank, pp=pp_stage, dp=0, sp=sp_rank)
        )
        group = self.cluster.group_for("dp", rank)
        sanitize_boundary(op, [], arrays, group=(group.name, group.ranks))

    def sync_model_from_masters(self) -> None:
        """Refresh model working weights from the fp32 masters (the
        paper's rebroadcast into ``fp16_partitioned_groups_flat``)."""
        masters = self.zero.consolidated_tensors("fp32")
        for name, param in self.model.named_parameters():
            param.data[...] = self.mp_policy.working_copy(masters[name])

    def train_step(self) -> TrainStepResult:
        """Run one full training step (all ranks), return the metrics."""
        self.cluster.check_world_alive()
        step = self.iteration
        lr = self.lr_schedule.lr_at(step)
        dp = self.parallel_cfg.dp

        from repro.nn.dropout import set_dropout_context

        set_dropout_context(self.seed, step)
        self.model.zero_grad()
        losses = []
        for d in range(dp):
            batch = self.loader.replica_batch(step, d)
            # pipeline-style gradient accumulation: equal micro-batches,
            # grads summed then averaged with the DP divisor below
            micro_size = batch.num_samples // self.micro_batches
            for m in range(self.micro_batches):
                lo, hi = m * micro_size, (m + 1) * micro_size
                losses.append(
                    self.model.loss_and_backward(
                        batch.inputs[lo:hi], batch.targets[lo:hi]
                    )
                )
        loss = float(np.mean(np.asarray(losses, dtype=np.float64)))

        grads: Dict[str, np.ndarray] = {}
        overflow = False
        inv_dp = np.float32(1.0 / (dp * self.micro_batches))
        for name, param in self.model.named_parameters():
            if param.grad is None:
                raise RuntimeError(f"parameter {name!r} received no gradient")
            grad = param.grad * inv_dp
            if self.loss_scaler is not None and self.loss_scaler.check_overflow(grad):
                overflow = True
            grads[name] = grad

        if overflow:
            self.loss_scaler.update(True)
            self.iteration += 1
            self.loss_history.append(loss)
            return TrainStepResult(step=step, loss=loss, grad_norm=float("inf"),
                                   lr=lr, skipped=True)

        # account the DP gradient all-reduce per model-parallel rank
        if dp > 1:
            for coord in self.layout.mp_coords():
                numel = self.layout.rank_layout(*coord).flat_numel
                self.cluster.tracker.record(
                    "all_reduce", dp, 2 * (dp - 1) * numel * 4 // dp
                )
                self._trace_dp_collective("all_reduce", coord, numel)
                self._sanitize_dp_boundary(
                    "all_reduce",
                    coord,
                    [
                        self.zero.partitions[coord][d].state.exp_avg
                        for d in range(dp)
                    ],
                )

        grad_norm = clip_grad_norm(list(grads.values()), self.grad_clip)
        self.zero.apply_grads(grads, lr)

        # account the ZeRO parameter all-gather per model-parallel rank
        if dp > 1 and self.parallel_cfg.zero_stage >= 1:
            for coord in self.layout.mp_coords():
                numel = self.layout.rank_layout(*coord).flat_numel
                self.cluster.tracker.record("all_gather", dp, numel * 4)
                self._trace_dp_collective("all_gather", coord, numel)
                self._sanitize_dp_boundary(
                    "all_gather",
                    coord,
                    [self.zero.partitions[coord][d].fp32 for d in range(dp)],
                )

        self.sync_model_from_masters()
        if self.loss_scaler is not None:
            self.loss_scaler.update(False)
        self.iteration += 1
        self.loss_history.append(loss)
        return TrainStepResult(step=step, loss=loss, grad_norm=grad_norm, lr=lr)

    def train(self, num_steps: int) -> List[TrainStepResult]:
        """Run ``num_steps`` consecutive steps."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be >= 0, got {num_steps}")
        return [self.train_step() for _ in range(num_steps)]

    def evaluate_loss(self, step: Optional[int] = None) -> float:
        """LM loss on the (deterministic) batch of a step, without training."""
        from repro.nn.dropout import dropout_disabled

        eval_step = self.iteration if step is None else step
        batch = self.loader.global_batch(eval_step)
        with dropout_disabled():
            return self.model.loss(batch.inputs, batch.targets)

    HOLDOUT_OFFSET = 1_000_000
    """Step offset of the held-out stream (never reached by training)."""

    def evaluate_perplexity(self, num_batches: int = 4) -> float:
        """Perplexity on a held-out slice of the synthetic stream.

        The corpus is keyed by step, so batches at ``HOLDOUT_OFFSET``
        and beyond are disjoint from anything training has seen —
        a validation set without storing one.
        """
        from repro.nn.dropout import dropout_disabled

        if num_batches < 1:
            raise ValueError(f"num_batches must be >= 1, got {num_batches}")
        losses = []
        with dropout_disabled():
            for i in range(num_batches):
                batch = self.loader.global_batch(self.HOLDOUT_OFFSET + i)
                losses.append(self.model.loss(batch.inputs, batch.targets))
        return float(np.exp(np.mean(losses)))

    # --- checkpoint integration (lazy imports avoid cycles) ---

    def save_checkpoint(
        self, directory: str, optimizer_layout: str = "flat"
    ) -> "object":
        """Persist a standard distributed checkpoint.

        Args:
            directory: checkpoint root.
            optimizer_layout: "flat" (DeepSpeed-style ZeRO partitions)
                or "per_param" (Megatron-classic per-tensor states;
                zero_stage=0 only).
        """
        from repro.ckpt.saver import save_distributed_checkpoint

        return save_distributed_checkpoint(
            self, directory, optimizer_layout=optimizer_layout
        )

    def load_checkpoint(self, directory: str, tag: Optional[str] = None) -> None:
        """Resume from a distributed checkpoint.

        Raises :class:`repro.ckpt.errors.CheckpointIncompatibleError`
        when the checkpoint's parallelism strategy or world size differs
        from this engine's (the Fig 1 failure mode).
        """
        from repro.ckpt.loader import load_distributed_checkpoint

        load_distributed_checkpoint(self, directory, tag=tag)

    def load_universal(self, ucp_dir: str) -> None:
        """Resume from a UCP checkpoint under *this* engine's topology."""
        from repro.core.loader import load_ucp_into_engine

        load_ucp_into_engine(self, ucp_dir)
