"""Model-parallel state layout: the single source of truth for where
every parameter fragment lives.

For a (model config, parallel config) pair, :class:`ModelParallelLayout`
computes, per model-parallel rank (pp stage × sp rank × tp rank):

* the ordered list of parameter shards that rank owns (TP sharding via
  :mod:`repro.parallel.tp`, PP ownership via :mod:`repro.parallel.pp`);
* the flat fp32 buffer layout — offsets, alignment padding, and the
  equal-size partitions ZeRO distributes across data-parallel ranks.

Both the training engine (to build its optimizer state) and UCP's
``GenUcpMetadata`` (to compute a *target* partition map) use this class,
which is what makes source and target layouts provably consistent.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.parallel.pp import StagePlan, build_stage_plan
from repro.parallel.tp import PATTERN_FRAGMENT, ShardSpec, build_shard_specs
from repro.tensor.flat import DEFAULT_ALIGNMENT


@dataclasses.dataclass(frozen=True)
class ShardEntry:
    """One parameter shard inside a rank's flat buffer."""

    name: str
    shard_shape: Tuple[int, ...]
    offset: int

    @property
    def numel(self) -> int:
        """Elements in the shard."""
        n = 1
        for d in self.shard_shape:
            n *= d
        return n

    @property
    def end(self) -> int:
        """One past the shard's last flat element."""
        return self.offset + self.numel


@dataclasses.dataclass(frozen=True)
class PartitionSlice:
    """Intersection of one parameter shard with one DP partition.

    Attributes:
        name: parameter name.
        partition: dp partition index.
        local_start / local_end: element range inside the partition.
        shard_start / shard_end: element range inside the flattened shard.
    """

    name: str
    partition: int
    local_start: int
    local_end: int
    shard_start: int
    shard_end: int


class RankShardLayout:
    """Flat-buffer layout for one model-parallel rank."""

    def __init__(
        self,
        pp_stage: int,
        sp_rank: int,
        tp_rank: int,
        entries: List[ShardEntry],
        dp_degree: int,
        alignment: int = DEFAULT_ALIGNMENT,
    ) -> None:
        self.pp_stage = pp_stage
        self.sp_rank = sp_rank
        self.tp_rank = tp_rank
        self.entries = entries
        self.dp_degree = dp_degree
        self.alignment = alignment
        self._by_name = {e.name: e for e in entries}
        payload = entries[-1].end if entries else 0
        unit = alignment * dp_degree
        self.flat_numel = ((payload + unit - 1) // unit) * unit if payload else 0
        self.padding = self.flat_numel - payload
        self.partition_numel = self.flat_numel // dp_degree if dp_degree else 0

    @property
    def payload_numel(self) -> int:
        """Flat length excluding alignment padding."""
        return self.flat_numel - self.padding

    def entry(self, name: str) -> ShardEntry:
        """Shard entry for a parameter name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"parameter {name!r} not owned by pp={self.pp_stage} "
                f"sp={self.sp_rank} tp={self.tp_rank}"
            ) from None

    def owns(self, name: str) -> bool:
        """Whether this rank's buffer contains the parameter."""
        return name in self._by_name

    def partition_slices(self, name: str) -> List[PartitionSlice]:
        """How one shard scatters across the DP partitions.

        A ZeRO partition boundary can cut a parameter anywhere, so a
        shard may span several partitions; this returns the pieces in
        ascending order.
        """
        e = self.entry(name)
        out: List[PartitionSlice] = []
        size = self.partition_numel
        if size == 0:
            return out
        first = e.offset // size
        last = (e.end - 1) // size if e.numel else first
        for part in range(first, last + 1):
            p_start, p_end = part * size, (part + 1) * size
            start = max(e.offset, p_start)
            end = min(e.end, p_end)
            if start >= end:
                continue
            out.append(
                PartitionSlice(
                    name=name,
                    partition=part,
                    local_start=start - p_start,
                    local_end=end - p_start,
                    shard_start=start - e.offset,
                    shard_end=end - e.offset,
                )
            )
        return out

    def slices_in_partition(self, partition: int) -> List[PartitionSlice]:
        """All parameter pieces inside one DP partition, in flat order."""
        if not 0 <= partition < self.dp_degree:
            raise IndexError(
                f"partition {partition} out of range (dp={self.dp_degree})"
            )
        out: List[PartitionSlice] = []
        for e in self.entries:
            for ps in self.partition_slices(e.name):
                if ps.partition == partition:
                    out.append(ps)
        return out


class ModelParallelLayout:
    """Layouts for every model-parallel rank of a training configuration."""

    def __init__(
        self,
        model_cfg: ModelConfig,
        parallel_cfg: ParallelConfig,
        alignment: int = DEFAULT_ALIGNMENT,
    ) -> None:
        self.model_cfg = model_cfg
        self.parallel_cfg = parallel_cfg
        self.alignment = alignment
        self.shard_specs: Dict[str, ShardSpec] = build_shard_specs(
            model_cfg, expert_parallel=parallel_cfg.expert_parallel
        )
        names = list(self.shard_specs)
        self.stage_plan: StagePlan = build_stage_plan(model_cfg, names, parallel_cfg.pp)
        self._ranks: Dict[Tuple[int, int, int], RankShardLayout] = {}
        for pp_stage in range(parallel_cfg.pp):
            stage_params = self.stage_plan.params_of_stage(pp_stage)
            for sp_rank in range(parallel_cfg.sp):
                for tp_rank in range(parallel_cfg.tp):
                    entries: List[ShardEntry] = []
                    offset = 0
                    for name in stage_params:
                        spec = self.shard_specs[name]
                        shape = spec.shard_shape(parallel_cfg.tp)
                        entry = ShardEntry(name=name, shard_shape=shape, offset=offset)
                        entries.append(entry)
                        offset = entry.end
                    self._ranks[(pp_stage, sp_rank, tp_rank)] = RankShardLayout(
                        pp_stage=pp_stage,
                        sp_rank=sp_rank,
                        tp_rank=tp_rank,
                        entries=entries,
                        dp_degree=parallel_cfg.dp,
                        alignment=alignment,
                    )

    def rank_layout(self, pp_stage: int, sp_rank: int, tp_rank: int) -> RankShardLayout:
        """Layout for one model-parallel rank."""
        try:
            return self._ranks[(pp_stage, sp_rank, tp_rank)]
        except KeyError:
            raise IndexError(
                f"(pp={pp_stage}, sp={sp_rank}, tp={tp_rank}) not on grid "
                f"{self.parallel_cfg.describe()}"
            ) from None

    def mp_rank_index(self, pp_stage: int, sp_rank: int, tp_rank: int) -> int:
        """Flat model-parallel rank index (matches Topology ordering)."""
        cfg = self.parallel_cfg
        return (pp_stage * cfg.sp + sp_rank) * cfg.tp + tp_rank

    def mp_coords(self) -> List[Tuple[int, int, int]]:
        """All (pp, sp, tp) coordinates in mp-rank order."""
        cfg = self.parallel_cfg
        return [
            (pp, sp, tp)
            for pp in range(cfg.pp)
            for sp in range(cfg.sp)
            for tp in range(cfg.tp)
        ]

    def owners_of(self, name: str) -> List[Tuple[int, int, int]]:
        """Every (pp, sp, tp) coordinate whose buffer holds ``name``."""
        return [coord for coord in self.mp_coords() if self._ranks[coord].owns(name)]

    def spec(self, name: str) -> ShardSpec:
        """Shard spec for a parameter name."""
        try:
            return self.shard_specs[name]
        except KeyError:
            raise KeyError(f"unknown parameter {name!r}") from None

    def is_tp_sharded(self, name: str) -> bool:
        """Whether TP actually fragments this parameter (degree > 1)."""
        return (
            self.parallel_cfg.tp > 1
            and self.spec(name).pattern == PATTERN_FRAGMENT
        )
