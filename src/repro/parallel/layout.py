"""Model-parallel state layout: the single source of truth for where
every parameter fragment lives.

For a (model config, parallel config) pair, :class:`ModelParallelLayout`
computes, per model-parallel rank (pp stage × sp rank × tp rank):

* the ordered list of parameter shards that rank owns (TP sharding via
  :mod:`repro.parallel.tp`, PP ownership via :mod:`repro.parallel.pp`);
* the flat fp32 buffer layout — offsets, alignment padding, and the
  equal-size partitions ZeRO distributes across data-parallel ranks.

Both the training engine (to build its optimizer state) and UCP's
``GenUcpMetadata`` (to compute a *target* partition map) use this class,
which is what makes source and target layouts provably consistent.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.parallel.pp import StagePlan, build_stage_plan
from repro.parallel.tp import PATTERN_FRAGMENT, ShardSpec, build_shard_specs
from repro.tensor.flat import DEFAULT_ALIGNMENT


@dataclasses.dataclass(frozen=True)
class ShardEntry:
    """One parameter shard inside a rank's flat buffer."""

    name: str
    shard_shape: Tuple[int, ...]
    offset: int

    @property
    def numel(self) -> int:
        """Elements in the shard."""
        n = 1
        for d in self.shard_shape:
            n *= d
        return n

    @property
    def end(self) -> int:
        """One past the shard's last flat element."""
        return self.offset + self.numel


@dataclasses.dataclass(frozen=True)
class PartitionSlice:
    """Intersection of one parameter shard with one DP partition.

    Attributes:
        name: parameter name.
        partition: dp partition index.
        local_start / local_end: element range inside the partition.
        shard_start / shard_end: element range inside the flattened shard.
    """

    name: str
    partition: int
    local_start: int
    local_end: int
    shard_start: int
    shard_end: int


class RankShardLayout:
    """Flat-buffer layout for one model-parallel rank."""

    def __init__(
        self,
        pp_stage: int,
        sp_rank: int,
        tp_rank: int,
        entries: List[ShardEntry],
        dp_degree: int,
        alignment: int = DEFAULT_ALIGNMENT,
    ) -> None:
        self.pp_stage = pp_stage
        self.sp_rank = sp_rank
        self.tp_rank = tp_rank
        self.entries = entries
        self.dp_degree = dp_degree
        self.alignment = alignment
        self._by_name = {e.name: e for e in entries}
        payload = entries[-1].end if entries else 0
        unit = alignment * dp_degree
        self.flat_numel = ((payload + unit - 1) // unit) * unit if payload else 0
        self.padding = self.flat_numel - payload
        self.partition_numel = self.flat_numel // dp_degree if dp_degree else 0

    @property
    def payload_numel(self) -> int:
        """Flat length excluding alignment padding."""
        return self.flat_numel - self.padding

    def entry(self, name: str) -> ShardEntry:
        """Shard entry for a parameter name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"parameter {name!r} not owned by pp={self.pp_stage} "
                f"sp={self.sp_rank} tp={self.tp_rank}"
            ) from None

    def owns(self, name: str) -> bool:
        """Whether this rank's buffer contains the parameter."""
        return name in self._by_name

    def partition_slices(self, name: str) -> List[PartitionSlice]:
        """How one shard scatters across the DP partitions.

        A ZeRO partition boundary can cut a parameter anywhere, so a
        shard may span several partitions; this returns the pieces in
        ascending order.
        """
        e = self.entry(name)
        out: List[PartitionSlice] = []
        size = self.partition_numel
        if size == 0:
            return out
        first = e.offset // size
        last = (e.end - 1) // size if e.numel else first
        for part in range(first, last + 1):
            p_start, p_end = part * size, (part + 1) * size
            start = max(e.offset, p_start)
            end = min(e.end, p_end)
            if start >= end:
                continue
            out.append(
                PartitionSlice(
                    name=name,
                    partition=part,
                    local_start=start - p_start,
                    local_end=end - p_start,
                    shard_start=start - e.offset,
                    shard_end=end - e.offset,
                )
            )
        return out

    def slices_in_partition(self, partition: int) -> List[PartitionSlice]:
        """All parameter pieces inside one DP partition, in flat order."""
        if not 0 <= partition < self.dp_degree:
            raise IndexError(
                f"partition {partition} out of range (dp={self.dp_degree})"
            )
        out: List[PartitionSlice] = []
        for e in self.entries:
            for ps in self.partition_slices(e.name):
                if ps.partition == partition:
                    out.append(ps)
        return out

    def tiling_diagnostics(self) -> List["Diagnostic"]:
        """Statically prove the partition slices tile the flat buffer.

        Checks, from metadata alone: shard entries pack the payload
        region contiguously (no gaps, no overlaps), the alignment
        padding is exactly the round-up to ``alignment * dp``, the DP
        partitions split the padded buffer evenly, and the union of all
        partition slices covers ``[0, payload)`` exactly once with
        nothing extending into the padding tail.  Returns structured
        diagnostics (empty when the layout is sound).
        """
        from repro.analysis.diagnostics import error

        where = f"pp={self.pp_stage}.sp={self.sp_rank}.tp={self.tp_rank}"
        out: List = []
        cursor = 0
        for e in sorted(self.entries, key=lambda e: e.offset):
            if e.offset > cursor:
                out.append(error(
                    "UCP006",
                    f"flat buffer gap: [{cursor}, {e.offset}) owned by no "
                    f"parameter before {e.name!r}",
                    location=where,
                ))
            elif e.offset < cursor:
                out.append(error(
                    "UCP005",
                    f"shard entries overlap: {e.name!r} starts at "
                    f"{e.offset} inside the previous entry (ends {cursor})",
                    location=where,
                ))
            cursor = max(cursor, e.end)
        payload = cursor

        unit = self.alignment * self.dp_degree
        expected_flat = ((payload + unit - 1) // unit) * unit if payload else 0
        if self.flat_numel != expected_flat:
            out.append(error(
                "UCP003",
                f"flat extent {self.flat_numel} is not payload {payload} "
                f"rounded up to alignment*dp = {unit}",
                location=where,
            ))
        if self.padding != self.flat_numel - payload:
            out.append(error(
                "UCP003",
                f"recorded padding {self.padding} != flat {self.flat_numel} "
                f"- payload {payload}",
                location=where,
            ))
        if self.dp_degree and self.partition_numel * self.dp_degree != self.flat_numel:
            out.append(error(
                "UCP011",
                f"partitions {self.partition_numel} x dp {self.dp_degree} "
                f"!= flat extent {self.flat_numel}",
                location=where,
            ))
            return out  # slice arithmetic below would be garbage

        # union of all partition slices must cover [0, payload) exactly
        intervals = []
        size = self.partition_numel
        for e in self.entries:
            for ps in self.partition_slices(e.name):
                start = ps.partition * size + ps.local_start
                end = ps.partition * size + ps.local_end
                intervals.append((start, end, ps.name))
        intervals.sort()
        cursor = 0
        for start, end, name in intervals:
            if start > cursor:
                out.append(error(
                    "UCP006",
                    f"partition slices leave flat range [{cursor}, {start}) "
                    f"uncovered (next slice: {name!r})",
                    location=where,
                ))
            elif start < cursor:
                out.append(error(
                    "UCP005",
                    f"partition slice of {name!r} [{start}, {end}) overlaps "
                    f"previously assigned flat range (covered to {cursor})",
                    location=where,
                ))
            cursor = max(cursor, end)
        if cursor != payload:
            if cursor < payload:
                out.append(error(
                    "UCP006",
                    f"partition slices cover only [0, {cursor}) of payload "
                    f"{payload}",
                    location=where,
                ))
            else:
                out.append(error(
                    "UCP005",
                    f"partition slices extend to {cursor}, past payload "
                    f"{payload} into the alignment padding",
                    location=where,
                ))
        return out


class ModelParallelLayout:
    """Layouts for every model-parallel rank of a training configuration."""

    def __init__(
        self,
        model_cfg: ModelConfig,
        parallel_cfg: ParallelConfig,
        alignment: int = DEFAULT_ALIGNMENT,
    ) -> None:
        self.model_cfg = model_cfg
        self.parallel_cfg = parallel_cfg
        self.alignment = alignment
        self.shard_specs: Dict[str, ShardSpec] = build_shard_specs(
            model_cfg, expert_parallel=parallel_cfg.expert_parallel
        )
        names = list(self.shard_specs)
        self.stage_plan: StagePlan = build_stage_plan(model_cfg, names, parallel_cfg.pp)
        self._ranks: Dict[Tuple[int, int, int], RankShardLayout] = {}
        for pp_stage in range(parallel_cfg.pp):
            stage_params = self.stage_plan.params_of_stage(pp_stage)
            for sp_rank in range(parallel_cfg.sp):
                for tp_rank in range(parallel_cfg.tp):
                    entries: List[ShardEntry] = []
                    offset = 0
                    for name in stage_params:
                        spec = self.shard_specs[name]
                        shape = spec.shard_shape(parallel_cfg.tp)
                        entry = ShardEntry(name=name, shard_shape=shape, offset=offset)
                        entries.append(entry)
                        offset = entry.end
                    self._ranks[(pp_stage, sp_rank, tp_rank)] = RankShardLayout(
                        pp_stage=pp_stage,
                        sp_rank=sp_rank,
                        tp_rank=tp_rank,
                        entries=entries,
                        dp_degree=parallel_cfg.dp,
                        alignment=alignment,
                    )

    def tiling_diagnostics(self) -> List["Diagnostic"]:
        """Tiling diagnostics across every model-parallel rank."""
        out: List = []
        for coord in self.mp_coords():
            out.extend(self._ranks[coord].tiling_diagnostics())
        return out

    def validate(self) -> None:
        """Assert every rank's partition slices tile its flat buffer.

        Statically proves, for each model-parallel rank, that the shard
        entries pack contiguously, alignment padding is exact, and the
        ZeRO partition slices cover the payload region exactly once.
        Called by both the training engine and ``gen_ucp_metadata`` so
        source and target layouts are held to the same invariant.

        Raises:
            repro.analysis.diagnostics.LayoutLintError: with the full
                diagnostic list when any rank's tiling is unsound.
        """
        diagnostics = self.tiling_diagnostics()
        if diagnostics:
            from repro.analysis.diagnostics import LayoutLintError, LintReport

            raise LayoutLintError(LintReport(
                subject=f"layout {self.parallel_cfg.describe()}",
                diagnostics=diagnostics,
            ))

    def rank_layout(self, pp_stage: int, sp_rank: int, tp_rank: int) -> RankShardLayout:
        """Layout for one model-parallel rank."""
        try:
            return self._ranks[(pp_stage, sp_rank, tp_rank)]
        except KeyError:
            raise IndexError(
                f"(pp={pp_stage}, sp={sp_rank}, tp={tp_rank}) not on grid "
                f"{self.parallel_cfg.describe()}"
            ) from None

    def mp_rank_index(self, pp_stage: int, sp_rank: int, tp_rank: int) -> int:
        """Flat model-parallel rank index (matches Topology ordering)."""
        cfg = self.parallel_cfg
        return (pp_stage * cfg.sp + sp_rank) * cfg.tp + tp_rank

    def mp_coords(self) -> List[Tuple[int, int, int]]:
        """All (pp, sp, tp) coordinates in mp-rank order."""
        cfg = self.parallel_cfg
        return [
            (pp, sp, tp)
            for pp in range(cfg.pp)
            for sp in range(cfg.sp)
            for tp in range(cfg.tp)
        ]

    def owners_of(self, name: str) -> List[Tuple[int, int, int]]:
        """Every (pp, sp, tp) coordinate whose buffer holds ``name``."""
        return [coord for coord in self.mp_coords() if self._ranks[coord].owns(name)]

    def spec(self, name: str) -> ShardSpec:
        """Shard spec for a parameter name."""
        try:
            return self.shard_specs[name]
        except KeyError:
            raise KeyError(f"unknown parameter {name!r}") from None

    def is_tp_sharded(self, name: str) -> bool:
        """Whether TP actually fragments this parameter (degree > 1)."""
        return (
            self.parallel_cfg.tp > 1
            and self.spec(name).pattern == PATTERN_FRAGMENT
        )
