"""Per-rank memory estimation for candidate topologies.

Implements the ZeRO paper's memory arithmetic over this repository's
exact layouts: a rank holds its working-precision parameter shard, a
gradient buffer, its slice of the fp32 master + Adam moments (divided
by DP for stages >= 1), and activations bounded by the pipeline
schedule (1F1B keeps at most ``min(m, p)`` micro-batches live).

The elastic resume planner uses this to reject targets that do not fit
a per-GPU memory budget — resuming onto fewer GPUs is only possible if
the resharded state still fits, a constraint the paper's elastic
scenarios live under.
"""

from __future__ import annotations

import dataclasses

from repro.dist.topology import ParallelConfig
from repro.models.configs import ModelConfig
from repro.parallel.layout import ModelParallelLayout

_FP32 = 4
_MASTER_AND_MOMENTS = 12  # fp32 master + exp_avg + exp_avg_sq


@dataclasses.dataclass(frozen=True)
class MemoryEstimate:
    """Bytes per rank, broken down by component."""

    params_bytes: int
    grads_bytes: int
    optimizer_bytes: int
    activations_bytes: int

    @property
    def total_bytes(self) -> int:
        """Sum of all components."""
        return (
            self.params_bytes
            + self.grads_bytes
            + self.optimizer_bytes
            + self.activations_bytes
        )

    @property
    def total_gb(self) -> float:
        """Total in gigabytes."""
        return self.total_bytes / 1e9


def estimate_rank_memory(
    model_cfg: ModelConfig,
    parallel_cfg: ParallelConfig,
    micro_batch_size: int = 1,
    seq_len: int = 2048,
    micro_batches: int = 4,
    compute_bytes_per_element: int = 2,
) -> MemoryEstimate:
    """Worst-rank memory for one (model, topology) pair.

    Args:
        model_cfg / parallel_cfg: the candidate configuration.
        micro_batch_size: samples per micro-batch per replica.
        seq_len: training sequence length.
        micro_batches: gradient-accumulation depth (bounds 1F1B
            in-flight activations).
        compute_bytes_per_element: 2 for fp16/bf16 working weights,
            4 for fp32 training.
    """
    layout = ModelParallelLayout(model_cfg, parallel_cfg)
    worst_payload = max(
        layout.rank_layout(*coord).payload_numel for coord in layout.mp_coords()
    )
    dp = parallel_cfg.dp

    if parallel_cfg.zero_stage == 3:
        params = worst_payload * compute_bytes_per_element // dp
    else:
        params = worst_payload * compute_bytes_per_element

    if parallel_cfg.zero_stage >= 2:
        grads = worst_payload * compute_bytes_per_element // dp
    else:
        grads = worst_payload * compute_bytes_per_element

    if parallel_cfg.zero_stage >= 1:
        optimizer = worst_payload * _MASTER_AND_MOMENTS // dp
    else:
        optimizer = worst_payload * _MASTER_AND_MOMENTS

    # activations: hidden states per layer of this rank's pipeline
    # stage, times the schedule's in-flight micro-batch bound.  The
    # constant 8 approximates attention + MLP intermediates relative to
    # one hidden-state tensor (post-checkpointing regime).
    layers_per_stage = -(-model_cfg.num_layers // parallel_cfg.pp)
    hidden_per_token = model_cfg.hidden * compute_bytes_per_element
    per_micro = micro_batch_size * seq_len * hidden_per_token * layers_per_stage * 8
    if parallel_cfg.tp > 1:
        per_micro //= parallel_cfg.tp
    in_flight = min(micro_batches, parallel_cfg.pp)
    activations = per_micro * in_flight

    return MemoryEstimate(
        params_bytes=int(params),
        grads_bytes=int(grads),
        optimizer_bytes=int(optimizer),
        activations_bytes=int(activations),
    )


def fits_budget(
    model_cfg: ModelConfig,
    parallel_cfg: ParallelConfig,
    budget_gb: float,
    **estimate_kwargs,
) -> bool:
    """Whether the worst rank stays under a per-GPU memory budget."""
    if budget_gb <= 0:
        raise ValueError(f"budget must be positive, got {budget_gb}")
    estimate = estimate_rank_memory(model_cfg, parallel_cfg, **estimate_kwargs)
    return estimate.total_gb <= budget_gb
