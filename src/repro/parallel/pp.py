"""Pipeline-parallel stage assignment.

Blocks partition contiguously across stages; the embedding (and learned
positional table) live on stage 0, the final norm and LM head on the
last stage.  With a *tied* LM head and PP > 1 the word embedding is
replicated on both the first and last stage (the Megatron convention —
both copies receive the full embedding gradient and stay identical),
which is exactly the paper's "replicated_params with PP degree > 1"
case.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.models.configs import ModelConfig


@dataclasses.dataclass(frozen=True)
class StagePlan:
    """Which pipeline stage(s) own each parameter.

    Attributes:
        num_stages: PP degree.
        stage_blocks: block index ranges per stage, [(start, end)).
        owners: parameter name -> tuple of owning stages (usually one;
            two for a tied embedding replicated on first + last stage).
    """

    num_stages: int
    stage_blocks: Tuple[Tuple[int, int], ...]
    owners: Dict[str, Tuple[int, ...]]

    def stages_of(self, name: str) -> Tuple[int, ...]:
        """Owning stages for a parameter name."""
        try:
            return self.owners[name]
        except KeyError:
            raise KeyError(f"parameter {name!r} not in stage plan") from None

    def params_of_stage(self, stage: int) -> List[str]:
        """Parameter names owned by one stage, in canonical order."""
        if not 0 <= stage < self.num_stages:
            raise IndexError(f"stage {stage} out of range (pp={self.num_stages})")
        return [name for name, stages in self.owners.items() if stage in stages]

    def is_replicated_across_pp(self, name: str) -> bool:
        """True when more than one stage owns the parameter."""
        return len(self.stages_of(name)) > 1


def _split_blocks(num_layers: int, num_stages: int) -> List[Tuple[int, int]]:
    """Contiguous block ranges per stage, near-equal sizes."""
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    if num_layers < num_stages:
        raise ValueError(
            f"cannot place {num_layers} layers on {num_stages} pipeline stages"
        )
    base, extra = divmod(num_layers, num_stages)
    ranges, start = [], 0
    for stage in range(num_stages):
        size = base + (1 if stage < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def build_stage_plan(
    cfg: ModelConfig, param_names: List[str], num_stages: int
) -> StagePlan:
    """Assign every parameter of a model to its pipeline stage(s).

    Args:
        cfg: model configuration.
        param_names: dotted names in canonical (definition) order.
        num_stages: PP degree.
    """
    ranges = _split_blocks(cfg.num_layers, num_stages)
    block_stage = {}
    for stage, (start, end) in enumerate(ranges):
        for block in range(start, end):
            block_stage[block] = stage

    last = num_stages - 1
    owners: Dict[str, Tuple[int, ...]] = {}
    for name in param_names:
        if name.startswith("blocks."):
            block = int(name.split(".")[1])
            owners[name] = (block_stage[block],)
        elif name == "embedding.weight":
            if cfg.tied_head and num_stages > 1:
                owners[name] = (0, last)
            else:
                owners[name] = (0,)
        elif name == "pos_embedding.weight":
            owners[name] = (0,)
        elif name in ("final_norm.weight", "final_norm.bias") or name == "lm_head":
            owners[name] = (last,)
        else:
            raise KeyError(f"parameter {name!r} has no pipeline placement rule")
    return StagePlan(
        num_stages=num_stages,
        stage_blocks=tuple(ranges),
        owners=owners,
    )
