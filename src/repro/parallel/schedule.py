"""Pipeline-parallel execution schedules (GPipe and 1F1B).

The training engine executes layers sequentially (the simulation has
all ranks in-process), but pipeline *timing* still matters for the
benchmarks: bubble overhead determines how expensive a pipeline flush
around a checkpoint is, and activation memory bounds the micro-batch
count.  This module simulates the two standard schedules tick by tick
and reports per-stage timelines, bubble fraction, and peak in-flight
micro-batches — matching the analytic bubble formula
``(p - 1) / (m + p - 1)``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple


@dataclasses.dataclass(frozen=True)
class ScheduleSlot:
    """One cell of a stage's timeline."""

    tick: int
    kind: str  # "F" forward, "B" backward, "idle"
    micro_batch: int  # -1 for idle


@dataclasses.dataclass(frozen=True)
class ScheduleReport:
    """Result of simulating one schedule."""

    name: str
    num_stages: int
    num_micro_batches: int
    total_ticks: int
    bubble_fraction: float
    peak_in_flight: int
    timelines: Dict[int, List[ScheduleSlot]]

    def stage_utilization(self, stage: int) -> float:
        """Fraction of ticks a stage spends computing."""
        slots = self.timelines[stage]
        busy = sum(1 for s in slots if s.kind != "idle")
        return busy / len(slots) if slots else 0.0


def _finalize(
    name: str,
    num_stages: int,
    num_micro: int,
    timelines: Dict[int, List[ScheduleSlot]],
    peak_in_flight: int,
) -> ScheduleReport:
    total_ticks = max(len(t) for t in timelines.values())
    for stage, slots in timelines.items():
        while len(slots) < total_ticks:
            slots.append(ScheduleSlot(len(slots), "idle", -1))
    busy = sum(
        1 for slots in timelines.values() for s in slots if s.kind != "idle"
    )
    bubble = 1.0 - busy / (total_ticks * num_stages)
    return ScheduleReport(
        name=name,
        num_stages=num_stages,
        num_micro_batches=num_micro,
        total_ticks=total_ticks,
        bubble_fraction=bubble,
        peak_in_flight=peak_in_flight,
        timelines=timelines,
    )


def simulate_gpipe(num_stages: int, num_micro_batches: int) -> ScheduleReport:
    """GPipe: all forwards, then all backwards (flush in between).

    Forward and backward passes are modelled as equal one-tick units;
    with unit ticks the bubble fraction is the classic
    ``(p - 1) / (m + p - 1)`` per phase.
    """
    if num_stages < 1 or num_micro_batches < 1:
        raise ValueError("stages and micro-batches must be >= 1")
    p, m = num_stages, num_micro_batches
    timelines: Dict[int, List[ScheduleSlot]] = {s: [] for s in range(p)}

    def pad_to(stage: int, tick: int) -> None:
        slots = timelines[stage]
        while len(slots) < tick:
            slots.append(ScheduleSlot(len(slots), "idle", -1))

    # forward wave: micro-batch i reaches stage s at tick s + i
    for stage in range(p):
        for micro in range(m):
            tick = stage + micro
            pad_to(stage, tick)
            timelines[stage].append(ScheduleSlot(tick, "F", micro))
    # backward wave starts after the last forward completes
    backward_start = p + m - 1
    for stage in reversed(range(p)):
        for micro in range(m):
            tick = backward_start + (p - 1 - stage) + micro
            pad_to(stage, tick)
            timelines[stage].append(ScheduleSlot(tick, "B", micro))

    # GPipe keeps every micro-batch's activations live until its backward
    peak_in_flight = m
    return _finalize("gpipe", p, m, timelines, peak_in_flight)


def simulate_1f1b(num_stages: int, num_micro_batches: int) -> ScheduleReport:
    """1F1B (PipeDream-flush): warmup forwards, then alternate 1F/1B.

    Stage ``s`` runs ``p - s`` warmup forwards, then strictly
    alternates one-forward-one-backward, bounding live activations at
    ``min(m, p - s)`` instead of GPipe's ``m``.
    """
    if num_stages < 1 or num_micro_batches < 1:
        raise ValueError("stages and micro-batches must be >= 1")
    p, m = num_stages, num_micro_batches

    # event-driven simulation with dependency tracking
    forward_done: Dict[Tuple[int, int], int] = {}   # (stage, micro) -> tick
    backward_done: Dict[Tuple[int, int], int] = {}
    timelines: Dict[int, List[ScheduleSlot]] = {s: [] for s in range(p)}
    peak = 0

    # per-stage instruction streams
    streams: Dict[int, List[Tuple[str, int]]] = {}
    for stage in range(p):
        warmup = min(m, p - stage)
        ops: List[Tuple[str, int]] = [("F", i) for i in range(warmup)]
        next_f, next_b = warmup, 0
        while next_b < m:
            if next_f < m:
                ops.append(("B", next_b)); next_b += 1
                ops.append(("F", next_f)); next_f += 1
            else:
                ops.append(("B", next_b)); next_b += 1
        streams[stage] = ops

    cursors = {s: 0 for s in range(p)}
    clocks = {s: 0 for s in range(p)}
    live = {s: 0 for s in range(p)}
    remaining = sum(len(ops) for ops in streams.values())
    while remaining:
        progressed = False
        for stage in range(p):
            if cursors[stage] >= len(streams[stage]):
                continue
            kind, micro = streams[stage][cursors[stage]]
            if kind == "F":
                ready = 0 if stage == 0 else forward_done.get((stage - 1, micro))
            else:
                ready = (
                    forward_done.get((stage, micro))
                    if stage == p - 1
                    else backward_done.get((stage + 1, micro))
                )
                if ready is None or forward_done.get((stage, micro)) is None:
                    ready = None
            if ready is None:
                continue
            start = max(clocks[stage], ready)
            # fill idle gap
            while len(timelines[stage]) < start:
                timelines[stage].append(
                    ScheduleSlot(len(timelines[stage]), "idle", -1)
                )
            timelines[stage].append(ScheduleSlot(start, kind, micro))
            clocks[stage] = start + 1
            if kind == "F":
                forward_done[(stage, micro)] = start + 1
                live[stage] += 1
            else:
                backward_done[(stage, micro)] = start + 1
                live[stage] -= 1
            peak = max(peak, live[stage])
            cursors[stage] += 1
            remaining -= 1
            progressed = True
        if not progressed:
            raise RuntimeError("1F1B schedule deadlocked (bug)")

    return _finalize("1f1b", p, m, timelines, peak)


def analytic_bubble_fraction(num_stages: int, num_micro_batches: int) -> float:
    """The textbook pipeline bubble: (p - 1) / (m + p - 1)."""
    p, m = num_stages, num_micro_batches
    return (p - 1) / (m + p - 1)


def analytic_interleaved_bubble(
    num_stages: int, num_micro_batches: int, virtual_stages: int
) -> float:
    """Megatron's interleaved 1F1B bubble: (p - 1) / (v * m + p - 1).

    Splitting each rank's layers into ``v`` virtual chunks shrinks the
    warmup/teardown bubble by v at the cost of v times the pipeline
    communication — the trade Megatron-LM ships as the interleaved
    schedule.
    """
    if virtual_stages < 1:
        raise ValueError(f"virtual_stages must be >= 1, got {virtual_stages}")
    p, m = num_stages, num_micro_batches
    return (p - 1) / (virtual_stages * m + p - 1)
