"""Fragmenters: how a consolidated tensor splits into TP shards.

These classes are the executable form of the paper's ``fragment_params``
sub-patterns (Fig 5): even splits along one dimension, fused sections
with *variable sizes* (the GQA QKV case), per-expert 3-D tensors, and
padded vocabulary tables.  Each fragmenter is a bijection between one
consolidated tensor and its ``degree`` shards: ``shard`` produces rank
views, ``join`` reassembles, and round-tripping is exact — a property
the test suite checks exhaustively.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np


class Fragmenter:
    """Base interface for fragment sub-patterns."""

    kind: str = "abstract"

    def shard(self, full: np.ndarray, degree: int, rank: int) -> np.ndarray:
        """The ``rank``-th of ``degree`` shards of the consolidated tensor."""
        raise NotImplementedError

    def join(self, shards: Sequence[np.ndarray]) -> np.ndarray:
        """Reassemble the consolidated tensor from all shards, in order."""
        raise NotImplementedError

    def shard_shape(self, full_shape: Tuple[int, ...], degree: int) -> Tuple[int, ...]:
        """Shape of each shard for a consolidated shape."""
        raise NotImplementedError

    def validate(self, full_shape: Tuple[int, ...], degree: int) -> None:
        """Raise ValueError if the shape cannot split ``degree`` ways."""
        self.shard_shape(full_shape, degree)

    def to_dict(self) -> Dict:
        """JSON form (stored in checkpoint sharding metadata)."""
        raise NotImplementedError

    @staticmethod
    def from_dict(payload: Dict) -> "Fragmenter":
        """Inverse of :meth:`to_dict` across all subclasses."""
        kind = payload["kind"]
        cls = _FRAGMENTER_KINDS.get(kind)
        if cls is None:
            raise KeyError(f"unknown fragmenter kind {kind!r}")
        return cls._from_dict(payload)


@dataclasses.dataclass(frozen=True)
class EvenFragment(Fragmenter):
    """Equal split along one dimension (plain row/column parallelism)."""

    dim: int

    kind = "even"

    def shard(self, full: np.ndarray, degree: int, rank: int) -> np.ndarray:
        self.validate(full.shape, degree)
        if not 0 <= rank < degree:
            raise IndexError(f"rank {rank} out of range for degree {degree}")
        return np.array_split(full, degree, axis=self.dim)[rank].copy()

    def join(self, shards: Sequence[np.ndarray]) -> np.ndarray:
        if not shards:
            raise ValueError("join of zero shards")
        return np.concatenate(list(shards), axis=self.dim)

    def shard_shape(self, full_shape: Tuple[int, ...], degree: int) -> Tuple[int, ...]:
        if self.dim >= len(full_shape):
            raise ValueError(f"dim {self.dim} out of range for shape {full_shape}")
        size = full_shape[self.dim]
        if size % degree != 0:
            raise ValueError(
                f"dim {self.dim} of size {size} not divisible by degree {degree}"
            )
        shape = list(full_shape)
        shape[self.dim] = size // degree
        return tuple(shape)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "dim": self.dim}

    @classmethod
    def _from_dict(cls, payload: Dict) -> "EvenFragment":
        return cls(dim=int(payload["dim"]))


@dataclasses.dataclass(frozen=True)
class FusedSectionsFragment(Fragmenter):
    """Variable-size fused sections split along one dimension.

    The GQA QKV case from the paper's Fig 5: the fused tensor is
    ``[q_size + k_size + v_size, hidden]``; each TP rank receives its
    slice of *each* section concatenated back together, so section sizes
    need not be equal (q_size != k_size when num_kv_heads < num_heads).
    """

    dim: int
    section_sizes: Tuple[int, ...]

    kind = "fused_sections"

    def __post_init__(self) -> None:
        if not self.section_sizes:
            raise ValueError("fused fragment needs at least one section")
        if any(s <= 0 for s in self.section_sizes):
            raise ValueError(f"section sizes must be positive: {self.section_sizes}")

    def _section_slices(self) -> List[Tuple[int, int]]:
        out, start = [], 0
        for size in self.section_sizes:
            out.append((start, start + size))
            start += size
        return out

    def shard(self, full: np.ndarray, degree: int, rank: int) -> np.ndarray:
        self.validate(full.shape, degree)
        if not 0 <= rank < degree:
            raise IndexError(f"rank {rank} out of range for degree {degree}")
        pieces = []
        for start, end in self._section_slices():
            section = np.take(full, range(start, end), axis=self.dim)
            pieces.append(np.array_split(section, degree, axis=self.dim)[rank])
        return np.concatenate(pieces, axis=self.dim)

    def join(self, shards: Sequence[np.ndarray]) -> np.ndarray:
        if not shards:
            raise ValueError("join of zero shards")
        degree = len(shards)
        per_rank_sizes = [s // degree for s in self.section_sizes]
        sections: List[List[np.ndarray]] = [[] for _ in self.section_sizes]
        for shard in shards:
            offset = 0
            for i, size in enumerate(per_rank_sizes):
                sections[i].append(
                    np.take(shard, range(offset, offset + size), axis=self.dim)
                )
                offset += size
        joined = [np.concatenate(parts, axis=self.dim) for parts in sections]
        return np.concatenate(joined, axis=self.dim)

    def shard_shape(self, full_shape: Tuple[int, ...], degree: int) -> Tuple[int, ...]:
        if self.dim >= len(full_shape):
            raise ValueError(f"dim {self.dim} out of range for shape {full_shape}")
        total = sum(self.section_sizes)
        if full_shape[self.dim] != total:
            raise ValueError(
                f"dim {self.dim} of size {full_shape[self.dim]} != section "
                f"total {total}"
            )
        for size in self.section_sizes:
            if size % degree != 0:
                raise ValueError(
                    f"section of size {size} not divisible by degree {degree}"
                )
        shape = list(full_shape)
        shape[self.dim] = total // degree
        return tuple(shape)

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "dim": self.dim,
            "section_sizes": list(self.section_sizes),
        }

    @classmethod
    def _from_dict(cls, payload: Dict) -> "FusedSectionsFragment":
        return cls(
            dim=int(payload["dim"]),
            section_sizes=tuple(int(s) for s in payload["section_sizes"]),
        )


@dataclasses.dataclass(frozen=True)
class ExpertFragment(Fragmenter):
    """MoE expert tensors: [n_experts, ...] sharded along a non-expert dim.

    The paper's other Fig 5 sub-pattern: a 3-dim expert weight
    ``[n_experts, hidden_out, hidden_in]`` with TP splitting every
    expert's ``hidden_out``.  Mechanically an even split, but the
    sub-pattern carries the expert axis so metadata (and validation)
    know dim 0 is experts, not a shardable feature dim.
    """

    expert_axis: int
    shard_dim: int

    kind = "expert"

    def __post_init__(self) -> None:
        if self.expert_axis == self.shard_dim:
            raise ValueError("cannot shard along the expert axis itself")

    def shard(self, full: np.ndarray, degree: int, rank: int) -> np.ndarray:
        self.validate(full.shape, degree)
        if not 0 <= rank < degree:
            raise IndexError(f"rank {rank} out of range for degree {degree}")
        return np.array_split(full, degree, axis=self.shard_dim)[rank].copy()

    def join(self, shards: Sequence[np.ndarray]) -> np.ndarray:
        if not shards:
            raise ValueError("join of zero shards")
        return np.concatenate(list(shards), axis=self.shard_dim)

    def shard_shape(self, full_shape: Tuple[int, ...], degree: int) -> Tuple[int, ...]:
        if max(self.expert_axis, self.shard_dim) >= len(full_shape):
            raise ValueError(
                f"axes ({self.expert_axis}, {self.shard_dim}) out of range "
                f"for shape {full_shape}"
            )
        size = full_shape[self.shard_dim]
        if size % degree != 0:
            raise ValueError(
                f"shard dim {self.shard_dim} of size {size} not divisible "
                f"by degree {degree}"
            )
        shape = list(full_shape)
        shape[self.shard_dim] = size // degree
        return tuple(shape)

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "expert_axis": self.expert_axis,
            "shard_dim": self.shard_dim,
        }

    @classmethod
    def _from_dict(cls, payload: Dict) -> "ExpertFragment":
        return cls(
            expert_axis=int(payload["expert_axis"]),
            shard_dim=int(payload["shard_dim"]),
        )


@dataclasses.dataclass(frozen=True)
class ExpertParallelFragment(Fragmenter):
    """Expert parallelism: whole experts distributed across ranks.

    The DeepSpeed-MoE layout (vs. the Fig 5 tensor-slicing layout that
    splits *inside* each expert): the [n_experts, ...] tensor splits
    along the expert axis itself, so each rank owns complete experts.
    Added as this reproduction's demonstration of the paper's claim
    that new parallelism patterns slot into the UCP language easily.
    """

    expert_axis: int = 0

    kind = "expert_parallel"

    def shard(self, full: np.ndarray, degree: int, rank: int) -> np.ndarray:
        self.validate(full.shape, degree)
        if not 0 <= rank < degree:
            raise IndexError(f"rank {rank} out of range for degree {degree}")
        return np.array_split(full, degree, axis=self.expert_axis)[rank].copy()

    def join(self, shards: Sequence[np.ndarray]) -> np.ndarray:
        if not shards:
            raise ValueError("join of zero shards")
        return np.concatenate(list(shards), axis=self.expert_axis)

    def shard_shape(self, full_shape: Tuple[int, ...], degree: int) -> Tuple[int, ...]:
        if self.expert_axis >= len(full_shape):
            raise ValueError(
                f"expert axis {self.expert_axis} out of range for shape "
                f"{full_shape}"
            )
        experts = full_shape[self.expert_axis]
        if experts % degree != 0:
            raise ValueError(
                f"{experts} experts not divisible across {degree} "
                f"expert-parallel ranks"
            )
        shape = list(full_shape)
        shape[self.expert_axis] = experts // degree
        return tuple(shape)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "expert_axis": self.expert_axis}

    @classmethod
    def _from_dict(cls, payload: Dict) -> "ExpertParallelFragment":
        return cls(expert_axis=int(payload["expert_axis"]))


@dataclasses.dataclass(frozen=True)
class VocabFragment(Fragmenter):
    """Vocab-parallel embedding: rows split evenly; table height includes
    Megatron's divisibility padding, which UCP later strips.

    Attributes:
        logical_rows: the unpadded vocabulary size, recorded so
            StripPadding knows how many rows are real.
    """

    logical_rows: int

    kind = "vocab"

    def shard(self, full: np.ndarray, degree: int, rank: int) -> np.ndarray:
        self.validate(full.shape, degree)
        if not 0 <= rank < degree:
            raise IndexError(f"rank {rank} out of range for degree {degree}")
        return np.array_split(full, degree, axis=0)[rank].copy()

    def join(self, shards: Sequence[np.ndarray]) -> np.ndarray:
        if not shards:
            raise ValueError("join of zero shards")
        return np.concatenate(list(shards), axis=0)

    def shard_shape(self, full_shape: Tuple[int, ...], degree: int) -> Tuple[int, ...]:
        rows = full_shape[0]
        if rows < self.logical_rows:
            raise ValueError(
                f"padded table has {rows} rows < logical vocab {self.logical_rows}"
            )
        if rows % degree != 0:
            raise ValueError(
                f"padded vocab {rows} not divisible by degree {degree}"
            )
        return (rows // degree,) + tuple(full_shape[1:])

    @property
    def padding_rows_of(self):
        """Callable: padded height -> number of padding rows."""
        return lambda padded: padded - self.logical_rows

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "logical_rows": self.logical_rows}

    @classmethod
    def _from_dict(cls, payload: Dict) -> "VocabFragment":
        return cls(logical_rows=int(payload["logical_rows"]))


_FRAGMENTER_KINDS = {
    cls.kind: cls
    for cls in (
        EvenFragment,
        FusedSectionsFragment,
        ExpertFragment,
        ExpertParallelFragment,
        VocabFragment,
    )
}
