"""Sequence parallelism (SP) semantics.

The paper's SP reference is DeepSpeed-Ulysses-style sequence
parallelism: the sequence dimension of *activations* splits across SP
ranks (with all-to-alls around attention), while **parameters are fully
replicated** across the SP group.  Since this simulation does not model
activation memory, SP's training math is identical to SP=1; what SP
changes — and what matters for checkpointing — is the *rank grid and
file layout*: an SP=2 run has twice the model-parallel ranks, each
persisting a replicated copy of its stage's parameters.

The paper's ``params_to_average`` pattern covers SP/TP variants where
some parameters (typically norms) are *updated independently* per rank
and must be averaged at consolidation time.  The engine exposes
``independent_replica_updates`` to produce genuinely divergent copies
for that pattern (used by the sub-pattern benchmarks); by default
replicas stay bit-identical and averaging is exact.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.dist.topology import ParallelConfig


def sp_replication_factor(cfg: ParallelConfig) -> int:
    """How many identical copies of each model shard SP creates."""
    return cfg.sp


def average_param_copies(copies: List[np.ndarray]) -> np.ndarray:
    """The ``params_to_average`` consolidation rule: elementwise mean.

    Reduction runs in ascending rank order (deterministic).
    """
    if not copies:
        raise ValueError("cannot average zero copies")
    shapes = {c.shape for c in copies}
    if len(shapes) != 1:
        raise ValueError(f"copies disagree on shape: {shapes}")
    total = copies[0].astype(np.float32, copy=True)
    for copy_ in copies[1:]:
        total = total + copy_.astype(np.float32)
    return total / np.float32(len(copies))


def ulysses_exchange(
    sequence_shards: List[np.ndarray],
    num_heads: int,
) -> List[np.ndarray]:
    """The DeepSpeed-Ulysses all-to-all: sequence-split -> head-split.

    Each SP rank holds a slice of the *sequence* for all heads
    ([seq/sp, heads, dim]); attention needs whole sequences per head,
    so an all-to-all re-partitions to [seq, heads/sp, dim].  Applying
    the exchange to the transpose layout inverts it — the test suite
    checks the round trip, which is why SP's parameters stay fully
    replicated: only activations move.

    Args:
        sequence_shards: per-rank arrays [seq_chunk, heads, dim].
        num_heads: total head count (must divide by the SP degree).
    """
    from repro.dist.collectives import all_to_all

    sp = len(sequence_shards)
    if sp == 0:
        raise ValueError("ulysses_exchange over an empty group")
    shard = np.asarray(sequence_shards[0])
    if shard.ndim != 3 or shard.shape[1] != num_heads:
        raise ValueError(
            f"expected [seq_chunk, heads={num_heads}, dim] shards, got "
            f"shape {shard.shape}"
        )
    if num_heads % sp != 0:
        raise ValueError(f"{num_heads} heads not divisible by sp={sp}")
    seq_chunk, _, dim = shard.shape
    heads_per_rank = num_heads // sp

    # reorder each rank's buffer so chunk j holds the heads destined
    # for rank j, then exchange
    flat = []
    for s in sequence_shards:
        arr = np.asarray(s, dtype=np.float32)
        # [seq_chunk, heads, dim] -> [sp, heads/sp, seq_chunk, dim]
        regrouped = arr.reshape(seq_chunk, sp, heads_per_rank, dim)
        flat.append(np.ascontiguousarray(regrouped.transpose(1, 0, 2, 3)).reshape(-1))
    exchanged = all_to_all(flat)
    out = []
    for received in exchanged:
        # chunks arrive in source-rank (= sequence) order
        blocks = received.reshape(sp, seq_chunk, heads_per_rank, dim)
        out.append(np.ascontiguousarray(blocks.reshape(sp * seq_chunk, heads_per_rank, dim)))
    return out


def perturb_copies_for_demo(
    base: np.ndarray, degree: int, scale: float = 1e-3, seed: int = 0
) -> Dict[int, np.ndarray]:
    """Deterministically divergent per-rank copies of one tensor.

    Used by tests and the sub-pattern benchmark to exercise
    ``params_to_average`` with copies that genuinely differ, the way
    independently-updated norm parameters would.
    """
    gen = np.random.default_rng(seed)
    return {
        rank: base + (gen.standard_normal(base.shape) * scale).astype(np.float32)
        for rank in range(degree)
    }
