"""Tensor-parallel sharding specs for every parameter of a model.

``build_shard_specs`` maps each dotted parameter name of a
:class:`TransformerLM` built from a :class:`ModelConfig` to a
:class:`ShardSpec` — the declarative record of *how* that parameter
partitions under TP (the Megatron-LM conventions: column-parallel
QKV/up projections, row-parallel out/down projections, vocab-parallel
embeddings, replicated norms).  The same specs become the source
pattern program that UCP's language consumes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.models.configs import ModelConfig
from repro.nn.embedding import padded_vocab_size
from repro.parallel.sharding import (
    EvenFragment,
    ExpertFragment,
    ExpertParallelFragment,
    Fragmenter,
    FusedSectionsFragment,
    VocabFragment,
)

PATTERN_REPLICATED = "replicated_params"
PATTERN_FRAGMENT = "fragment_params"
PATTERN_UNIQUE = "unique_params"
PATTERN_TO_AVERAGE = "params_to_average"

ALL_PATTERNS = (
    PATTERN_REPLICATED,
    PATTERN_FRAGMENT,
    PATTERN_UNIQUE,
    PATTERN_TO_AVERAGE,
)


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """How one parameter behaves under tensor parallelism.

    Attributes:
        pattern: one of the paper's Table 1 parameter patterns.
        fragmenter: the sub-pattern executing the split (fragment only).
        logical_shape: consolidated shape *including* any structural
            padding (e.g. padded vocab rows).
        unpadded_shape: consolidated shape with structural padding
            stripped — what the UCP atom stores.
    """

    pattern: str
    logical_shape: tuple
    unpadded_shape: tuple
    fragmenter: Optional[Fragmenter] = None

    def __post_init__(self) -> None:
        if self.pattern not in ALL_PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.pattern == PATTERN_FRAGMENT and self.fragmenter is None:
            raise ValueError("fragment_params requires a fragmenter")

    @property
    def has_padding(self) -> bool:
        """Whether the consolidated tensor carries structural padding."""
        return self.logical_shape != self.unpadded_shape

    def shard_shape(self, tp: int) -> tuple:
        """Per-rank shape under TP degree ``tp``."""
        if self.pattern != PATTERN_FRAGMENT or tp == 1:
            return self.logical_shape
        return self.fragmenter.shard_shape(self.logical_shape, tp)

    def to_dict(self) -> Dict:
        """JSON form for checkpoint metadata."""
        return {
            "pattern": self.pattern,
            "logical_shape": list(self.logical_shape),
            "unpadded_shape": list(self.unpadded_shape),
            "fragmenter": None if self.fragmenter is None else self.fragmenter.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ShardSpec":
        """Inverse of :meth:`to_dict`."""
        frag = payload.get("fragmenter")
        return cls(
            pattern=payload["pattern"],
            logical_shape=tuple(payload["logical_shape"]),
            unpadded_shape=tuple(payload["unpadded_shape"]),
            fragmenter=None if frag is None else Fragmenter.from_dict(frag),
        )


def build_shard_specs(
    cfg: ModelConfig, expert_parallel: bool = False
) -> Dict[str, ShardSpec]:
    """Shard specs for every parameter of a model config, keyed by name.

    Args:
        cfg: model configuration.
        expert_parallel: shard MoE expert tensors along the expert axis
            (whole experts per rank, DeepSpeed-MoE style) instead of
            slicing inside each expert (Fig 5 style).
    """
    specs: Dict[str, ShardSpec] = {}
    padded = padded_vocab_size(cfg.vocab_size, cfg.vocab_pad_to)
    hidden = cfg.hidden
    head_dim = cfg.head_dim
    q_size = cfg.num_heads * head_dim
    kv_size = cfg.num_kv_heads * head_dim
    qkv_out = q_size + 2 * kv_size
    use_bias = cfg.family in ("gpt3", "bloom")

    def replicated(name: str, shape: tuple) -> None:
        specs[name] = ShardSpec(PATTERN_REPLICATED, shape, shape)

    def fragment(name: str, shape: tuple, fragmenter: Fragmenter,
                 unpadded: Optional[tuple] = None) -> None:
        specs[name] = ShardSpec(
            PATTERN_FRAGMENT, shape, unpadded if unpadded else shape, fragmenter
        )

    fragment(
        "embedding.weight",
        (padded, hidden),
        VocabFragment(logical_rows=cfg.vocab_size),
        unpadded=(cfg.vocab_size, hidden),
    )
    if cfg.positional == "learned":
        replicated("pos_embedding.weight", (cfg.max_seq, hidden))
    if not cfg.tied_head:
        fragment(
            "lm_head",
            (padded, hidden),
            VocabFragment(logical_rows=cfg.vocab_size),
            unpadded=(cfg.vocab_size, hidden),
        )

    qkv_sections = FusedSectionsFragment(dim=0, section_sizes=(q_size, kv_size, kv_size))
    for layer in range(cfg.num_layers):
        prefix = f"blocks.{layer}"
        replicated(f"{prefix}.norm1.weight", (hidden,))
        replicated(f"{prefix}.norm2.weight", (hidden,))
        if cfg.norm == "layernorm":
            replicated(f"{prefix}.norm1.bias", (hidden,))
            replicated(f"{prefix}.norm2.bias", (hidden,))

        fragment(f"{prefix}.attn.qkv.weight", (qkv_out, hidden), qkv_sections)
        if use_bias:
            fragment(f"{prefix}.attn.qkv.bias", (qkv_out,), qkv_sections)
        fragment(f"{prefix}.attn.out.weight", (hidden, q_size), EvenFragment(dim=1))
        if use_bias:
            replicated(f"{prefix}.attn.out.bias", (hidden,))

        inter = cfg.intermediate
        if cfg.is_moe:
            e = cfg.num_experts
            replicated(f"{prefix}.ffn.router.proj.weight", (e, hidden))
            if expert_parallel:
                ep = ExpertParallelFragment(expert_axis=0)
                fragment(f"{prefix}.ffn.gate_weight", (e, inter, hidden), ep)
                fragment(f"{prefix}.ffn.up_weight", (e, inter, hidden), ep)
                fragment(f"{prefix}.ffn.down_weight", (e, hidden, inter), ep)
            else:
                fragment(
                    f"{prefix}.ffn.gate_weight",
                    (e, inter, hidden),
                    ExpertFragment(expert_axis=0, shard_dim=1),
                )
                fragment(
                    f"{prefix}.ffn.up_weight",
                    (e, inter, hidden),
                    ExpertFragment(expert_axis=0, shard_dim=1),
                )
                fragment(
                    f"{prefix}.ffn.down_weight",
                    (e, hidden, inter),
                    ExpertFragment(expert_axis=0, shard_dim=2),
                )
        elif cfg.activation == "swiglu":
            fragment(f"{prefix}.ffn.gate.weight", (inter, hidden), EvenFragment(dim=0))
            fragment(f"{prefix}.ffn.up.weight", (inter, hidden), EvenFragment(dim=0))
            fragment(f"{prefix}.ffn.down.weight", (hidden, inter), EvenFragment(dim=1))
        else:
            fragment(f"{prefix}.ffn.up.weight", (inter, hidden), EvenFragment(dim=0))
            if use_bias:
                fragment(f"{prefix}.ffn.up.bias", (inter,), EvenFragment(dim=0))
            fragment(f"{prefix}.ffn.down.weight", (hidden, inter), EvenFragment(dim=1))
            if use_bias:
                replicated(f"{prefix}.ffn.down.bias", (hidden,))

    replicated("final_norm.weight", (hidden,))
    if cfg.norm == "layernorm":
        replicated("final_norm.bias", (hidden,))
    return specs
