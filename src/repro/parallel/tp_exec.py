"""Tensor-parallel execution harness: compute through real shards.

The training engine computes on the logical (unsharded) model, because
TP compute is mathematically identical to unsharded compute up to
float accumulation order.  This module *proves* that for our layers by
executing forward passes the way Megatron ranks actually would — each
TP rank computing with only its shard, partial results combined
through the process-group collectives — and exposing the results for
equivalence checks and communication accounting.

Covered primitives:

* column-parallel linear (QKV/up projections): input replicated,
  output gathered along the feature dim;
* row-parallel linear (out/down projections): input split along the
  feature dim, partial outputs all-reduced;
* a column->activation->row MLP, the canonical Megatron block with a
  single all-reduce at the end.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.dist.process_group import ProcessGroup
from repro.nn import functional as F
from repro.parallel.sharding import EvenFragment


def column_parallel_linear(
    x: np.ndarray,
    weight: np.ndarray,
    group: ProcessGroup,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``y = x @ W.T + b`` with W split along its output dim.

    Every rank sees the full input; each computes its output slice;
    an all-gather along the feature dim reassembles ``y``.
    """
    tp = group.size
    frag = EvenFragment(dim=0)
    partials = []
    for rank in range(tp):
        w_shard = frag.shard(weight, tp, rank)
        y_shard = x @ w_shard.T
        if bias is not None:
            y_shard = y_shard + frag.shard(bias, tp, rank)
        partials.append(y_shard.astype(np.float32))
    return group.all_gather(partials, axis=-1)[0]


def row_parallel_linear(
    x: np.ndarray,
    weight: np.ndarray,
    group: ProcessGroup,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``y = x @ W.T + b`` with W split along its input dim.

    The input splits along its feature dim (each rank holds the slice
    matching its weight columns); partial products sum via all-reduce.
    The bias is added once, after the reduction — adding it per rank
    would count it ``tp`` times (a classic Megatron bug class).
    """
    tp = group.size
    w_frag = EvenFragment(dim=1)
    x_frag = EvenFragment(dim=x.ndim - 1)
    partials = []
    for rank in range(tp):
        w_shard = w_frag.shard(weight, tp, rank)
        x_shard = x_frag.shard(x, tp, rank)
        partials.append((x_shard @ w_shard.T).astype(np.float32))
    y = group.all_reduce(partials, op="sum")[0]
    if bias is not None:
        y = y + bias
    return y


def tensor_parallel_mlp(
    x: np.ndarray,
    up_weight: np.ndarray,
    down_weight: np.ndarray,
    group: ProcessGroup,
    activation: Callable[[np.ndarray], np.ndarray] = F.gelu,
    up_bias: Optional[np.ndarray] = None,
    down_bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The canonical Megatron MLP: column-parallel up, elementwise
    activation on each rank's slice, row-parallel down.

    Because the activation is elementwise and the up-projection's
    output slices align exactly with the down-projection's input
    slices, the *only* communication is the final all-reduce — the
    property that makes this pairing the standard TP block.
    """
    tp = group.size
    up_frag = EvenFragment(dim=0)
    down_frag = EvenFragment(dim=1)
    partials: List[np.ndarray] = []
    for rank in range(tp):
        u_shard = up_frag.shard(up_weight, tp, rank)
        hidden = x @ u_shard.T
        if up_bias is not None:
            hidden = hidden + up_frag.shard(up_bias, tp, rank)
        act = activation(hidden)
        d_shard = down_frag.shard(down_weight, tp, rank)
        partials.append((act @ d_shard.T).astype(np.float32))
    y = group.all_reduce(partials, op="sum")[0]
    if down_bias is not None:
        y = y + down_bias
    return y
