"""ZeRO-style partitioned optimizer state.

Each model-parallel rank's parameters flatten into one aligned fp32
buffer (``fp32_partitioned_groups_flat`` in DeepSpeed) which splits into
equal partitions across the data-parallel ranks.  Every DP rank owns the
fp32 master weights and Adam moments of *its* partition only, updates it
elementwise, and the updated partitions are all-gathered back into the
model's working weights.

Because Adam is elementwise, partitioned updates are bit-identical to an
unpartitioned update — the property that lets UCP re-partition optimizer
state across arbitrary DP widths without changing training math.

ZeRO stage semantics here:

* stage 0 — optimizer states replicated (checkpointed once, by dp 0);
* stage 1 — optimizer states partitioned across DP;
* stage 2 — same persistent state as stage 1 (stage 2 additionally
  partitions *gradients*, which are transient and never checkpointed);
* stage 3 — parameters themselves also partitioned: model-state
  checkpoints hold flat parameter partitions instead of full tensors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.optim.adam import Adam, AdamParamState
from repro.parallel.layout import ModelParallelLayout, RankShardLayout


class ZeroPartition:
    """One DP rank's slice of one model-parallel rank's flat state."""

    def __init__(self, numel: int) -> None:
        self.fp32 = np.zeros(numel, dtype=np.float32)
        self.state = AdamParamState.zeros(numel)

    @property
    def numel(self) -> int:
        """Partition length in elements."""
        return int(self.fp32.size)

    def clone(self) -> "ZeroPartition":
        """Deep copy (used by save paths and tests)."""
        out = ZeroPartition(self.numel)
        out.fp32[...] = self.fp32
        out.state = self.state.clone()
        return out


MpCoord = Tuple[int, int, int]
"""(pp_stage, sp_rank, tp_rank)."""


class ZeroOptimizer:
    """Partitioned Adam over every model-parallel rank's flat buffer."""

    def __init__(self, layout: ModelParallelLayout, adam: Optional[Adam] = None) -> None:
        self.layout = layout
        self.adam = adam if adam is not None else Adam()
        self.partitions: Dict[MpCoord, List[ZeroPartition]] = {}
        dp = layout.parallel_cfg.dp
        for coord in layout.mp_coords():
            rank_layout = layout.rank_layout(*coord)
            self.partitions[coord] = [
                ZeroPartition(rank_layout.partition_numel) for _ in range(dp)
            ]

    @property
    def global_step(self) -> int:
        """Optimizer step count (identical across all partitions)."""
        first = next(iter(self.partitions.values()))
        return first[0].state.step

    def _shard_full_tensor(
        self, name: str, full: np.ndarray, tp_rank: int
    ) -> np.ndarray:
        """The TP shard of a consolidated tensor for one tp rank."""
        spec = self.layout.spec(name)
        tp = self.layout.parallel_cfg.tp
        if spec.fragmenter is None or tp == 1:
            return np.asarray(full, dtype=np.float32)
        return np.asarray(
            spec.fragmenter.shard(full, tp, tp_rank), dtype=np.float32
        )

    def _flatten_for_rank(
        self, rank_layout: RankShardLayout, full_tensors: Dict[str, np.ndarray]
    ) -> np.ndarray:
        """Build one rank's flat buffer from consolidated tensors."""
        flat = np.zeros(rank_layout.flat_numel, dtype=np.float32)
        for entry in rank_layout.entries:
            shard = self._shard_full_tensor(
                entry.name, full_tensors[entry.name], rank_layout.tp_rank
            )
            if shard.shape != entry.shard_shape:
                raise ValueError(
                    f"shard of {entry.name!r} has shape {shard.shape}, "
                    f"layout expects {entry.shard_shape}"
                )
            flat[entry.offset : entry.end] = shard.reshape(-1)
        return flat

    def initialize_from(self, full_tensors: Dict[str, np.ndarray]) -> None:
        """Seed fp32 master partitions from consolidated model tensors."""
        dp = self.layout.parallel_cfg.dp
        for coord in self.layout.mp_coords():
            rank_layout = self.layout.rank_layout(*coord)
            flat = self._flatten_for_rank(rank_layout, full_tensors)
            size = rank_layout.partition_numel
            for d in range(dp):
                self.partitions[coord][d].fp32[...] = flat[d * size : (d + 1) * size]

    @staticmethod
    def _partition_array(partition: ZeroPartition, kind: str) -> np.ndarray:
        if kind == "fp32":
            return partition.fp32
        if kind == "exp_avg":
            return partition.state.exp_avg
        if kind == "exp_avg_sq":
            return partition.state.exp_avg_sq
        raise KeyError(
            f"unknown state kind {kind!r}; expected fp32/exp_avg/exp_avg_sq"
        )

    def full_flat(self, coord: MpCoord, kind: str = "fp32") -> np.ndarray:
        """Join one rank's partitions of one state kind into a flat buffer."""
        return np.concatenate(
            [self._partition_array(p, kind) for p in self.partitions[coord]]
        )

    def shard_tensors(self, coord: MpCoord, kind: str = "fp32") -> Dict[str, np.ndarray]:
        """One rank's shards of one state kind, unflattened to shard shapes."""
        rank_layout = self.layout.rank_layout(*coord)
        flat = self.full_flat(coord, kind)
        return {
            e.name: flat[e.offset : e.end].reshape(e.shard_shape).copy()
            for e in rank_layout.entries
        }

    def apply_grads(
        self,
        full_grads: Dict[str, np.ndarray],
        lr: float,
    ) -> None:
        """One optimizer step from consolidated (averaged) gradients.

        Each model-parallel rank shards the gradients exactly as its
        parameters are sharded, and each DP rank updates its partition.
        """
        dp = self.layout.parallel_cfg.dp
        for coord in self.layout.mp_coords():
            rank_layout = self.layout.rank_layout(*coord)
            grad_flat = self._flatten_for_rank(rank_layout, full_grads)
            size = rank_layout.partition_numel
            for d in range(dp):
                part = self.partitions[coord][d]
                self.adam.step(
                    part.fp32,
                    grad_flat[d * size : (d + 1) * size],
                    part.state,
                    lr=lr,
                )

    def consolidated_tensors(self, kind: str = "fp32") -> Dict[str, np.ndarray]:
        """Reassemble every parameter's state to its consolidated tensor.

        TP shards join via each parameter's fragmenter; parameters
        replicated across TP/PP/SP take the first owner's copy (owners
        are identical by construction — verified by tests).

        Args:
            kind: "fp32", "exp_avg", or "exp_avg_sq".
        """
        cfg = self.layout.parallel_cfg
        shard_cache: Dict[MpCoord, Dict[str, np.ndarray]] = {
            coord: self.shard_tensors(coord, kind)
            for coord in self.layout.mp_coords()
        }
        out: Dict[str, np.ndarray] = {}
        for name, spec in self.layout.shard_specs.items():
            stages = self.layout.stage_plan.stages_of(name)
            pp_stage = stages[0]
            if spec.fragmenter is not None and cfg.tp > 1:
                shards = [
                    shard_cache[(pp_stage, 0, tp)][name] for tp in range(cfg.tp)
                ]
                out[name] = spec.fragmenter.join(shards)
            else:
                out[name] = shard_cache[(pp_stage, 0, 0)][name]
        return out

    def verify_replica_consistency(self, atol: float = 0.0) -> None:
        """Assert that every replicated copy of every state is identical.

        Replicas exist across SP ranks, across TP ranks for replicated
        patterns, and across PP stages for tied embeddings.  Training
        math keeps them bit-equal; a divergence indicates a bug.
        """
        for kind in ("fp32", "exp_avg", "exp_avg_sq"):
            reference: Dict[str, np.ndarray] = {}
            for coord in self.layout.mp_coords():
                shards = self.shard_tensors(coord, kind)
                for name, value in shards.items():
                    spec = self.layout.spec(name)
                    key = name
                    if spec.fragmenter is not None and self.layout.parallel_cfg.tp > 1:
                        key = f"{name}@tp{coord[2]}"
                    if key in reference:
                        if not np.allclose(reference[key], value, atol=atol, rtol=0):
                            raise AssertionError(
                                f"replicated state {name!r} ({kind}) diverged "
                                f"at mp coord {coord}"
                            )
                    else:
                        reference[key] = value
