"""Storage substrate: serialization, object store, NVMe cost model.

Stands in for torch.save/torch.load + DeepNVMe: a compact binary tensor
container (``.npt``), a directory-backed object store with byte
accounting, and a calibrated NVMe timing model so benchmarks can report
simulated I/O time alongside wall-clock time.
"""

from repro.storage.serializer import deserialize, serialize, read_npt, write_npt
from repro.storage.store import ObjectStore
from repro.storage.nvme import NVMeModel, DEFAULT_NVME

__all__ = [
    "serialize",
    "deserialize",
    "read_npt",
    "write_npt",
    "ObjectStore",
    "NVMeModel",
    "DEFAULT_NVME",
]
