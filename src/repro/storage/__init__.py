"""Storage substrate: serialization, object store, NVMe cost model.

Stands in for torch.save/torch.load + DeepNVMe: a compact binary tensor
container (``.npt``), a directory-backed object store with atomic
commits, byte accounting, and injectable fault policies, and a
calibrated NVMe timing model so benchmarks can report simulated I/O
time alongside wall-clock time.
"""

from repro.storage.serializer import deserialize, serialize, read_npt, write_npt
from repro.storage.store import ObjectStore, sha256_hex
from repro.storage.nvme import NVMeModel, DEFAULT_NVME
from repro.storage.faults import (
    CrashAtWrite,
    FaultPolicy,
    InjectedCrash,
    LatencySpikes,
    RetryPolicy,
    TransientFaults,
    TransientIOError,
)

__all__ = [
    "serialize",
    "deserialize",
    "read_npt",
    "write_npt",
    "ObjectStore",
    "sha256_hex",
    "NVMeModel",
    "DEFAULT_NVME",
    "FaultPolicy",
    "InjectedCrash",
    "TransientIOError",
    "RetryPolicy",
    "CrashAtWrite",
    "TransientFaults",
    "LatencySpikes",
]
