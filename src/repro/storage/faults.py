"""Injectable IO fault policies for the object store.

A :class:`FaultPolicy` hooks every byte-level write and read the
:class:`~repro.storage.store.ObjectStore` performs.  The base policy
only counts operations (used to enumerate crash points); subclasses
inject the failure modes a production checkpointing system must
survive:

* :class:`CrashAtWrite` — the process dies at a chosen write boundary,
  optionally leaving a torn partial file (the bytes that reached disk
  before death).  Because the store writes through a temp file and an
  atomic rename, torn bytes only ever land in ``*.tmp`` files that no
  reader consults — that invariant is what the crash-matrix tests pin.
* :class:`TransientFaults` — the first N operations raise
  :class:`TransientIOError`; the store's :class:`RetryPolicy` absorbs
  them with exponential backoff (charged to simulated device time).
* :class:`LatencySpikes` — periodic slow requests add simulated
  seconds to the store's NVMe accounting, modelling a shared device
  under interference (pair with :meth:`NVMeModel.degraded`).

Policies are plugged in at construction time::

    store = ObjectStore(path, faults=CrashAtWrite(3, torn=True))
    save_distributed_checkpoint(engine, path, store=store)  # raises InjectedCrash
"""

from __future__ import annotations

import dataclasses
import pathlib


class InjectedCrash(RuntimeError):
    """Simulated process death at an IO boundary.

    Raised by fault policies to model a rank dying mid-checkpoint; the
    store makes no attempt to catch it, exactly like a real SIGKILL.
    """


class TransientIOError(OSError):
    """An injected transient IO failure (EIO-style); safe to retry."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How the store retries :class:`TransientIOError`.

    Attributes:
        max_attempts: total tries per operation (>= 1; 1 disables retry).
        backoff_s: simulated delay before the first retry.
        multiplier: exponential backoff factor between retries.
    """

    max_attempts: int = 3
    backoff_s: float = 0.002
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.multiplier < 1.0:
            raise ValueError("backoff_s must be >= 0 and multiplier >= 1")

    def delay_s(self, attempt: int) -> float:
        """Simulated backoff before retry number ``attempt`` (1-based)."""
        return self.backoff_s * self.multiplier ** (attempt - 1)


class FaultPolicy:
    """Base policy: observes every IO boundary, injects nothing.

    ``write_ops`` / ``read_ops`` count *attempts* (a retried operation
    counts each try), which is how tests enumerate the write boundaries
    of a save or conversion before replaying it with crashes.
    """

    def __init__(self) -> None:
        self.write_ops = 0
        self.read_ops = 0

    # --- hooks called by ObjectStore ---

    def on_write(self, rel_path: str, tmp_path: pathlib.Path, data: bytes) -> None:
        """Called before bytes are written (to ``tmp_path``, then renamed)."""
        self.write_ops += 1
        self._write_fault(self.write_ops, rel_path, tmp_path, data)

    def on_read(self, rel_path: str, path: pathlib.Path) -> None:
        """Called before bytes are read from ``path``."""
        self.read_ops += 1
        self._read_fault(self.read_ops, rel_path, path)

    def write_latency_s(self, rel_path: str, nbytes: int) -> float:
        """Extra simulated seconds to charge this write."""
        return 0.0

    def read_latency_s(self, rel_path: str, nbytes: int) -> float:
        """Extra simulated seconds to charge this read."""
        return 0.0

    # --- subclass extension points ---

    def _write_fault(
        self, op_index: int, rel_path: str, tmp_path: pathlib.Path, data: bytes
    ) -> None:
        pass

    def _read_fault(
        self, op_index: int, rel_path: str, path: pathlib.Path
    ) -> None:
        pass


class CrashAtWrite(FaultPolicy):
    """Die at the Nth write boundary (0-based across the store's life).

    Args:
        crash_at: index of the fatal write.
        torn: when True, half of the payload is flushed to the temp
            file before death — the bytes a kernel may have written out
            before the process was killed.  The final path is never
            touched: POSIX ``rename`` is atomic, so a commit either
            fully happens or not at all.
    """

    def __init__(self, crash_at: int, torn: bool = False) -> None:
        super().__init__()
        if crash_at < 0:
            raise ValueError("crash_at must be >= 0")
        self.crash_at = crash_at
        self.torn = torn
        self.crashed = False

    def _write_fault(
        self, op_index: int, rel_path: str, tmp_path: pathlib.Path, data: bytes
    ) -> None:
        if op_index - 1 != self.crash_at:
            return
        self.crashed = True
        if self.torn and data:
            tmp_path.write_bytes(data[: max(1, len(data) // 2)])
        raise InjectedCrash(
            f"injected crash at write boundary {self.crash_at} ({rel_path})"
        )


class TransientFaults(FaultPolicy):
    """The first N write / read attempts fail with :class:`TransientIOError`.

    Each retry consumes one failure, so an operation succeeds once the
    budget is exhausted — the canonical flaky-device profile for
    exercising the store's retry/backoff path.
    """

    def __init__(self, write_failures: int = 0, read_failures: int = 0) -> None:
        super().__init__()
        if write_failures < 0 or read_failures < 0:
            raise ValueError("failure counts must be >= 0")
        self.write_failures = write_failures
        self.read_failures = read_failures

    def _write_fault(
        self, op_index: int, rel_path: str, tmp_path: pathlib.Path, data: bytes
    ) -> None:
        if self.write_failures > 0:
            self.write_failures -= 1
            raise TransientIOError(f"injected transient write fault ({rel_path})")

    def _read_fault(
        self, op_index: int, rel_path: str, path: pathlib.Path
    ) -> None:
        if self.read_failures > 0:
            self.read_failures -= 1
            raise TransientIOError(f"injected transient read fault ({rel_path})")


class LatencySpikes(FaultPolicy):
    """Every ``every``-th operation takes ``spike_s`` extra simulated time.

    Models interference on a shared NVMe device; the spikes land in the
    store's ``simulated_write_s`` / ``simulated_read_s`` so cost-model
    benchmarks can study tail behaviour without real slow hardware.
    """

    def __init__(self, spike_s: float, every: int = 2) -> None:
        super().__init__()
        if spike_s < 0 or every < 1:
            raise ValueError("spike_s must be >= 0 and every >= 1")
        self.spike_s = spike_s
        self.every = every
        self.spikes = 0

    def write_latency_s(self, rel_path: str, nbytes: int) -> float:
        if self.write_ops % self.every == 0:
            self.spikes += 1
            return self.spike_s
        return 0.0

    def read_latency_s(self, rel_path: str, nbytes: int) -> float:
        if self.read_ops % self.every == 0:
            self.spikes += 1
            return self.spike_s
        return 0.0
